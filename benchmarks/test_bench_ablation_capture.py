"""Ablation: the capture effect under hidden-terminal collisions.

Two senders out of carrier-sense range of each other blast a middle
receiver; one sender is much closer.  With capture enabled the receiver
re-locks onto the stronger preamble and the near flow survives; without
it, overlapping frames destroy each other.
"""

from benchmarks.util import run_once, save_artifact
from repro.analysis.tables import render_table
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Rate
from repro.experiments.common import build_network
from repro.phy.radio import RadioParameters

DURATION_S = 4.0


def _run(capture_enabled: bool):
    # Near sender 10 m left of the receiver, far sender 80 m right:
    # 90 m apart, barely inside each other's CS range, so overlaps are
    # frequent but not constant; the receiver sees a 24 dB power gap.
    radio = RadioParameters.calibrated(capture_enabled=capture_enabled)
    net = build_network(
        [0.0, 10.0, 90.0], data_rate=Rate.MBPS_2, radio=radio, seed=5
    )
    near_sink = UdpSink(net[1], port=5001, warmup_s=0.5)
    far_sink = UdpSink(net[1], port=5002, warmup_s=0.5)
    CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
    CbrSource(net[2], dst=2, dst_port=5002, payload_bytes=512)
    net.run(DURATION_S)
    return (
        near_sink.throughput_bps(DURATION_S) / 1e3,
        far_sink.throughput_bps(DURATION_S) / 1e3,
    )


def _evaluate():
    return {enabled: _run(enabled) for enabled in (False, True)}


def test_bench_ablation_capture(benchmark):
    results = run_once(benchmark, _evaluate)
    rows = [
        (
            "on" if enabled else "off",
            round(near, 1),
            round(far, 1),
        )
        for enabled, (near, far) in results.items()
    ]
    save_artifact(
        "ablation_capture",
        render_table(
            ["capture", "near flow (Kbps)", "far flow (Kbps)"],
            rows,
            title="Ablation - capture effect at a hidden-terminal receiver",
        ),
    )
    near_off, _ = results[False]
    near_on, _ = results[True]
    # Capture can only help the strong (near) flow.
    assert near_on >= near_off
