"""Bench ``figure9``: four stations at 2 Mbps, asymmetric placement."""

from benchmarks.util import run_once, save_artifact
from repro.experiments import paper
from repro.experiments.four_nodes import (
    format_four_node,
    run_figure7,
    run_figure9,
)

DURATION_S = 8.0


def test_bench_figure9(benchmark):
    results = run_once(benchmark, run_figure9, duration_s=DURATION_S)
    save_artifact(
        "figure9",
        format_four_node(results, "Figure 9 - 2 Mbps asymmetric (25/90/25 m)"),
    )

    by_key = {(r.transport, r.rts_cts): r for r in results}
    udp = by_key[("udp", False)]
    # Paper: at 2 Mbps the system is "more balanced" (larger ranges give
    # the stations a more uniform view of the channel).
    assert udp.ratio < paper.FIGURE9_MAX_UDP_RATIO * 2
    assert udp.session1_kbps > 300
    # Direct comparison against the 11 Mbps scenario.
    fig7_udp = run_figure7(duration_s=DURATION_S)[0]
    assert udp.ratio < fig7_udp.ratio
