"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, times it with
pytest-benchmark (single round — these are simulations, not
microbenchmarks) and writes the paper-style rendering to
``benchmarks/output/<name>.txt`` so the artefacts survive the run.
The artefact path is recorded in the benchmark's ``extra_info`` so a
``--benchmark-json`` report links every timing back to the rendered
table it produced.
"""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"

#: The benchmark fixture of the bench currently running.  ``run_once``
#: records it so ``save_artifact`` can attach the artefact path to the
#: right benchmark without every bench threading the fixture through.
#: Benches run one at a time in a pytest process, so a plain module
#: global is safe.
_active_benchmark = None


def save_artifact(name: str, text: str, benchmark=None) -> Path:
    """Persist one bench's rendered table/figure.

    The path is recorded as ``extra_info["artifact"]`` on ``benchmark``
    (explicitly passed, or the one from the enclosing ``run_once``).
    """
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    target = benchmark if benchmark is not None else _active_benchmark
    if target is not None:
        target.extra_info["artifact"] = str(path)
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Time ``function`` with a single benchmark round."""
    global _active_benchmark
    _active_benchmark = benchmark
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def save_journal(name: str, journal_path, benchmark=None) -> Path:
    """Link a sweep journal produced during the timed run to the bench.

    The supervised executor appends one JSONL record per sweep point
    (see :mod:`repro.parallel.journal`); recording its path and outcome
    tally in ``extra_info`` ties a timing to the per-point evidence of
    *what* ran — attempts, retries, durations — the same way
    ``artifact`` ties it to the rendered table.
    """
    from repro.parallel import load_journal

    path = Path(journal_path)
    records = load_journal(path)
    target = benchmark if benchmark is not None else _active_benchmark
    if target is not None:
        target.extra_info["sweep_journal"] = str(path)
        target.extra_info["journal_points"] = len(records)
        target.extra_info["journal_ok"] = sum(
            1 for record in records.values() if record.status == "ok"
        )
    return path


def save_profile(name: str, experiment: str, benchmark=None, **kwargs) -> Path:
    """Profile ``experiment`` outside the timed region and link the artefacts.

    Runs a short cProfile pass of the same registry experiment (pass
    ``duration_s``/``probes``/``seed`` to keep it cheap) and writes both
    the rendered top-N report (``<name>.profile.txt``) and the raw
    ``<name>.pstats`` dump next to the bench artefact.  Paths land in
    ``extra_info`` so a ``--benchmark-json`` report ties every timing to
    the profile that explains *where* the time went.  Like
    :func:`save_audit`, the profiled run is separate from the timed one.
    """
    from repro.profiling import profile_experiment

    OUTPUT_DIR.mkdir(exist_ok=True)
    pstats_path = OUTPUT_DIR / f"{name}.pstats"
    report = profile_experiment(experiment, output=str(pstats_path), **kwargs)
    report_path = OUTPUT_DIR / f"{name}.profile.txt"
    report_path.write_text(report)
    target = benchmark if benchmark is not None else _active_benchmark
    if target is not None:
        target.extra_info["profile_artifact"] = str(report_path)
        target.extra_info["profile_pstats"] = str(pstats_path)
    return report_path


def save_audit(name: str, experiment: str, benchmark=None, **kwargs) -> Path:
    """Audit ``experiment`` outside the timed region and link the artefact.

    Runs a short strict flight-recorder audit of the same registry
    experiment (pass ``duration_s``/``probes``/``seed`` to keep it
    cheap) and writes the drop-reason breakdown next to the bench
    artefact.  The path and verdict land in ``extra_info`` so a
    ``--benchmark-json`` report ties every timing to proof that the
    timed configuration conserves packets.  The audit run is separate
    from the timed one, so it never perturbs the measurement.
    """
    from repro.obs import audit_experiment

    outcome = audit_experiment(experiment, **kwargs)
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.audit.txt"
    path.write_text(outcome.render() + "\n")
    target = benchmark if benchmark is not None else _active_benchmark
    if target is not None:
        target.extra_info["audit_artifact"] = str(path)
        target.extra_info["audit_balanced"] = outcome.balanced
        target.extra_info["audit_sdus"] = sum(
            report.opened for report in outcome.reports
        )
    return path
