"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper, times it with
pytest-benchmark (single round — these are simulations, not
microbenchmarks) and writes the paper-style rendering to
``benchmarks/output/<name>.txt`` so the artefacts survive the run.
"""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def save_artifact(name: str, text: str) -> Path:
    """Persist one bench's rendered table/figure."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    return path


def run_once(benchmark, function, *args, **kwargs):
    """Time ``function`` with a single benchmark round."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
