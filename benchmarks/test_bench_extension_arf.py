"""Extension bench: ARF dynamic rate switching (paper §2).

ARF must track the upper envelope of the fixed-rate throughput curves
across distance: near the transmitter it climbs to 11 Mbps, at 105 m
only 1 Mbps survives and ARF must settle there.
"""

from benchmarks.util import run_once, save_artifact
from repro.core.params import Rate
from repro.experiments.ratecontrol import format_arf_sweep, run_arf_sweep


def test_bench_extension_arf(benchmark):
    rows = run_once(benchmark, run_arf_sweep, duration_s=3.0)
    save_artifact("extension_arf", format_arf_sweep(rows))

    by_distance = {row.distance_m: row for row in rows}
    # Close in, ARF reaches most of the 11 Mbps fixed throughput.
    assert by_distance[10.0].arf_mbps > 0.85 * by_distance[10.0].fixed_mbps[
        Rate.MBPS_11
    ]
    # At every distance ARF achieves a usable fraction of the best
    # fixed strategy (it pays for probing upward).
    for row in rows:
        assert row.arf_mbps > 0.5 * row.best_fixed_mbps, row.distance_m
    # Beyond the 2 Mbps range edge only the slow rates work, and ARF
    # matches the best of them.
    far = by_distance[105.0]
    assert far.fixed_mbps[Rate.MBPS_11] < 0.05
    assert far.arf_mbps > 0.8 * far.best_fixed_mbps
