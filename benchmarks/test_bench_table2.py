"""Bench ``table2``: the maximum-throughput model vs the paper's Table 2."""

from benchmarks.util import run_once, save_artifact
from repro.experiments.table2 import format_table2, run_table2


def test_bench_table2(benchmark):
    rows = run_once(benchmark, run_table2)
    text = format_table2(rows)
    save_artifact("table2", text)

    # Every no-RTS/CTS cell must reproduce the paper to ~1 kbps.
    for row in rows:
        if not row.rts_cts:
            assert abs(row.standard_mbps - row.paper_mbps) < 0.002
    # All cells except the known 1 Mbps/512 B/RTS outlier must match
    # under at least one overhead interpretation.
    assert sum(not row.matches_paper for row in rows) == 1
    # Headline finding: < 44 % utilisation at 11 Mbps even with 1024 B.
    big = next(
        r for r in rows
        if r.rate.mbps == 11 and r.payload_bytes == 1024 and not r.rts_cts
    )
    assert big.standard_mbps / 11.0 < 0.44
