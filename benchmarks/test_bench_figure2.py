"""Bench ``figure2``: theoretical vs simulated TCP/UDP throughput."""

from benchmarks.util import run_once, save_artifact, save_audit
from repro.core.params import Rate
from repro.experiments.two_nodes import format_figure2, run_figure2


def test_bench_figure2(benchmark):
    results = run_once(
        benchmark, run_figure2, rate=Rate.MBPS_11, duration_s=2.0, warmup_s=0.3
    )
    save_artifact("figure2", format_figure2(results))
    save_audit("figure2", "figure2", duration_s=1.5, seed=1)

    by_key = {(r.transport, r.rts_cts): r for r in results}
    # UDP saturates to the analytic bound (paper: "very close").
    for rts in (False, True):
        assert abs(by_key[("udp", rts)].ratio - 1.0) < 0.08
    # TCP is clearly below the bound (TCP-ACK overhead).
    for rts in (False, True):
        assert by_key[("tcp", rts)].ratio < 0.95
    # RTS/CTS costs throughput in every panel.
    for transport in ("udp", "tcp"):
        assert (
            by_key[(transport, True)].measured_mbps
            < by_key[(transport, False)].measured_mbps
        )
