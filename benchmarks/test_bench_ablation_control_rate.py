"""Ablation: distinct control/data rates (DESIGN.md decision 3).

The paper's central observation is that control frames and the MAC
header travel at basic rates while the payload uses the NIC rate.  This
bench contrasts the paper's model with a naive all-at-data-rate model:
the naive one overestimates 11 Mbps throughput substantially.
"""

from benchmarks.util import run_once, save_artifact
from repro.analysis.tables import render_table
from repro.core.params import ALL_RATES, Dot11bConfig, HeaderRatePolicy
from repro.core.throughput_model import ThroughputModel


def _evaluate():
    paper_model = ThroughputModel(Dot11bConfig())
    naive_model = ThroughputModel(
        Dot11bConfig(header_rate_policy=HeaderRatePolicy.DATA_RATE)
    )
    rows = []
    for rate in reversed(ALL_RATES):
        paper_mbps = paper_model.max_throughput_bps(512, rate) / 1e6
        naive_mbps = naive_model.max_throughput_bps(512, rate) / 1e6
        rows.append((str(rate), paper_mbps, naive_mbps, naive_mbps / paper_mbps))
    return rows


def test_bench_ablation_control_rate(benchmark):
    rows = run_once(benchmark, _evaluate)
    save_artifact(
        "ablation_control_rate",
        render_table(
            ["rate", "paper model (Mbps)", "all-at-data-rate (Mbps)", "inflation"],
            rows,
            title="Ablation - MAC header at basic rate vs at data rate (m=512)",
        ),
    )
    by_rate = {row[0]: row for row in rows}
    # At 11 Mbps the naive model inflates throughput noticeably...
    assert by_rate["11 Mbps"][3] > 1.05
    # ...while at the basic rates the two models coincide.
    assert abs(by_rate["1 Mbps"][3] - 1.0) < 1e-9
    assert abs(by_rate["2 Mbps"][3] - 1.0) < 1e-9
