"""Bench ``figure7``: four stations at 11 Mbps, asymmetric placement."""

from benchmarks.util import run_once, save_artifact, save_audit, save_profile
from repro.experiments import paper
from repro.experiments.four_nodes import format_four_node, run_figure7

DURATION_S = 8.0


def test_bench_figure7(benchmark):
    results = run_once(benchmark, run_figure7, duration_s=DURATION_S)
    save_artifact(
        "figure7",
        format_four_node(results, "Figure 7 - 11 Mbps asymmetric (25/80/25 m)"),
    )
    save_audit("figure7", "figure7", duration_s=1.5, seed=1)
    save_profile("figure7", "figure7", duration_s=1.5, seed=1)

    by_key = {(r.transport, r.rts_cts): r for r in results}
    # Headline: session 2 clearly beats session 1 under UDP, both with
    # and without RTS/CTS (paper Figure 7).
    for rts in (False, True):
        assert by_key[("udp", rts)].ratio > paper.FIGURE7_MIN_UDP_RATIO
    # Session 1 is coupled (far below an isolated pair's ~3 Mbps) yet
    # alive; session 2 is near a single-pair's saturation throughput.
    udp = by_key[("udp", False)]
    assert 50 < udp.session1_kbps < 1500
    assert udp.session2_kbps > 1800
    # TCP keeps both sessions alive.
    tcp = by_key[("tcp", False)]
    assert tcp.session1_kbps > 50
    assert tcp.session2_kbps > 800
