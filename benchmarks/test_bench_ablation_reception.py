"""Ablation: SINR-threshold vs BER-integration reception (decision 2).

Both reception models must agree on the gross geometry (lossless well
inside range, dead far outside); the BER model produces a steeper
transition because bit errors accumulate over the whole frame.
"""

from benchmarks.util import run_once, save_artifact
from repro.analysis.tables import render_table
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Dot11bConfig, MacParameters, Rate
from repro.experiments.common import build_network
from repro.phy.reception import BerReception, SinrThresholdReception

DISTANCES_M = (10.0, 25.0, 31.0, 40.0, 60.0)
PROBES = 100


def _loss(reception, distance_m):
    net = build_network(
        [0.0, distance_m],
        data_rate=Rate.MBPS_11,
        dot11=Dot11bConfig(
            mac=MacParameters(short_retry_limit=0, long_retry_limit=0)
        ),
        reception=reception,
        seed=int(distance_m) + 11,
    )
    sink = UdpSink(net[1], port=5001)
    source = CbrSource(
        net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=512 * 8 / 0.005
    )
    net.run(PROBES * 0.005)
    source.stop()
    net.sim.run()  # drain in-flight probes
    return max(0.0, 1.0 - sink.packets / max(source.packets_accepted, 1))


def _evaluate():
    rows = []
    for distance in DISTANCES_M:
        rows.append(
            (
                distance,
                _loss(SinrThresholdReception(), distance),
                _loss(BerReception(), distance),
            )
        )
    return rows


def test_bench_ablation_reception(benchmark):
    rows = run_once(benchmark, _evaluate)
    save_artifact(
        "ablation_reception",
        render_table(
            ["distance (m)", "SINR-threshold loss", "BER-integration loss"],
            rows,
            title="Ablation - reception model (11 Mbps, no retries)",
        ),
    )
    by_distance = {row[0]: row for row in rows}
    # Deep inside range both models are lossless.
    assert by_distance[10.0][1] == 0.0
    assert by_distance[10.0][2] == 0.0
    # The threshold model dies at its calibrated sensitivity edge; the
    # BER model degrades later and more gradually (no implementation
    # loss is modelled), which is the point of the ablation.
    assert by_distance[60.0][1] == 1.0
    assert by_distance[60.0][2] > 0.05
    assert 0.0 < by_distance[31.0][1] < 1.0
    assert by_distance[31.0][2] <= by_distance[60.0][2]
