"""Ablation: calibrated ranges vs ns-2 defaults (DESIGN.md decision 4).

Paper §3.2: simulation studies assume TX_range = 250 m and
PCS_range = 550 m; the measured ranges are 2-3x shorter.  This bench
regenerates that comparison from the two radio presets.
"""

from benchmarks.util import run_once, save_artifact
from repro.analysis.tables import render_table
from repro.channel.propagation import LogDistancePathLoss, TwoRayGroundPathLoss
from repro.channel.ranges import compute_range_table
from repro.core.params import ALL_RATES, Rate
from repro.experiments import paper
from repro.phy.radio import RadioParameters


def _evaluate():
    calibrated_radio = RadioParameters.calibrated()
    calibrated = compute_range_table(
        LogDistancePathLoss.calibrated(),
        calibrated_radio.tx_power_dbm,
        calibrated_radio.sensitivity_dbm,
        calibrated_radio.cs_threshold_dbm,
    )
    ns2_radio = RadioParameters.ns2_default()
    ns2 = compute_range_table(
        TwoRayGroundPathLoss(),
        ns2_radio.tx_power_dbm,
        ns2_radio.sensitivity_dbm,
        ns2_radio.cs_threshold_dbm,
    )
    return calibrated, ns2


def test_bench_ablation_ns2_ranges(benchmark):
    calibrated, ns2 = run_once(benchmark, _evaluate)
    rows = [
        (
            str(rate),
            round(calibrated.data_tx_range_m[rate], 1),
            round(ns2.data_tx_range_m[rate], 1),
            round(ns2.data_tx_range_m[rate] / calibrated.data_tx_range_m[rate], 2),
        )
        for rate in reversed(ALL_RATES)
    ]
    rows.append(
        (
            "carrier sense",
            round(calibrated.carrier_sense_range_m, 1),
            round(ns2.carrier_sense_range_m, 1),
            round(
                ns2.carrier_sense_range_m / calibrated.carrier_sense_range_m, 2
            ),
        )
    )
    save_artifact(
        "ablation_ns2_ranges",
        render_table(
            ["range", "calibrated (m)", "ns-2 style (m)", "ns-2 / measured"],
            rows,
            title="Ablation - measured-calibrated ranges vs ns-2 defaults",
        ),
    )
    # The paper's 2 Mbps comparison: ns-2's 250 m is 2-3x the measured
    # 90-100 m.
    ratio = ns2.data_tx_range_m[Rate.MBPS_2] / calibrated.data_tx_range_m[Rate.MBPS_2]
    assert 2.0 <= ratio <= 3.0
    assert abs(ns2.data_tx_range_m[Rate.MBPS_2] - paper.NS2_TX_RANGE_M) < 1.0
    assert abs(ns2.carrier_sense_range_m - paper.NS2_PCS_RANGE_M) < 2.0
