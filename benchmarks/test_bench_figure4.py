"""Bench ``figure4``: the 1 Mbps range measured on two different days."""

from benchmarks.util import run_once, save_artifact
from repro.experiments.ranges import (
    estimate_tx_range,
    format_loss_curves,
    run_figure4,
)

PROBES = 120


def test_bench_figure4(benchmark):
    curves = run_once(benchmark, run_figure4, probes=PROBES)
    save_artifact(
        "figure4",
        format_loss_curves(curves, "Figure 4 - 1 Mbps range on two days"),
    )

    good, bad = curves
    good_range = estimate_tx_range(good)
    bad_range = estimate_tx_range(bad)
    # The worse day shortens the range visibly (weather variability,
    # paper Figure 4 and footnote 4).
    assert bad_range < good_range
    assert good_range - bad_range > 5.0
    # Both stay around the 1 Mbps band of Table 3 (110-130 m), the bad
    # day sagging below its lower edge.
    assert 95.0 <= bad_range <= 130.0
    assert 110.0 <= good_range <= 135.0
