"""Bench ``figure3``: packet loss vs distance for the four rates."""

from benchmarks.util import (
    OUTPUT_DIR,
    run_once,
    save_artifact,
    save_audit,
    save_journal,
)
from repro.experiments.ranges import (
    estimate_tx_range,
    format_loss_curves,
    run_figure3,
)
from repro.experiments.runner import RunnerConfig

PROBES = 120


def test_bench_figure3(benchmark):
    OUTPUT_DIR.mkdir(exist_ok=True)
    journal_path = OUTPUT_DIR / "figure3.journal.jsonl"
    journal_path.unlink(missing_ok=True)  # fresh journal per bench run
    policy = RunnerConfig(max_retries=0, journal_path=str(journal_path))
    curves = run_once(benchmark, run_figure3, probes=PROBES, policy=policy)
    save_artifact(
        "figure3",
        format_loss_curves(curves, "Figure 3 - loss vs distance"),
        benchmark=benchmark,
    )
    save_audit("figure3", "figure3", probes=30, seed=1, benchmark=benchmark)
    save_journal("figure3", journal_path, benchmark=benchmark)

    by_rate = {curve.rate.mbps: curve for curve in curves}
    # The range ladder: faster rates cross 50% loss closer in.
    ranges = {
        mbps: estimate_tx_range(curve) for mbps, curve in by_rate.items()
    }
    assert ranges[11.0] < ranges[5.5] < ranges[2.0] < ranges[1.0]
    # Every curve starts essentially lossless and ends fully lost
    # (20 m and 150+ m, like the paper's x-axis).
    for curve in curves:
        assert curve.loss_rates[0] < 0.1
        assert curve.loss_rates[-1] > 0.9
