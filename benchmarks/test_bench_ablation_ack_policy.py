"""Ablation: ACK policy in the Figure-7 scenario (DESIGN.md §2).

The standard sends the MAC ACK a SIFS after the data regardless of
carrier state; receiver starvation then comes from *deafness* (the PHY
is locked on a third station's frame).  The DEFER_IF_BUSY variant
additionally suppresses ACKs under energy detect and roughly doubles
the measured asymmetry — the bench quantifies that.
"""

from benchmarks.util import run_once, save_artifact
from repro.analysis.tables import render_table
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.channel.placement import figure6_placement
from repro.core.params import Rate
from repro.experiments.common import build_network
from repro.mac.dcf import AckPolicy

DURATION_S = 6.0


def _run(policy: AckPolicy):
    placement = figure6_placement()
    net = build_network(
        [x for x, _ in placement.positions],
        data_rate=Rate.MBPS_11,
        ack_policy=policy,
    )
    sinks = []
    for index, (tx, rx) in enumerate(((0, 1), (2, 3))):
        port = 5001 + index
        sinks.append(UdpSink(net[rx], port=port, warmup_s=1.0))
        CbrSource(net[tx], dst=rx + 1, dst_port=port, payload_bytes=512)
    net.run(DURATION_S)
    s1, s2 = (sink.throughput_bps(DURATION_S) / 1e3 for sink in sinks)
    return s1, s2


def _evaluate():
    return {policy: _run(policy) for policy in AckPolicy}


def test_bench_ablation_ack_policy(benchmark):
    results = run_once(benchmark, _evaluate)
    rows = [
        (policy.value, round(s1, 1), round(s2, 1), round(s2 / max(s1, 0.1), 2))
        for policy, (s1, s2) in results.items()
    ]
    save_artifact(
        "ablation_ack_policy",
        render_table(
            ["ack policy", "1->2 (Kbps)", "3->4 (Kbps)", "ratio"],
            rows,
            title="Ablation - ACK policy in the Figure-7 scenario (UDP)",
        ),
    )
    always_s1, always_s2 = results[AckPolicy.ALWAYS]
    defer_s1, defer_s2 = results[AckPolicy.DEFER_IF_BUSY]
    # Both policies leave session 2 dominant...
    assert always_s2 / always_s1 > 1.5
    # ...but energy-based ACK suppression starves session 1 much harder.
    assert defer_s2 / max(defer_s1, 0.1) > always_s2 / always_s1
