"""Extension bench: DCF scaling with contending stations.

Not in the paper (its scenarios stop at two concurrent sessions), but
the canonical follow-up question: N saturated stations in one collision
domain.  Aggregate throughput must stay near the single-pair saturation
value (DCF collisions cost little at small N with CWmin = 32) while the
per-station share falls as ~1/N and short-term fairness stays sane.
"""

import pytest

from benchmarks.util import run_once, save_artifact
from repro.analysis.tables import render_table
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Rate
from repro.experiments.common import build_network

DURATION_S = 4.0


def _run(n_senders: int):
    # Senders in a tight cluster around a common sink: one collision
    # domain, no hidden terminals.
    positions = [0.0] + [2.0 + index * 1.0 for index in range(n_senders)]
    net = build_network(positions, data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
    sinks = []
    for index in range(n_senders):
        port = 5001 + index
        sinks.append(UdpSink(net[0], port=port, warmup_s=0.5))
        CbrSource(
            net[index + 1], dst=1, dst_port=port, payload_bytes=512
        )
    net.run(DURATION_S)
    shares = [sink.throughput_bps(DURATION_S) / 1e6 for sink in sinks]
    return sum(shares), min(shares), max(shares)


def _evaluate():
    return {n: _run(n) for n in (1, 2, 4, 8)}


def test_bench_extension_multistation(benchmark):
    from repro.core.bianchi import saturation_throughput_bps

    results = run_once(benchmark, _evaluate)
    rows = [
        (
            n,
            total,
            saturation_throughput_bps(n).throughput_bps / 1e6,
            worst,
            best,
            best / max(worst, 1e-9),
        )
        for n, (total, worst, best) in results.items()
    ]
    save_artifact(
        "extension_multistation",
        render_table(
            [
                "senders",
                "aggregate (Mbps)",
                "Bianchi (Mbps)",
                "worst share",
                "best share",
                "best/worst",
            ],
            rows,
            title="Extension - DCF scaling with saturated stations (11 Mbps)",
        ),
    )
    # The simulator agrees with Bianchi's independent analytic model at
    # every population (the two share only the airtime arithmetic).
    for n, total, bianchi, *_ in rows:
        assert total == pytest.approx(bianchi, rel=0.04), n
    single = results[1][0]
    # The Bianchi shape: aggregate throughput *rises* slightly with N at
    # CWmin = 32 (parallel backoff draws waste fewer idle slots than one
    # station's mean 15.5 slots), then plateaus as collisions start to
    # cost; it never collapses at these populations.
    assert results[2][0] > single
    for n, (total, _, _) in results.items():
        assert 0.8 * single < total < 1.25 * single, n
    # Long-run fairness: no station starves (short windows do show some
    # spread at N = 8).
    total8, worst8, best8 = results[8]
    assert best8 / worst8 < 2.5
    assert worst8 > 0.5 * (total8 / 8)
