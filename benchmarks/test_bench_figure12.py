"""Bench ``figure12``: four stations at 2 Mbps, symmetric placement."""

from benchmarks.util import run_once, save_artifact
from repro.experiments.four_nodes import format_four_node, run_figure12

DURATION_S = 8.0


def test_bench_figure12(benchmark):
    results = run_once(benchmark, run_figure12, duration_s=DURATION_S)
    save_artifact(
        "figure12",
        format_four_node(results, "Figure 12 - 2 Mbps symmetric (25/60/25 m)"),
    )

    by_key = {(r.transport, r.rts_cts): r for r in results}
    udp = by_key[("udp", False)]
    # The 2 Mbps symmetric system is the most balanced configuration of
    # the paper: near parity between the sessions.
    assert 0.5 < udp.ratio < 2.0
    # Aggregate throughput is bounded by the 2 Mbps saturation ceiling.
    total_kbps = udp.session1_kbps + udp.session2_kbps
    assert total_kbps < 1500
