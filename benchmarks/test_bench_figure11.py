"""Bench ``figure11``: four stations at 11 Mbps, symmetric placement."""

from benchmarks.util import run_once, save_artifact
from repro.experiments.four_nodes import format_four_node, run_figure11

DURATION_S = 8.0


def test_bench_figure11(benchmark):
    results = run_once(benchmark, run_figure11, duration_s=DURATION_S)
    save_artifact(
        "figure11",
        format_four_node(results, "Figure 11 - 11 Mbps symmetric (25/60/25 m)"),
    )

    by_key = {(r.transport, r.rts_cts): r for r in results}
    # Symmetric placement: both receivers sit in the middle, so the UDP
    # sessions end up comparable (consistent with the paper's bars).
    udp = by_key[("udp", False)]
    assert 0.4 < udp.ratio < 2.5
    assert udp.session1_kbps > 400
    assert udp.session2_kbps > 400
