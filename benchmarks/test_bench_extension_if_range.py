"""Extension bench: the TX <= IF <= PCS relationship of paper §2."""

from benchmarks.util import run_once, save_artifact
from repro.core.params import Rate
from repro.experiments.interference import (
    analytic_if_table,
    format_if_table,
    measure_if_range,
)


def _evaluate():
    rows = analytic_if_table(rate=Rate.MBPS_11)
    losses = measure_if_range(
        rate=Rate.MBPS_11, sender_distance_m=20.0, probes=100
    )
    return rows, losses


def test_bench_extension_if_range(benchmark):
    rows, losses = run_once(benchmark, _evaluate)
    text = format_if_table(rows)
    text += "\n\nsimulated loss vs interferer distance (sender at 20 m):\n"
    for distance, loss in sorted(losses.items()):
        text += f"  interferer at {distance:5.1f} m: loss = {loss:.2f}\n"
    save_artifact("extension_if_range", text)

    # IF grows with the sender-receiver distance (paper §2: "function of
    # the distance between the sender and receiver").
    if_ranges = [row.if_range_analytic_m for row in rows]
    assert if_ranges == sorted(if_ranges)
    # At the TX-range edge the interference range exceeds the TX range
    # (the classic hidden-terminal asymmetry).
    edge = rows[-1]
    assert edge.if_range_analytic_m > edge.tx_range_m
    # Simulation agrees with the analytic boundary: the sim's IF range
    # for a 20 m sender is ~45 m, so 30 m kills frames and 90 m doesn't.
    assert losses[30.0] > 0.5
    assert losses[90.0] < 0.1
