"""Extension bench: the delay hockey stick around Equation (1)'s capacity."""

from benchmarks.util import run_once, save_artifact
from repro.core.params import Rate
from repro.experiments.delay import format_delay_sweep, run_delay_sweep


def test_bench_extension_delay(benchmark):
    points = run_once(benchmark, run_delay_sweep, rate=Rate.MBPS_11)
    save_artifact("extension_delay", format_delay_sweep(points, Rate.MBPS_11))

    by_load = {point.load_fraction: point for point in points}
    # Below saturation, delay is around the per-frame service time (~1 ms)
    # and delivery matches the offer.
    light = by_load[0.2]
    assert light.mean_delay_s < 0.005
    assert light.delivered_bps > 0.95 * light.offered_bps
    # Past the Equation-(1) capacity the queue fills: delay explodes and
    # the delivered rate clips at capacity.
    overload = by_load[1.1]
    assert overload.mean_delay_s > 20 * light.mean_delay_s
    assert overload.delivered_bps < overload.offered_bps
    # Delay is monotone in load (up to measurement noise below
    # saturation, where it is flat at the service time).
    delays = [point.mean_delay_s for point in points]
    for earlier, later in zip(delays, delays[1:]):
        assert later >= earlier * 0.95
