"""Extension bench: link lifetime under mobility (paper §3.2 remark).

"The shorter is the TX_range, the higher is the frequency of route
re-calculation when the network stations are mobile."  A receiver
walking away at 10 m/s loses its link when it crosses the transmission
range; with ns-2's 250 m assumption the link survives 2-8x longer than
with the measured ranges — exactly the miscalibration the paper warns
simulation studies about.
"""

from benchmarks.util import run_once, save_artifact
from repro.core.params import Rate
from repro.experiments.mobility import format_link_lifetimes, run_link_lifetimes


def test_bench_extension_link_lifetime(benchmark):
    results = run_once(benchmark, run_link_lifetimes, speed_m_s=10.0)
    save_artifact("extension_link_lifetime", format_link_lifetimes(results))

    by_key = {(r.rate, r.radio_preset): r for r in results}
    for rate in Rate:
        calibrated = by_key[(rate, "calibrated")]
        ns2 = by_key[(rate, "ns-2")]
        # ns-2's 250 m keeps every link alive 2x+ longer.
        assert ns2.lifetime_s > 2.0 * calibrated.lifetime_s, rate
        # The calibrated break distance tracks the Table-3 range.
        assert calibrated.break_distance_m < 150.0
    # The effect is strongest at 11 Mbps (250 m vs ~31 m).
    ratio_11 = (
        by_key[(Rate.MBPS_11, "ns-2")].lifetime_s
        / by_key[(Rate.MBPS_11, "calibrated")].lifetime_s
    )
    ratio_1 = (
        by_key[(Rate.MBPS_1, "ns-2")].lifetime_s
        / by_key[(Rate.MBPS_1, "calibrated")].lifetime_s
    )
    assert ratio_11 > ratio_1
