"""Extension bench: the optional short PLCP preamble.

The paper assumes the long preamble (192 us).  802.11b's optional short
format halves the PLCP to 96 us; at 11 Mbps, where the PLCP dominates
the frame time, that is worth several hundred kbps of throughput —
quantified here both analytically and in simulation.
"""

from benchmarks.util import run_once, save_artifact
from repro.analysis.tables import render_table
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import ALL_RATES, Dot11bConfig, PlcpParameters, Rate
from repro.core.throughput_model import ThroughputModel
from repro.experiments.common import build_network


def _simulated(plcp: PlcpParameters, rate: Rate) -> float:
    net = build_network(
        [0, 10],
        data_rate=rate,
        fast_sigma_db=0.0,
        dot11=Dot11bConfig(plcp=plcp),
    )
    sink = UdpSink(net[1], port=5001, warmup_s=0.3)
    CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
    net.run(2.0)
    return sink.throughput_bps(2.0) / 1e6


def _evaluate():
    rows = []
    for rate in reversed(ALL_RATES):
        long_model = ThroughputModel(Dot11bConfig(plcp=PlcpParameters.long()))
        short_model = ThroughputModel(Dot11bConfig(plcp=PlcpParameters.short()))
        rows.append(
            (
                str(rate),
                long_model.max_throughput_bps(512, rate) / 1e6,
                short_model.max_throughput_bps(512, rate) / 1e6,
            )
        )
    sim_long = _simulated(PlcpParameters.long(), Rate.MBPS_11)
    sim_short = _simulated(PlcpParameters.short(), Rate.MBPS_11)
    return rows, sim_long, sim_short


def test_bench_extension_short_preamble(benchmark):
    rows, sim_long, sim_short = run_once(benchmark, _evaluate)
    text = render_table(
        ["rate", "long PLCP (Mbps)", "short PLCP (Mbps)"],
        rows,
        title="Extension - long vs short PLCP preamble (analytic, m=512)",
    )
    text += (
        f"\n\nsimulated at 11 Mbps: long {sim_long:.3f} Mbps, "
        f"short {sim_short:.3f} Mbps"
    )
    save_artifact("extension_short_preamble", text)

    by_rate = dict((row[0], row) for row in rows)
    # The short preamble always helps, most at 11 Mbps.
    gains = {name: short / long for name, long, short in rows}
    assert all(gain > 1.0 for gain in gains.values())
    assert gains["11 Mbps"] == max(gains.values())
    assert by_rate["11 Mbps"][2] > 3.2  # >3.2 Mbps with short PLCP
    # The simulator tracks the analytic prediction for both formats.
    assert abs(sim_short - by_rate["11 Mbps"][2]) < 0.1
    assert abs(sim_long - by_rate["11 Mbps"][1]) < 0.1
