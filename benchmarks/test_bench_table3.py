"""Bench ``table3``: transmission-range estimates vs the paper's bands."""

from benchmarks.util import run_once, save_artifact
from repro.experiments.ranges import format_table3, run_table3

PROBES = 120


def test_bench_table3(benchmark):
    estimates = run_once(benchmark, run_table3, probes=PROBES)
    save_artifact("table3", format_table3(estimates), benchmark=benchmark)

    for estimate in estimates:
        assert estimate.within_band, (
            f"{estimate.rate} {estimate.kind} range {estimate.estimated_m:.1f} m "
            f"outside the paper band {estimate.paper_band_m}"
        )
    # Paper §3.2: simulator folklore (ns-2's 250 m) is 2-3x too long.
    data = [e for e in estimates if e.kind == "data"]
    assert all(e.estimated_m < 250.0 / 1.8 for e in data)
