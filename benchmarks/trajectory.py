"""Persistent perf trajectory for the headline benches.

``pytest-benchmark`` times a bench once and forgets; this harness gives
the repo a *memory*.  Each tracked figure gets a committed
``benchmarks/BENCH_<figure>.json`` holding labelled entries — at least
``baseline`` (the measurement that predates the engine overhaul) and
``current`` (the latest accepted measurement) — so every future PR can
ask "did I make figure 7 slower?" with one command:

    python benchmarks/trajectory.py check            # all figures
    python benchmarks/trajectory.py check figure7 --tolerance 0.10

``check`` re-measures each figure (median of ``--runs`` fresh
subprocesses) and fails when the median wall-clock regresses more than
``--tolerance`` (default 10%) against the file's ``current`` entry.
CI runs exactly this in the ``perf-gate`` job.

Measurements are honest by construction:

* every run is a **fresh subprocess** (no warm caches, no shared
  interpreter state), timed around the experiment call only — import
  cost is excluded;
* ``events/sec`` comes from the simulator's own fired-event counter
  (:func:`repro.sim.engine.events_fired_total`), so it tracks scheduler
  throughput independent of how much work each event does;
* peak RSS is ``getrusage`` of the workload process itself.

To refresh an entry after an accepted perf change:

    python benchmarks/trajectory.py record --label current

The ``REPRO_PERF_HANDICAP`` environment variable (a float multiplier)
stretches every workload's wall-clock by sleeping the excess — it
exists solely to prove the gate trips: set it to 2.0 and ``check``
must fail.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).parent
REPO_ROOT = BENCH_DIR.parent

#: Synthetic-slowdown knob (float multiplier >= 1) for gate testing.
HANDICAP_ENV = "REPRO_PERF_HANDICAP"

#: Tracked figures: name -> (import path, callable, kwargs).  Parameters
#: mirror the pytest benches of the same name so the trajectory numbers
#: describe the workload CI actually runs.
WORKLOADS: dict[str, tuple[str, str, dict]] = {
    "figure3": ("repro.experiments.ranges", "run_figure3", {"probes": 120}),
    "figure7": ("repro.experiments.four_nodes", "run_figure7", {"duration_s": 8.0}),
    "table3": ("repro.experiments.ranges", "run_table3", {"probes": 120}),
    # 250 mobile stations on a wide random field, one CBR per station.
    # The medium mode follows REPRO_MEDIUM (unset -> auto -> spatial at
    # this N); `compare` runs it both ways and gates the spatial speedup.
    "multihop": (
        "repro.experiments.multihop",
        "scale_point",
        {
            "n": 250,
            "duration_s": 3.0,
            "seed": 1,
            "spacing_m": 300.0,
            "mobile_speed_m_s": 1.5,
        },
    ),
}


def bench_path(figure: str) -> Path:
    return BENCH_DIR / f"BENCH_{figure}.json"


def git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        sha = out.stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        if dirty.stdout.strip():
            sha += "-dirty"
        return sha
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


# ---------------------------------------------------------------------------
# Workload subprocess


def _run_workload(figure: str) -> None:
    """Entry point of one measurement subprocess: run, print one JSON line."""
    import importlib
    import resource

    module_name, function_name, kwargs = WORKLOADS[figure]
    function = getattr(importlib.import_module(module_name), function_name)
    from repro.sim import engine

    start = time.perf_counter()
    function(**kwargs)
    wall_s = time.perf_counter() - start

    handicap = float(os.environ.get(HANDICAP_ENV, "1.0"))
    if handicap > 1.0:
        time.sleep(wall_s * (handicap - 1.0))
        wall_s *= handicap

    usage = resource.getrusage(resource.RUSAGE_SELF)
    # getattr: lets the harness measure trees that predate the fired-event
    # counter (how the committed `baseline` entries were taken).
    fired = getattr(engine, "events_fired_total", lambda: 0)()
    print(
        json.dumps(
            {
                "wall_s": wall_s,
                "events": fired,
                "peak_rss_kb": usage.ru_maxrss,
            }
        )
    )


def measure(figure: str, runs: int, extra_env: dict[str, str] | None = None) -> dict:
    """Median-of-``runs`` measurement of one figure, fresh process each."""
    samples = []
    env = dict(os.environ)
    env.setdefault("PYTHONPATH", str(REPO_ROOT / "src"))
    if extra_env:
        env.update(extra_env)
    for _ in range(runs):
        out = subprocess.run(
            [sys.executable, str(BENCH_DIR / "trajectory.py"), "_workload", figure],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        if out.returncode != 0:
            raise RuntimeError(
                f"workload {figure} failed (exit {out.returncode}):\n{out.stderr}"
            )
        samples.append(json.loads(out.stdout.strip().splitlines()[-1]))
    walls = [sample["wall_s"] for sample in samples]
    median_wall = statistics.median(walls)
    events = samples[0]["events"]
    return {
        "figure": figure,
        "git_sha": git_sha(),
        "runs": runs,
        "median_wall_s": round(median_wall, 4),
        "stddev_wall_s": round(statistics.stdev(walls), 4) if runs > 1 else 0.0,
        "wall_s_samples": [round(w, 4) for w in walls],
        "events": events,
        "events_per_s": round(events / median_wall) if median_wall > 0 else 0,
        "peak_rss_kb": max(sample["peak_rss_kb"] for sample in samples),
        "kernel": _kernel_name(),
    }


def _kernel_name() -> str:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.phy.kernel import resolve_kernel

        return resolve_kernel()
    finally:
        sys.path.pop(0)


# ---------------------------------------------------------------------------
# Trajectory files


def load_entries(figure: str) -> dict[str, dict]:
    path = bench_path(figure)
    if not path.exists():
        return {}
    return json.loads(path.read_text())["entries"]


def save_entry(figure: str, label: str, entry: dict) -> Path:
    entries = load_entries(figure)
    entries[label] = entry
    path = bench_path(figure)
    path.write_text(
        json.dumps({"figure": figure, "entries": entries}, indent=2, sort_keys=True)
        + "\n"
    )
    return path


# ---------------------------------------------------------------------------
# Commands


def cmd_record(figures: list[str], label: str, runs: int) -> int:
    for figure in figures:
        entry = measure(figure, runs)
        path = save_entry(figure, label, entry)
        print(
            f"{figure}: {label} <- median {entry['median_wall_s']}s "
            f"(stddev {entry['stddev_wall_s']}s, {entry['events_per_s']} ev/s, "
            f"rss {entry['peak_rss_kb']} kB) -> {path.name}"
        )
    return 0


def cmd_check(
    figures: list[str], runs: int, tolerance: float, reference: str
) -> int:
    failures = []
    for figure in figures:
        entries = load_entries(figure)
        if reference not in entries:
            print(f"{figure}: no {reference!r} entry in {bench_path(figure).name}; "
                  f"run `trajectory.py record --label {reference}` first")
            failures.append(figure)
            continue
        ref = entries[reference]
        now = measure(figure, runs)
        ratio = now["median_wall_s"] / ref["median_wall_s"]
        verdict = "ok" if ratio <= 1.0 + tolerance else "REGRESSION"
        print(
            f"{figure}: {now['median_wall_s']}s vs {reference} "
            f"{ref['median_wall_s']}s -> x{ratio:.3f} [{verdict}] "
            f"(tolerance x{1.0 + tolerance:.2f}, {now['events_per_s']} ev/s)"
        )
        if verdict != "ok":
            failures.append(figure)
    if failures:
        print(f"perf gate FAILED: {', '.join(failures)}")
        return 1
    print("perf gate passed")
    return 0


def cmd_compare(runs: int, min_speedup: float, record: bool) -> int:
    """Measure the scale workload under both medium modes; gate the ratio.

    Spatial must beat dense by at least ``min_speedup`` on the 250-node
    field — the super-linear win the spatial index exists for.  With
    ``record``, both measurements land in BENCH_multihop.json (labels
    ``current`` for spatial — the entry `check` gates against — and
    ``dense`` for the reference pass).
    """
    figure = "multihop"
    spatial = measure(figure, runs, extra_env={"REPRO_MEDIUM": "spatial"})
    dense = measure(figure, runs, extra_env={"REPRO_MEDIUM": "dense"})
    speedup = dense["median_wall_s"] / spatial["median_wall_s"]
    spatial["medium"] = "spatial"
    spatial["speedup_vs_dense"] = round(speedup, 2)
    dense["medium"] = "dense"
    print(
        f"{figure}: spatial {spatial['median_wall_s']}s vs dense "
        f"{dense['median_wall_s']}s -> x{speedup:.2f} speedup "
        f"(required x{min_speedup:.2f})"
    )
    if record:
        save_entry(figure, "current", spatial)
        path = save_entry(figure, "dense", dense)
        print(f"recorded spatial+dense entries -> {path.name}")
    if speedup < min_speedup:
        print(f"scale gate FAILED: x{speedup:.2f} < x{min_speedup:.2f}")
        return 1
    print("scale gate passed")
    return 0


def cmd_show(figures: list[str]) -> int:
    for figure in figures:
        entries = load_entries(figure)
        if not entries:
            print(f"{figure}: no trajectory yet")
            continue
        print(f"{figure}:")
        for label, entry in entries.items():
            print(
                f"  {label:>10}: {entry['median_wall_s']}s "
                f"+/- {entry['stddev_wall_s']}s, {entry['events_per_s']} ev/s, "
                f"rss {entry['peak_rss_kb']} kB, sha {entry['git_sha'][:12]}"
            )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "figures",
            nargs="*",
            default=list(WORKLOADS),
            help="figures to process (default: all tracked)",
        )
        p.add_argument("--runs", type=int, default=3, help="samples per figure")

    p_record = sub.add_parser("record", help="measure and store a labelled entry")
    add_common(p_record)
    p_record.add_argument("--label", default="current", help="entry label")

    p_check = sub.add_parser("check", help="fail on wall-clock regression")
    add_common(p_check)
    p_check.add_argument("--tolerance", type=float, default=0.10,
                         help="allowed fractional slowdown (default 0.10)")
    p_check.add_argument("--reference", default="current",
                         help="entry label to compare against")

    p_compare = sub.add_parser(
        "compare", help="dense-vs-spatial medium speedup gate (250 nodes)"
    )
    p_compare.add_argument("--runs", type=int, default=3, help="samples per mode")
    p_compare.add_argument("--min-speedup", type=float, default=3.0,
                           help="required spatial speedup over dense")
    p_compare.add_argument("--record", action="store_true",
                           help="store both entries in BENCH_multihop.json")

    p_show = sub.add_parser("show", help="print the stored trajectory")
    p_show.add_argument("figures", nargs="*", default=list(WORKLOADS))

    p_work = sub.add_parser("_workload")  # internal: one measurement run
    p_work.add_argument("figure", choices=list(WORKLOADS))

    args = parser.parse_args(argv)
    figures = args.figures if getattr(args, "figures", None) else list(WORKLOADS)
    for figure in figures if args.command != "_workload" else []:
        if figure not in WORKLOADS:
            parser.error(f"unknown figure {figure!r}; tracked: {list(WORKLOADS)}")

    if args.command == "_workload":
        _run_workload(args.figure)
        return 0
    if args.command == "record":
        return cmd_record(figures, args.label, args.runs)
    if args.command == "check":
        return cmd_check(figures, args.runs, args.tolerance, args.reference)
    if args.command == "compare":
        return cmd_compare(args.runs, args.min_speedup, args.record)
    return cmd_show(figures)


if __name__ == "__main__":
    # Append, don't prepend: a PYTHONPATH pointing at another checkout
    # (how `baseline` entries are measured) must keep winning the import.
    sys.path.append(str(REPO_ROOT / "src"))
    raise SystemExit(main())
