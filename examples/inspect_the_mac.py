#!/usr/bin/env python3
"""Looking inside the MAC: traces, airtime audits and counters.

Reruns a miniature Figure-7 scenario with the measurement tooling
attached: a JSONL frame trace (the simulator's tcpdump), a channel
airtime audit, and the per-station MIB counters — the instruments that
turn "session 1 is slow" into a mechanism.

Run with::

    python examples/inspect_the_mac.py
"""

import tempfile
from pathlib import Path

from repro import AirtimeAuditor, CbrSource, Rate, TraceWriter, UdpSink, build_network, read_trace
from repro.channel.placement import figure6_placement


def main() -> None:
    placement = figure6_placement()
    net = build_network(
        [x for x, _ in placement.positions], data_rate=Rate.MBPS_11
    )
    auditor = AirtimeAuditor(net.tracer)
    sinks = []
    for index, (tx, rx) in enumerate(((0, 1), (2, 3))):
        port = 5001 + index
        sinks.append(UdpSink(net[rx], port=port, warmup_s=0.5))
        CbrSource(net[tx], dst=rx + 1, dst_port=port, payload_bytes=512)

    trace_path = Path(tempfile.gettempdir()) / "figure7-mac.jsonl"
    with TraceWriter(net.tracer, trace_path, prefix="mac.") as writer:
        net.run(3.0)

    print("=== session throughput ===")
    for label, sink in zip(("S1->S2", "S3->S4"), sinks):
        print(f"  {label}: {sink.throughput_bps(3.0) / 1e3:7.0f} Kbps")

    print("\n=== channel airtime audit ===")
    print(auditor.report())
    print(f"channel busy fraction: {auditor.busy_fraction():.2f}")

    print("\n=== MAC counters (the mechanism) ===")
    for node in net.nodes:
        counters = node.mac.counters
        print(
            f"  S{node.address}: data_tx={counters.data_tx:5} "
            f"ok={counters.tx_success:5} retries={counters.retries:5} "
            f"drops={counters.tx_drops:3} rx_errors={counters.rx_errors:5}"
        )

    records = read_trace(trace_path)
    retries = sum(1 for record in records if record.get("retry"))
    print(
        f"\n=== trace ===\n  {writer.records_written} MAC events written to "
        f"{trace_path}\n  {retries} of them are retransmissions"
    )
    print(
        "\nS1 transmits plenty of frames but most are retries of MSDUs\n"
        "S2 never hears (its PHY is locked on S3's traffic) - the\n"
        "deafness mechanism behind the paper's Figure-7 asymmetry."
    )


if __name__ == "__main__":
    main()
