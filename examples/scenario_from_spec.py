#!/usr/bin/env python3
"""Run a whole experiment from a declarative scenario file.

``exposed_terminal.json`` (next to this script) is a three-station cut
of the paper's §3.3 exposed-receiver situation: S2 receives from S1
while S3 — outside S1's 11 Mbps transmission range — keeps transmitting
to S2 as well, so S2's air time is contested from both sides and the
farther sender starves::

    S1 ---25m--- S2 -----30m----- S3
    |_ flow 1 ___|                 |
                 |_____ flow 2 ____|

The whole setup is *data*: topology, stack, both flows, seed and
duration live in ~15 lines of JSON.  The same file runs from the CLI::

    repro80211 spec examples/exposed_terminal.json
    repro80211 spec examples/exposed_terminal.json --set stack.rts_enabled=true

Run with::

    python examples/scenario_from_spec.py
"""

from pathlib import Path

from repro import ScenarioSpec, apply_overrides, build

SPEC_PATH = Path(__file__).with_name("exposed_terminal.json")


def run(spec):
    """Build the network the spec describes, run it, report per flow."""
    net = build(spec)
    net.run(spec.duration_s)
    return {
        flow.label: flow.throughput_bps(spec.duration_s) / 1e3
        for flow in net.flows
    }


def main() -> None:
    spec = ScenarioSpec.from_json(SPEC_PATH.read_text(encoding="utf-8"))
    print(f"scenario {spec.name!r} from {SPEC_PATH.name}")
    print(f"  stations at {[x for x, _ in spec.topology.positions_m]} m, "
          f"{spec.stack.data_rate_mbps:g} Mbps, {spec.duration_s:g} s\n")

    print(f"{'variant':>16} " + " ".join(
        f"{flow.src + 1}->{flow.dst + 1:>4}" for flow in spec.traffic.flows
    ))
    for label, overrides in (
        ("basic access", {}),
        ("RTS/CTS", {"stack.rts_enabled": True}),
    ):
        variant = apply_overrides(spec, overrides) if overrides else spec
        throughput = run(variant)
        cells = " ".join(f"{kbps:7.0f} K" for kbps in throughput.values())
        print(f"{label:>16} {cells}")

    print(
        "\nBoth flows converge on S2, and the nearer sender wins most of\n"
        "the air time. Overrides tweak the same spec in place - no\n"
        "experiment code was written for this scenario."
    )


if __name__ == "__main__":
    main()
