#!/usr/bin/env python3
"""The paper's four-station experiment (Figures 5-9), step by step.

Two concurrent sessions on a line of four stations::

    S1 ---25m--- S2 ---80m--- S3 ---25m--- S4
    |__ session 1 __|          |__ session 2 __|

At 11 Mbps the data transmission range is ~31 m, so the sessions cannot
decode each other's data — yet they interact strongly through carrier
sensing, preamble locking and control-frame ranges, and session 2 wins
by a large factor.  At 2 Mbps the ranges grow, the stations share a more
uniform view of the channel and the system becomes more balanced.

Run with::

    python examples/hidden_exposed_stations.py [--duration 10]
"""

import argparse

from repro import CbrSource, Rate, UdpSink, build_network
from repro.channel.placement import figure6_placement, figure8_placement


def run_scenario(placement, rate, rts_cts, duration_s):
    """Two saturated UDP sessions; returns (s1_kbps, s2_kbps)."""
    positions = [x for x, _ in placement.positions]
    net = build_network(positions, data_rate=rate, rts_enabled=rts_cts)
    sinks = []
    for index, (tx, rx) in enumerate(((0, 1), (2, 3))):
        port = 5001 + index
        sinks.append(UdpSink(net[rx], port=port, warmup_s=1.0))
        CbrSource(net[tx], dst=rx + 1, dst_port=port, payload_bytes=512)
    net.run(duration_s)
    return tuple(s.throughput_bps(duration_s) / 1e3 for s in sinks)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=10.0)
    args = parser.parse_args()

    for label, placement, rate in (
        ("11 Mbps (Figure 6/7)", figure6_placement(), Rate.MBPS_11),
        ("2 Mbps (Figure 8/9)", figure8_placement(), Rate.MBPS_2),
    ):
        print(f"\n=== {label}: d(2,3) = {placement.distance(1, 2):g} m ===")
        print(f"{'access scheme':>16} {'S1->S2':>10} {'S3->S4':>10} {'ratio':>7}")
        for rts_cts in (False, True):
            s1, s2 = run_scenario(placement, rate, rts_cts, args.duration)
            scheme = "RTS/CTS" if rts_cts else "basic"
            print(
                f"{scheme:>16} {s1:>8.0f} K {s2:>8.0f} K {s2 / max(s1, 1):>7.2f}"
            )

    print(
        "\nSession 2 dominates at 11 Mbps even though S1 and S3 are far\n"
        "outside each other's transmission range; the 2 Mbps system is\n"
        "visibly more balanced - the paper's central §3.3 finding."
    )


if __name__ == "__main__":
    main()
