#!/usr/bin/env python3
"""TCP over a lossy 802.11b link: ftp transfers at the range edge.

Moves a TCP bulk transfer progressively closer to the 2 Mbps range edge
and reports goodput, MAC retries and TCP-level recovery — showing how
the MAC's ARQ masks most channel loss until the link truly collapses
(one reason the paper's TCP results stay usable despite the channel).

Run with::

    python examples/tcp_over_wireless.py
"""

from repro import BulkTcpReceiver, BulkTcpSender, Rate, build_network


def run_transfer(distance_m: float, duration_s: float = 8.0):
    """One bulk transfer; returns (goodput_kbps, mac_retries, tcp_rexmits)."""
    net = build_network(
        [0, distance_m], data_rate=Rate.MBPS_2, fast_sigma_db=3.0, seed=4
    )
    receiver = BulkTcpReceiver(net[1], port=80, warmup_s=1.0)
    sender = BulkTcpSender(net[0], dst=2, dst_port=80)
    net.run(duration_s)
    connection = sender.connection
    return (
        receiver.throughput_bps(duration_s) / 1e3,
        net[0].mac.counters.retries,
        connection.segments_retransmitted + connection.timeouts,
    )


def main() -> None:
    print("TCP bulk transfer at 2 Mbps, walking toward the range edge "
          "(~94 m):\n")
    print(f"{'distance':>9} {'goodput':>10} {'MAC retries':>12} {'TCP rexmits':>12}")
    for distance in (20, 50, 70, 80, 90, 100):
        goodput, mac_retries, tcp_rexmits = run_transfer(float(distance))
        print(
            f"{distance:>7} m {goodput:>8.0f} K {mac_retries:>12} "
            f"{tcp_rexmits:>12}"
        )
    print(
        "\nMAC-layer retransmissions absorb the channel's per-frame losses\n"
        "until deep into the transition region; only near the range edge\n"
        "does loss reach TCP and collapse the goodput."
    )


if __name__ == "__main__":
    main()
