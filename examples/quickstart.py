#!/usr/bin/env python3
"""Quickstart: saturate a two-station 802.11b link and compare against
the paper's analytic bound (Equation 1).

Run with::

    python examples/quickstart.py
"""

from repro import (
    CbrSource,
    Rate,
    ThroughputModel,
    UdpSink,
    build_network,
)


def main() -> None:
    duration_s = 2.0

    print("Two stations 10 m apart, saturated CBR/UDP at 512 B payloads.\n")
    print(f"{'rate':>10} {'simulated':>12} {'Eq. (1)':>12} {'ratio':>7}")
    for rate in (Rate.MBPS_1, Rate.MBPS_2, Rate.MBPS_5_5, Rate.MBPS_11):
        # A fresh network per rate: two nodes on a calm, deterministic
        # channel (no shadowing) well inside transmission range.
        net = build_network([0, 10], data_rate=rate, fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
        net.run(duration_s)

        simulated = sink.throughput_bps(duration_s) / 1e6
        analytic = ThroughputModel().max_throughput_bps(512, rate) / 1e6
        print(
            f"{str(rate):>10} {simulated:>10.3f} M {analytic:>10.3f} M "
            f"{simulated / analytic:>7.3f}"
        )

    print(
        "\nThe simulator saturates to the paper's Equation-(1) bound at "
        "every rate:\nonly a fraction of the nominal bandwidth reaches the "
        "application (paper §3.1)."
    )


if __name__ == "__main__":
    main()
