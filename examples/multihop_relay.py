#!/usr/bin/env python3
"""Multi-hop ad hoc forwarding (the paper's §1 motivation).

The paper studies single-hop networks but motivates multi-hop ad hoc
networking: stations forward packets to extend the network beyond one
transmission radius.  This example builds a 3-hop chain with static
routes and measures end-to-end throughput as hops are added — the
classic ~1/hops decay of a shared-channel relay chain.

Run with::

    python examples/multihop_relay.py
"""

from repro import CbrSource, Rate, UdpSink, build_network


def run_chain(hops: int, duration_s: float = 6.0) -> float:
    """A chain of ``hops`` 70 m links; returns end-to-end goodput (kbps)."""
    positions = [index * 70.0 for index in range(hops + 1)]
    net = build_network(positions, data_rate=Rate.MBPS_2, fast_sigma_db=0.0)
    destination = net.nodes[-1]
    # Static hop-by-hop routes in both directions.
    for index, node in enumerate(net.nodes):
        if index < len(net.nodes) - 1:
            node.routing.add_route(dst=destination.address,
                                   next_hop=node.address + 1)
        if index > 0:
            node.routing.add_route(dst=net.nodes[0].address,
                                   next_hop=node.address - 1)
    sink = UdpSink(destination, port=5001, warmup_s=1.0)
    CbrSource(net[0], dst=destination.address, dst_port=5001, payload_bytes=512)
    net.run(duration_s)
    return sink.throughput_bps(duration_s) / 1e3


def main() -> None:
    print("Saturated UDP over a chain of 70 m hops at 2 Mbps:\n")
    print(f"{'hops':>5} {'end-to-end goodput':>20}")
    single_hop = None
    for hops in (1, 2, 3):
        goodput = run_chain(hops)
        if single_hop is None:
            single_hop = goodput
        print(f"{hops:>5} {goodput:>16.0f} K   ({goodput / single_hop:.2f}x)")
    print(
        "\nEvery relay competes for the same channel, so adding hops\n"
        "divides the goodput - why the paper calls multi-hop behaviour\n"
        "'fundamentally different from wired networks'."
    )


if __name__ == "__main__":
    main()
