#!/usr/bin/env python3
"""Reproduce the paper's range measurements (Figures 3-4, Table 3).

Walks a receiver away from a transmitter at each NIC rate, measuring the
packet loss rate exactly like the paper's outdoor survey, then estimates
the transmission ranges and compares them with the ns-2 folklore value
of 250 m the paper criticises.

Run with::

    python examples/range_survey.py [--probes 150]
"""

import argparse

from repro.analysis.ascii_plot import line_plot
from repro.core.params import ALL_RATES
from repro.experiments.ranges import (
    FIGURE3_DISTANCES_M,
    estimate_tx_range,
    run_loss_sweep,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--probes", type=int, default=150)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    curves = []
    print("sweeping distances 20..150 m at each rate "
          f"({args.probes} probes per point)...")
    for rate in reversed(ALL_RATES):
        curve = run_loss_sweep(
            rate, FIGURE3_DISTANCES_M, probes=args.probes, seed=args.seed
        )
        curves.append(curve)

    print()
    print(
        line_plot(
            list(FIGURE3_DISTANCES_M),
            {curve.label: list(curve.loss_rates) for curve in curves},
            y_min=0.0,
            y_max=1.0,
            title="Packet loss vs distance (Figure 3)",
        )
    )

    print("\nestimated transmission ranges (50% loss crossing):")
    for curve in curves:
        estimate = estimate_tx_range(curve)
        print(
            f"  {curve.label:>9}: {estimate:6.1f} m   "
            f"(ns-2 assumes 250 m -> {250 / estimate:.1f}x too long)"
        )
    print(
        "\nPaper Table 3: 30 / 70 / 90-100 / 110-130 m - the measured\n"
        "ranges are 2-3x shorter than what classic simulators assume."
    )


if __name__ == "__main__":
    main()
