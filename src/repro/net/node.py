"""Full-stack node composition.

A :class:`Node` wires one station's whole stack together: PHY transceiver
on the shared medium, DCF MAC, IP layer with static routing, and the UDP
and TCP protocol objects.  Experiments construct nodes and then attach
applications from :mod:`repro.apps`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.channel.medium import Medium
from repro.channel.shadowing import Position
from repro.core.params import Dot11bConfig, Rate
from repro.mac.dcf import AckPolicy, MacConfig, MacStation
from repro.mac.ratecontrol import ArfConfig, ArfRateController, RateController
from repro.net.ip import IpLayer
from repro.net.routing import StaticRouting
from repro.phy.radio import RadioParameters
from repro.phy.reception import ReceptionModel
from repro.phy.transceiver import Transceiver
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer
from repro.transport.tcp.connection import TcpConfig
from repro.transport.tcp.sockets import TcpProtocol
from repro.transport.udp import UdpProtocol


@dataclass(frozen=True)
class NodeStackConfig:
    """Everything configurable about a node's protocol stack."""

    data_rate: Rate = Rate.MBPS_11
    dot11: Dot11bConfig = field(default_factory=Dot11bConfig)
    rts_enabled: bool = False
    ack_policy: AckPolicy = AckPolicy.ALWAYS
    radio: RadioParameters = field(default_factory=RadioParameters.calibrated)
    tcp: TcpConfig = field(default_factory=TcpConfig)
    max_queue_frames: int = 200
    #: Enable ARF dynamic rate switching (paper §2) instead of the fixed
    #: ``data_rate``.  Each node gets its own controller instance.
    arf: ArfConfig | None = None
    #: MAC fragmentation threshold; ``None`` disables fragmentation.
    fragmentation_threshold_bytes: int | None = None


class Node:
    """One complete station."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        address: int,
        position_m: Position,
        stack: NodeStackConfig | None = None,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
        reception: ReceptionModel | None = None,
    ):
        if stack is None:
            stack = NodeStackConfig()
        if rng is None:
            rng = random.Random(address)
        if tracer is None:
            tracer = Tracer()
        self.sim = sim
        self.address = address
        self.stack = stack
        self.phy = Transceiver(
            sim,
            medium,
            stack.radio,
            name=f"n{address}",
            position_m=position_m,
            reception=reception,
            rng=rng,
            tracer=tracer,
        )
        self.rate_controller: RateController | None = (
            ArfRateController(stack.arf) if stack.arf is not None else None
        )
        self.mac = MacStation(
            sim,
            self.phy,
            MacConfig(
                address=address,
                data_rate=stack.data_rate,
                dot11=stack.dot11,
                rts_enabled=stack.rts_enabled,
                ack_policy=stack.ack_policy,
                max_queue_frames=stack.max_queue_frames,
                fragmentation_threshold_bytes=stack.fragmentation_threshold_bytes,
            ),
            rng=rng,
            tracer=tracer,
            rate_controller=self.rate_controller,
        )
        self.routing = StaticRouting(address)
        self.ip = IpLayer(self.mac, self.routing)
        self.udp = UdpProtocol(self.ip)
        self.tcp = TcpProtocol(sim, self.ip, stack.tcp, tracer=tracer)
        self._alive = True

    @property
    def position_m(self) -> Position:
        """The node's position on the field."""
        return self.phy.position_m

    @property
    def alive(self) -> bool:
        """False between :meth:`crash` and :meth:`reboot`."""
        return self._alive

    def crash(self) -> None:
        """Power the station down mid-run (fault injection).

        The radio goes deaf, the MAC queue and all pending MAC timers
        are flushed, and every TCP connection's in-flight state is
        dropped without a FIN — the full amnesia of a power failure.
        Applications holding references to this node keep running; their
        sends fail at the MAC until :meth:`reboot`.
        """
        if not self._alive:
            return
        self._alive = False
        self.phy.power_off()
        self.mac.shutdown()
        self.tcp.abort_all()

    def reboot(self) -> None:
        """Bring a crashed station back with factory-fresh MAC/PHY state."""
        if self._alive:
            return
        self._alive = True
        self.phy.power_on()
        self.mac.restart()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.address} @ {self.position_m})"
