"""IP datagrams as the MAC sees them.

Addresses are small integers; a node's IP address equals its MAC address
(the experiments configure a flat single-subnet ad hoc network, like the
paper's test-bed).  Sizes are tracked explicitly because every byte of
header becomes airtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.encapsulation import IP_HEADER_BYTES, TransportProtocol
from repro.errors import ConfigurationError

#: Protocol tags carried in the IP header.
PROTO_UDP = TransportProtocol.UDP.value
PROTO_TCP = TransportProtocol.TCP.value

#: Initial time-to-live.  Generous against any plausible topology (the
#: scale experiments top out well under 32 hops) while still bounding a
#: routing loop to a finite, ledger-visible ``ttl-expired`` drop.
DEFAULT_TTL = 32


@dataclass(frozen=True)
class Datagram:
    """One IP datagram: transport segment + addressing + total size."""

    src: int
    dst: int
    protocol: str
    segment: Any
    #: Full datagram size (transport segment + IP header), in bytes;
    #: this is the MSDU size the MAC transmits.
    size_bytes: int
    #: Flight-recorder identity: unique per originating node, assigned
    #: by :class:`~repro.net.ip.IpLayer` so the packet-conservation
    #: ledger can follow the SDU across layers.  ``-1`` means untracked
    #: (datagrams built outside an :class:`IpLayer`, e.g. in tests).
    sdu_id: int = -1
    #: Remaining hops; forwarders decrement and drop at zero
    #: (``ttl-expired``), so a routing loop can never orbit forever.
    ttl: int = DEFAULT_TTL

    def __post_init__(self) -> None:
        if self.size_bytes < IP_HEADER_BYTES:
            raise ConfigurationError(
                f"datagram of {self.size_bytes} B is smaller than an IP header"
            )
        if self.protocol not in (PROTO_UDP, PROTO_TCP):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
        if self.ttl < 0:
            raise ConfigurationError(f"ttl must be >= 0, got {self.ttl}")
