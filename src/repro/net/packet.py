"""IP datagrams as the MAC sees them.

Addresses are small integers; a node's IP address equals its MAC address
(the experiments configure a flat single-subnet ad hoc network, like the
paper's test-bed).  Sizes are tracked explicitly because every byte of
header becomes airtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.encapsulation import IP_HEADER_BYTES, TransportProtocol
from repro.errors import ConfigurationError

#: Protocol tags carried in the IP header.
PROTO_UDP = TransportProtocol.UDP.value
PROTO_TCP = TransportProtocol.TCP.value


@dataclass(frozen=True)
class Datagram:
    """One IP datagram: transport segment + addressing + total size."""

    src: int
    dst: int
    protocol: str
    segment: Any
    #: Full datagram size (transport segment + IP header), in bytes;
    #: this is the MSDU size the MAC transmits.
    size_bytes: int
    #: Flight-recorder identity: unique per originating node, assigned
    #: by :class:`~repro.net.ip.IpLayer` so the packet-conservation
    #: ledger can follow the SDU across layers.  ``-1`` means untracked
    #: (datagrams built outside an :class:`IpLayer`, e.g. in tests).
    sdu_id: int = -1

    def __post_init__(self) -> None:
        if self.size_bytes < IP_HEADER_BYTES:
            raise ConfigurationError(
                f"datagram of {self.size_bytes} B is smaller than an IP header"
            )
        if self.protocol not in (PROTO_UDP, PROTO_TCP):
            raise ConfigurationError(f"unknown protocol {self.protocol!r}")
