"""Static routing.

The paper's test-bed is a static single-hop ad hoc network, so the
default route to any destination is the destination itself.  Explicit
next-hop entries enable the simple multi-hop extension (DESIGN.md §8):
intermediate nodes forward datagrams hop by hop.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class StaticRouting:
    """A per-node next-hop table with direct delivery as the default."""

    def __init__(self, own_address: int):
        self._own = own_address
        self._next_hop: dict[int, int] = {}

    def add_route(self, dst: int, next_hop: int) -> None:
        """Route traffic for ``dst`` via ``next_hop``."""
        if dst == self._own:
            raise ConfigurationError("cannot add a route to the node itself")
        self._next_hop[dst] = next_hop

    def next_hop(self, dst: int) -> int:
        """The neighbour to hand a datagram for ``dst`` to."""
        return self._next_hop.get(dst, dst)

    def routes(self) -> dict[int, int]:
        """A copy of the explicit entries."""
        return dict(self._next_hop)
