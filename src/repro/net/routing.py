"""Routing: per-node next-hop tables and topology-aware route builders.

The paper's test-bed is a static single-hop ad hoc network, so the
default route to any destination is the destination itself.  Two
extensions open real multihop (DESIGN.md §8):

* explicit next-hop entries — intermediate nodes forward datagrams hop
  by hop, and a node can be pinned off the direct default;
* :func:`build_shortest_path_tables` — hop-count BFS over the
  connectivity graph at build time, producing one next-hop table per
  node so chains and grids forward end to end without hand-wiring.

A strict table (``default_direct=False``) answers ``None`` for unknown
destinations; the IP layer surfaces that as a typed ``no-route`` ledger
drop instead of handing the MAC a frame for an unreachable neighbour.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence

from repro.channel.shadowing import Position, distance_m
from repro.errors import ConfigurationError

#: Routing policies a scenario spec can pin (``None`` means the default,
#: single-hop ``direct``).
ROUTING_POLICIES = ("direct", "shortest-path")


class StaticRouting:
    """A per-node next-hop table.

    With ``default_direct`` (the paper's single-hop default) a missing
    entry routes straight to the destination; without it a miss returns
    ``None`` — the caller's signal that the destination is unreachable.
    """

    def __init__(self, own_address: int, default_direct: bool = True):
        self._own = own_address
        #: Fall back to direct delivery on a table miss.  Topology-built
        #: tables clear this: they enumerate everything reachable, so a
        #: miss *means* unreachable.
        self.default_direct = default_direct
        self._next_hop: dict[int, int] = {}

    def add_route(self, dst: int, next_hop: int) -> None:
        """Route traffic for ``dst`` via ``next_hop``."""
        if dst == self._own:
            raise ConfigurationError("cannot add a route to the node itself")
        self._next_hop[dst] = next_hop

    def install(self, table: Mapping[int, int], strict: bool = True) -> None:
        """Replace the table wholesale (and, by default, go strict)."""
        if self._own in table:
            raise ConfigurationError("cannot install a route to the node itself")
        self._next_hop = dict(table)
        if strict:
            self.default_direct = False

    def next_hop(self, dst: int) -> int | None:
        """The neighbour to hand a datagram for ``dst`` to, or ``None``."""
        hop = self._next_hop.get(dst)
        if hop is None and self.default_direct:
            return dst
        return hop

    def routes(self) -> dict[int, int]:
        """A copy of the explicit entries."""
        return dict(self._next_hop)


def connectivity_graph(
    positions_m: Sequence[Position], max_range_m: float
) -> dict[int, tuple[int, ...]]:
    """Adjacency over addresses 1..N: an edge iff within ``max_range_m``.

    Neighbour tuples are ascending by address, which makes every
    traversal over the graph deterministic by construction.
    """
    if max_range_m <= 0:
        raise ConfigurationError(f"max range must be > 0 m, got {max_range_m}")
    n = len(positions_m)
    graph: dict[int, tuple[int, ...]] = {}
    for i in range(n):
        neighbours = [
            j + 1
            for j in range(n)
            if j != i and distance_m(positions_m[i], positions_m[j]) <= max_range_m
        ]
        graph[i + 1] = tuple(neighbours)
    return graph


def build_shortest_path_tables(
    positions_m: Sequence[Position], max_range_m: float
) -> dict[int, dict[int, int]]:
    """Hop-count shortest-path next-hop tables for every node.

    One BFS per destination root: the parent a node is discovered from
    is its next hop toward the root.  Ties (equal hop count through
    several parents) break toward the lowest-address parent because
    neighbour lists are ascending — same topology, same tables, always.
    Unreachable destinations are simply absent, so strict tables answer
    ``None`` and the IP layer records a ``no-route`` drop.
    """
    graph = connectivity_graph(positions_m, max_range_m)
    tables: dict[int, dict[int, int]] = {address: {} for address in graph}
    for root in sorted(graph):
        # parent[v] = the neighbour of v one hop closer to root.
        parent: dict[int, int] = {root: root}
        frontier = deque([root])
        while frontier:
            v = frontier.popleft()
            for w in graph[v]:
                if w not in parent:
                    parent[w] = v
                    frontier.append(w)
        for v, via in parent.items():
            if v != root:
                tables[v][root] = via
    return tables
