"""The IP-like layer: encapsulation, forwarding, protocol dispatch."""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.core.encapsulation import IP_HEADER_BYTES
from repro.errors import ConfigurationError
from repro.mac.dcf import MacStation
from repro.net.packet import Datagram
from repro.net.routing import StaticRouting

ProtocolHandler = Callable[[Any, int], None]  # (segment, src_address)


class IpLayer:
    """One node's network layer on top of its MAC."""

    def __init__(self, mac: MacStation, routing: StaticRouting | None = None):
        self._mac = mac
        self._address = mac.address
        self._routing = routing if routing is not None else StaticRouting(mac.address)
        self._handlers: dict[str, ProtocolHandler] = {}
        self._next_sdu_id = 0
        self.datagrams_sent = 0
        self.datagrams_forwarded = 0
        self.datagrams_delivered = 0
        self.send_failures = 0
        self.datagrams_no_route = 0
        self.datagrams_ttl_expired = 0
        mac.set_receive_callback(self._on_mac_receive)

    @property
    def address(self) -> int:
        """This node's address."""
        return self._address

    @property
    def routing(self) -> StaticRouting:
        """The routing table."""
        return self._routing

    @property
    def sim(self):
        """The simulator of the MAC this layer rides on."""
        return self._mac.sim

    @property
    def tracer(self):
        """The stack's shared tracer."""
        return self._mac.tracer

    def register_protocol(self, protocol: str, handler: ProtocolHandler) -> None:
        """Attach a transport: ``handler(segment, src)`` on delivery."""
        if protocol in self._handlers:
            raise ConfigurationError(f"protocol {protocol!r} already registered")
        self._handlers[protocol] = handler

    def send(self, segment: Any, segment_bytes: int, dst: int, protocol: str) -> bool:
        """Encapsulate a transport segment and queue it on the MAC.

        Returns False if the MAC queue rejected the frame (tail drop).
        """
        datagram = Datagram(
            src=self._address,
            dst=dst,
            protocol=protocol,
            segment=segment,
            size_bytes=segment_bytes + IP_HEADER_BYTES,
            sdu_id=self._next_sdu_id,
        )
        self._next_sdu_id += 1
        tracer = self._mac.tracer
        if tracer.audit:
            # The open event must precede the MAC's enqueue/drop events,
            # so the ledger sees the SDU before any terminal state.
            tracer.emit_audit(
                self._mac.sim.now_ns,
                f"net.{self._address}",
                "sdu_open",
                sdu=datagram.sdu_id,
                origin=self._address,
                dst=dst,
                protocol=protocol,
                size_bytes=datagram.size_bytes,
                src_port=getattr(segment, "src_port", None),
            )
        accepted = self._transmit(datagram)
        if accepted:
            self.datagrams_sent += 1
        else:
            self.send_failures += 1
        return accepted

    def _transmit(self, datagram: Datagram) -> bool:
        next_hop = self._routing.next_hop(datagram.dst)
        if next_hop is None:
            # A strict routing table has no path to this destination.
            # The typed drop is this SDU's terminal state in the ledger —
            # a silent False here would leave the books unbalanced.
            self.datagrams_no_route += 1
            self._drop(datagram, "no-route")
            return False
        return self._mac.enqueue(datagram, next_hop, datagram.size_bytes)

    def _drop(self, datagram: Datagram, reason: str) -> None:
        tracer = self._mac.tracer
        if tracer.audit and datagram.sdu_id >= 0:
            tracer.emit_audit(
                self._mac.sim.now_ns,
                f"net.{self._address}",
                "sdu_drop",
                sdu=datagram.sdu_id,
                origin=datagram.src,
                reason=reason,
            )

    def _on_mac_receive(self, msdu: Any, mac_src: int) -> None:
        if not isinstance(msdu, Datagram):
            return
        tracer = self._mac.tracer
        if msdu.dst == self._address:
            self.datagrams_delivered += 1
            if tracer.audit and msdu.sdu_id >= 0:
                tracer.emit_audit(
                    self._mac.sim.now_ns,
                    f"net.{self._address}",
                    "sdu_deliver",
                    sdu=msdu.sdu_id,
                    origin=msdu.src,
                )
            handler = self._handlers.get(msdu.protocol)
            if handler is not None:
                handler(msdu.segment, msdu.src)
            return
        # Not for us: forward if we know a way (multi-hop extension).
        if msdu.ttl <= 1:
            # This hop would be one too many; the datagram dies here
            # with a typed terminal drop (loop protection).
            self.datagrams_ttl_expired += 1
            self._drop(msdu, "ttl-expired")
            return
        self.datagrams_forwarded += 1
        if tracer.audit and msdu.sdu_id >= 0:
            tracer.emit_audit(
                self._mac.sim.now_ns,
                f"net.{self._address}",
                "sdu_forward",
                sdu=msdu.sdu_id,
                origin=msdu.src,
            )
        self._transmit(replace(msdu, ttl=msdu.ttl - 1))
