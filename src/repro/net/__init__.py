"""Network layer: addressing, IP-like encapsulation, routing, nodes.

A :class:`~repro.net.node.Node` is the full per-station stack the
experiments use: applications talk to UDP/TCP sockets, which hand
segments to the IP layer, which resolves a next hop and queues MSDUs on
the DCF MAC, which drives the PHY on the shared medium.
"""

from repro.net.packet import Datagram, PROTO_TCP, PROTO_UDP
from repro.net.routing import StaticRouting
from repro.net.ip import IpLayer
from repro.net.node import Node, NodeStackConfig

__all__ = [
    "Datagram",
    "IpLayer",
    "Node",
    "NodeStackConfig",
    "PROTO_TCP",
    "PROTO_UDP",
    "StaticRouting",
]
