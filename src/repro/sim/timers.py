"""Restartable one-shot timers on top of the simulator.

MAC protocols are full of "start a timeout, cancel it if the reply
arrives, restart it on retransmission" logic; :class:`Timer` packages that
pattern so state machines never touch raw event handles.

Timers ride the simulator's slot API (`schedule_slot` / `cancel_slot`)
rather than :class:`~repro.sim.engine.EventHandle`, so the restart-heavy
MAC paths (NAV, backoff, response timeouts) allocate nothing per cycle:
a (re)start is one heap push plus two int writes, a cancel is an O(1)
tombstone.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import Simulator


class Timer:
    """A named, restartable one-shot timer.

    The callback is fixed at construction; each (re)start may carry
    different arguments.  Starting a running timer implicitly cancels the
    previous schedule.
    """

    __slots__ = ("_sim", "_callback", "_name", "_slot", "_seq",
                 "_expiry_ns", "_jitter")

    def __init__(
        self, sim: Simulator, callback: Callable[..., None], name: str = ""
    ) -> None:
        self._sim = sim
        self._callback = callback
        self._name = name
        # (slot, seq) of the pending event; seq 0 means "not armed"
        # (the simulator never issues sequence number 0).
        self._slot = -1
        self._seq = 0
        self._expiry_ns = 0
        self._jitter: Callable[[int], int] | None = None

    @property
    def name(self) -> str:
        """Diagnostic name of the timer."""
        return self._name

    @property
    def running(self) -> bool:
        """True while a timeout is pending."""
        return self._seq != 0 and self._sim.slot_active(self._slot, self._seq)

    @property
    def expiry_ns(self) -> int | None:
        """Absolute expiry time, or ``None`` if not running."""
        if self.running:
            return self._expiry_ns
        return None

    def set_jitter(self, jitter: Callable[[int], int] | None) -> None:
        """Install (or clear) a delay-perturbation hook.

        Every subsequent :meth:`start` passes its delay through
        ``jitter`` (clamped to >= 0).  This is the clock-skew hook the
        fault-injection layer uses; an already-armed timer is not
        re-jittered.
        """
        self._jitter = jitter

    def start(self, delay_ns: int, *args: Any) -> None:
        """(Re)arm the timer to fire after ``delay_ns`` nanoseconds."""
        sim = self._sim
        if self._seq != 0:
            sim.cancel_slot(self._slot, self._seq)
        if self._jitter is not None:
            delay_ns = max(0, self._jitter(delay_ns))
        self._slot, self._seq = sim.schedule_slot(delay_ns, self._fire, *args)
        self._expiry_ns = sim.now_ns + delay_ns

    def start_s(self, delay_s: float, *args: Any) -> None:
        """(Re)arm the timer to fire after ``delay_s`` seconds."""
        from repro.units import s_to_ns

        self.start(s_to_ns(delay_s), *args)

    def cancel(self) -> None:
        """Disarm the timer.  Safe to call when not running."""
        if self._seq != 0:
            self._sim.cancel_slot(self._slot, self._seq)
            self._seq = 0

    def _fire(self, *args: Any) -> None:
        self._seq = 0
        self._callback(*args)
