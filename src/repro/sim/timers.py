"""Restartable one-shot timers on top of the simulator.

MAC protocols are full of "start a timeout, cancel it if the reply
arrives, restart it on retransmission" logic; :class:`Timer` packages that
pattern so state machines never touch raw event handles.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import EventHandle, Simulator


class Timer:
    """A named, restartable one-shot timer.

    The callback is fixed at construction; each (re)start may carry
    different arguments.  Starting a running timer implicitly cancels the
    previous schedule.
    """

    def __init__(self, sim: Simulator, callback: Callable[..., None], name: str = ""):
        self._sim = sim
        self._callback = callback
        self._name = name
        self._handle: EventHandle | None = None
        self._jitter: Callable[[int], int] | None = None

    @property
    def name(self) -> str:
        """Diagnostic name of the timer."""
        return self._name

    @property
    def running(self) -> bool:
        """True while a timeout is pending."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def expiry_ns(self) -> int | None:
        """Absolute expiry time, or ``None`` if not running."""
        handle = self._handle
        if handle is None or handle.cancelled:
            return None
        return handle.time_ns

    def set_jitter(self, jitter: Callable[[int], int] | None) -> None:
        """Install (or clear) a delay-perturbation hook.

        Every subsequent :meth:`start` passes its delay through
        ``jitter`` (clamped to >= 0).  This is the clock-skew hook the
        fault-injection layer uses; an already-armed timer is not
        re-jittered.
        """
        self._jitter = jitter

    def start(self, delay_ns: int, *args: Any) -> None:
        """(Re)arm the timer to fire after ``delay_ns`` nanoseconds."""
        self.cancel()
        if self._jitter is not None:
            delay_ns = max(0, self._jitter(delay_ns))
        self._handle = self._sim.schedule(delay_ns, self._fire, *args)

    def start_s(self, delay_s: float, *args: Any) -> None:
        """(Re)arm the timer to fire after ``delay_s`` seconds."""
        from repro.units import s_to_ns

        self.start(s_to_ns(delay_s), *args)

    def cancel(self) -> None:
        """Disarm the timer.  Safe to call when not running."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self, *args: Any) -> None:
        self._handle = None
        self._callback(*args)
