"""Structured tracing of simulation events.

Components publish :class:`TraceRecord` objects ("mac.tx_start",
"phy.rx_drop"...) to a :class:`Tracer`; analysis code subscribes either to
everything or to a category prefix.  Tracing is off by default and costs a
single predicate call per record when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.units import ns_to_s

TraceSubscriber = Callable[["TraceRecord"], None]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time_ns: int
    category: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{ns_to_s(self.time_ns):.6f}s] {self.category}.{self.event} {kv}"


class Tracer:
    """Fan-out hub for trace records with per-prefix subscriptions."""

    def __init__(self) -> None:
        self._subscribers: list[tuple[str, TraceSubscriber]] = []
        self._counters: dict[str, int] = {}
        #: Gate for the audit event channel (:meth:`emit_audit`).  A
        #: public attribute so instrumented hook points can guard with a
        #: single attribute read (``if tracer.audit: ...``) and pay
        #: nothing — not even keyword-argument packing — when auditing
        #: is off, which it is by default.
        self.audit = False

    @property
    def enabled(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subscribers)

    def subscribe(self, callback: TraceSubscriber, prefix: str = "") -> None:
        """Receive every record whose ``category.event`` starts with ``prefix``."""
        self._subscribers.append((prefix, callback))

    def unsubscribe(self, callback: TraceSubscriber) -> None:
        """Detach a subscriber (all of its prefixes)."""
        self._subscribers = [
            (prefix, cb) for prefix, cb in self._subscribers if cb != callback
        ]

    def emit(
        self, time_ns: int, category: str, event: str, **fields: Any
    ) -> None:
        """Publish one record; also bumps the ``category.event`` counter."""
        key = f"{category}.{event}"
        self._counters[key] = self._counters.get(key, 0) + 1
        if not self._subscribers:
            return
        record = TraceRecord(time_ns, category, event, fields)
        for prefix, callback in self._subscribers:
            if key.startswith(prefix):
                callback(record)

    def emit_audit(
        self, time_ns: int, category: str, event: str, **fields: Any
    ) -> None:
        """Publish an audit-channel record — a complete no-op unless
        :attr:`audit` is on.

        Audit events feed the :mod:`repro.obs` flight recorder.  When
        disabled they bump no counter and fan out to nobody, so trace
        counter digests (and cache keys derived from them) are identical
        whether a build carries audit instrumentation or not.
        """
        if not self.audit:
            return
        self.emit(time_ns, category, event, **fields)

    def count(self, key: str) -> int:
        """How many records of ``category.event`` were emitted."""
        return self._counters.get(key, 0)

    def counters(self) -> dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    def reset_counters(self) -> None:
        """Zero every counter."""
        self._counters.clear()
