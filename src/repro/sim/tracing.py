"""Structured tracing of simulation events.

Components publish :class:`TraceRecord` objects ("mac.tx_start",
"phy.rx_drop"...) to a :class:`Tracer`; analysis code subscribes either to
everything or to a category prefix.  Tracing is off by default and costs a
single predicate call per record when disabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.units import ns_to_s

TraceSubscriber = Callable[["TraceRecord"], None]


@dataclass(frozen=True)
class TraceRecord:
    """One trace event."""

    time_ns: int
    category: str
    event: str
    fields: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kv = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{ns_to_s(self.time_ns):.6f}s] {self.category}.{self.event} {kv}"


class Tracer:
    """Fan-out hub for trace records with per-prefix subscriptions.

    Two emission paths exist:

    * :meth:`emit` — the general path: bumps the ``category.event``
      counter here, then fans out to subscribers.
    * self-counting components (the PHY and MAC hot paths) keep their
      own per-event counter dict, registered via
      :meth:`register_counters`, and call :meth:`fanout` only behind a
      read of the public :attr:`active` flag.  With no subscribers a
      hot-path trace then costs one local dict bump and one attribute
      read — no f-string key, no call into the tracer.  :meth:`count` /
      :meth:`counters` merge the registered dicts back in, so counter
      totals (and the golden trace digests derived from them) are
      identical whichever path a component uses.
    """

    def __init__(self) -> None:
        self._subscribers: list[tuple[str, TraceSubscriber]] = []
        self._counters: dict[str, int] = {}
        self._registered: list[tuple[str, dict[str, int]]] = []
        #: Gate for the audit event channel (:meth:`emit_audit`).  A
        #: public attribute so instrumented hook points can guard with a
        #: single attribute read (``if tracer.audit: ...``) and pay
        #: nothing — not even keyword-argument packing — when auditing
        #: is off, which it is by default.
        self.audit = False
        #: True while at least one subscriber is attached — the cached
        #: flag self-counting components read before calling
        #: :meth:`fanout`.  Maintained by subscribe/unsubscribe.
        self.active = False

    @property
    def enabled(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subscribers)

    def subscribe(self, callback: TraceSubscriber, prefix: str = "") -> None:
        """Receive every record whose ``category.event`` starts with ``prefix``."""
        self._subscribers.append((prefix, callback))
        self.active = True

    def unsubscribe(self, callback: TraceSubscriber) -> None:
        """Detach a subscriber (all of its prefixes)."""
        self._subscribers = [
            (prefix, cb) for prefix, cb in self._subscribers if cb != callback
        ]
        self.active = bool(self._subscribers)

    def register_counters(self, category: str, counters: dict[str, int]) -> None:
        """Adopt a component-owned ``event -> count`` dict.

        The component bumps ``counters`` directly on its hot path;
        :meth:`counters`/:meth:`count` report each entry as
        ``category.event``, summed with anything emitted through
        :meth:`emit` under the same key.  :meth:`reset_counters` clears
        registered dicts in place.
        """
        self._registered.append((category, counters))

    def emit(
        self, time_ns: int, category: str, event: str, **fields: Any
    ) -> None:
        """Publish one record; also bumps the ``category.event`` counter."""
        key = f"{category}.{event}"
        self._counters[key] = self._counters.get(key, 0) + 1
        if not self._subscribers:
            return
        record = TraceRecord(time_ns, category, event, fields)
        for prefix, callback in self._subscribers:
            if key.startswith(prefix):
                callback(record)

    def fanout(
        self, time_ns: int, category: str, event: str, fields: dict[str, Any]
    ) -> None:
        """Deliver one record to subscribers *without* counting it.

        The fan-out half of :meth:`emit`, for self-counting components
        (their registered dict already holds the count).  Callers guard
        with :attr:`active`; calling with no subscribers is a no-op.
        """
        if not self._subscribers:
            return
        key = f"{category}.{event}"
        record = TraceRecord(time_ns, category, event, fields)
        for prefix, callback in self._subscribers:
            if key.startswith(prefix):
                callback(record)

    def emit_audit(
        self, time_ns: int, category: str, event: str, **fields: Any
    ) -> None:
        """Publish an audit-channel record — a complete no-op unless
        :attr:`audit` is on.

        Audit events feed the :mod:`repro.obs` flight recorder.  When
        disabled they bump no counter and fan out to nobody, so trace
        counter digests (and cache keys derived from them) are identical
        whether a build carries audit instrumentation or not.
        """
        if not self.audit:
            return
        self.emit(time_ns, category, event, **fields)

    def count(self, key: str) -> int:
        """How many records of ``category.event`` were emitted."""
        total = self._counters.get(key, 0)
        for category, counters in self._registered:
            prefix = category + "."
            if key.startswith(prefix):
                total += counters.get(key[len(prefix):], 0)
        return total

    def counters(self) -> dict[str, int]:
        """All counters, with registered component dicts merged in."""
        merged = dict(self._counters)
        for category, counters in self._registered:
            for event, value in counters.items():
                key = f"{category}.{event}"
                merged[key] = merged.get(key, 0) + value
        return merged

    def reset_counters(self) -> None:
        """Zero every counter (including registered component dicts)."""
        self._counters.clear()
        for _, counters in self._registered:
            counters.clear()
