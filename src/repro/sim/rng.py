"""Named, reproducible random-number streams.

Every stochastic component of the simulator (backoff draws, shadowing,
packet-error coin flips, application start jitter...) pulls from its own
named substream derived from one master seed.  Two runs with the same
master seed are bit-for-bit identical, and adding a new consumer does not
perturb the draws seen by existing ones.
"""

from __future__ import annotations

import hashlib
import random


class RngManager:
    """Derives independent :class:`random.Random` streams from one seed."""

    def __init__(self, master_seed: int = 1):
        self._master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        """The seed all substreams are derived from."""
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """The substream for ``name``, created on first use.

        The substream seed is a SHA-256 digest of the master seed and the
        name, so distinct names give statistically independent streams and
        the mapping is stable across runs and platforms.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self._master_seed}:{name}".encode()
            ).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, salt: str) -> "RngManager":
        """A new manager whose streams are independent of this one's.

        Used by replication drivers: replication *i* runs on
        ``manager.fork(f"rep{i}")`` so per-run streams never overlap.
        """
        digest = hashlib.sha256(f"{self._master_seed}/{salt}".encode()).digest()
        return RngManager(int.from_bytes(digest[:8], "big"))
