"""The discrete-event simulator core.

Time is an integer number of nanoseconds.  Events scheduled for the same
instant fire in scheduling order (a monotonically increasing sequence
number breaks heap ties), which makes simulations bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError, WatchdogTimeout
from repro.units import ns_to_s, s_to_ns


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped, which keeps both operations O(log n) / O(1).
    """

    __slots__ = ("time_ns", "_callback", "_args", "_cancelled", "_sim")

    time_ns: int
    _callback: Callable[..., None] | None
    _args: tuple[Any, ...]
    _cancelled: bool
    _sim: "Simulator | None"

    def __init__(
        self,
        time_ns: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        sim: "Simulator | None" = None,
    ):
        self.time_ns = time_ns
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self._cancelled:
            self._cancelled = True
            if self._sim is not None:
                self._sim._live_events -= 1
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled and self._callback is not None:
            callback, args = self._callback, self._args
            # Release references before invoking so an exception in the
            # callback cannot keep the closure alive via this handle.
            self._callback = None
            self._args = ()
            self._cancelled = True
            callback(*args)


@dataclass(frozen=True)
class Watchdog:
    """Runaway-simulation guard attached to a :class:`Simulator`.

    Unlike :meth:`Simulator.run`'s ``max_events`` argument — a quiet
    pagination break — an exhausted watchdog budget *raises*
    :class:`~repro.errors.WatchdogTimeout`, so a livelocked scenario
    (e.g. two faulty MACs ping-ponging zero-delay events) surfaces as a
    structured failure instead of spinning forever.

    ``invariant`` is an optional hook called every ``invariant_interval``
    events with the simulator; returning ``False`` (or raising) aborts
    the run — use it for cheap cross-layer consistency checks.
    """

    max_events: int | None = None
    max_wall_s: float | None = None
    invariant: Callable[["Simulator"], bool | None] | None = None
    invariant_interval: int = 1000
    #: Wall-clock rechecks happen every this many events (the syscall is
    #: too slow to pay on every event).
    wall_check_interval: int = 512


class Simulator:
    """Event heap + clock.

    Typical use::

        sim = Simulator()
        sim.schedule_s(1.0, lambda: print("one second in"))
        sim.run(until_s=10.0)
    """

    def __init__(self, watchdog: Watchdog | None = None) -> None:
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._now_ns = 0
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._closed = False
        self._events_processed = 0
        self._live_events = 0
        self._shutdown_hooks: list[Callable[[], None]] = []
        self.watchdog = watchdog

    @property
    def now_ns(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return ns_to_s(self._now_ns)

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue.

        Maintained as a counter (incremented on schedule, decremented on
        cancel/fire) rather than a heap scan, so watchdog invariant
        hooks can poll it every few hundred events for free.
        """
        return self._live_events

    def schedule_at(
        self, time_ns: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if self._closed:
            raise SchedulingError("cannot schedule on a shut-down simulator")
        if time_ns < self._now_ns:
            raise SchedulingError(
                f"cannot schedule at {time_ns} ns: clock is already at "
                f"{self._now_ns} ns"
            )
        handle = EventHandle(time_ns, callback, args, self)
        self._sequence += 1
        self._live_events += 1
        heapq.heappush(self._heap, (time_ns, self._sequence, handle))
        return handle

    def schedule(
        self, delay_ns: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SchedulingError(f"delay must be >= 0 ns, got {delay_ns}")
        return self.schedule_at(self._now_ns + delay_ns, callback, *args)

    def schedule_s(
        self, delay_s: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay_s`` seconds."""
        return self.schedule(s_to_ns(delay_s), callback, *args)

    def run(
        self,
        until_ns: int | None = None,
        until_s: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events in time order.

        Stops when the queue drains, when the clock would pass the given
        horizon (the clock is then advanced *to* the horizon), after
        ``max_events`` events, or when :meth:`stop` is called from inside
        an event.
        """
        if until_ns is not None and until_s is not None:
            raise SchedulingError("pass only one of until_ns / until_s")
        if until_s is not None:
            until_ns = s_to_ns(until_s)
        if until_ns is not None and until_ns < self._now_ns:
            raise SchedulingError(
                f"horizon {until_ns} ns is before current time {self._now_ns} ns"
            )
        if self._closed:
            raise SchedulingError("cannot run a shut-down simulator")
        watchdog = self.watchdog
        deadline = None
        if watchdog is not None and watchdog.max_wall_s is not None:
            deadline = time.monotonic() + watchdog.max_wall_s
        self._stopped = False
        self._running = True
        fired = 0
        # Hot loop: bind everything invariant to locals — the heap, the
        # pop, the horizon — so each event pays attribute lookups only
        # for state that genuinely changes under it (``_stopped`` can be
        # flipped by any callback).
        heap = self._heap
        heappop = heapq.heappop
        try:
            while heap and not self._stopped:
                entry = heap[0]
                time_ns = entry[0]
                if until_ns is not None and time_ns > until_ns:
                    break
                heappop(heap)
                handle = entry[2]
                if handle._cancelled:
                    continue
                self._now_ns = time_ns
                self._live_events -= 1
                handle._fire()
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
                if watchdog is not None:
                    self._check_watchdog(watchdog, fired, deadline)
        finally:
            self._running = False
        if until_ns is not None and not self._stopped and (
            max_events is None or fired < max_events
        ):
            self._now_ns = max(self._now_ns, until_ns)

    def _check_watchdog(
        self, watchdog: Watchdog, fired: int, deadline: float | None
    ) -> None:
        if watchdog.max_events is not None and fired >= watchdog.max_events:
            raise WatchdogTimeout(
                f"watchdog: {fired} events fired in one run "
                f"(budget {watchdog.max_events}) at t={self.now_s:.6f} s"
            )
        if (
            deadline is not None
            and fired % watchdog.wall_check_interval == 0
            and time.monotonic() > deadline
        ):
            raise WatchdogTimeout(
                f"watchdog: wall-clock budget of {watchdog.max_wall_s} s "
                f"exhausted after {fired} events at t={self.now_s:.6f} s"
            )
        if (
            watchdog.invariant is not None
            and fired % watchdog.invariant_interval == 0
            and watchdog.invariant(self) is False
        ):
            raise SimulationError(
                f"watchdog: invariant violated at t={self.now_s:.6f} s "
                f"after {fired} events"
            )

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def add_shutdown_hook(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at the start of :meth:`shutdown`.

        Hooks fire in registration order, exactly once, while the
        simulator is still usable — this is where end-of-life audits
        (e.g. the packet-conservation ledger balance check) belong.
        """
        if self._closed:
            raise SchedulingError(
                "cannot add a shutdown hook to a shut-down simulator"
            )
        self._shutdown_hooks.append(callback)

    def shutdown(self) -> None:
        """Stop permanently: drop all events; further use raises.

        Registered shutdown hooks run first (in registration order),
        then the event queue is dropped.  After shutdown both
        :meth:`run` and the ``schedule*`` family raise
        :class:`~repro.errors.SchedulingError` — a component whose
        timers outlive the scenario fails loudly instead of silently
        queueing work that will never run.
        """
        if self._closed:
            return
        hooks, self._shutdown_hooks = self._shutdown_hooks, []
        for hook in hooks:
            hook()
        self.stop()
        self.clear()
        self._closed = True

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        for _, _, handle in self._heap:
            handle.cancel()
        self._heap.clear()
        self._live_events = 0
