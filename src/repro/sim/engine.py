"""The discrete-event simulator core.

Time is an integer number of nanoseconds.  Events scheduled for the same
instant fire in scheduling order (a monotonically increasing sequence
number breaks heap ties), which makes simulations bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SchedulingError
from repro.units import ns_to_s, s_to_ns


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Cancellation is lazy: the heap entry stays in place and is skipped when
    popped, which keeps both operations O(log n) / O(1).
    """

    __slots__ = ("time_ns", "_callback", "_args", "_cancelled")

    def __init__(self, time_ns: int, callback: Callable[..., None], args: tuple):
        self.time_ns = time_ns
        self._callback = callback
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._cancelled = True
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    def _fire(self) -> None:
        if not self._cancelled:
            callback, args = self._callback, self._args
            # Release references before invoking so an exception in the
            # callback cannot keep the closure alive via this handle.
            self._callback = None
            self._args = ()
            self._cancelled = True
            callback(*args)


class Simulator:
    """Event heap + clock.

    Typical use::

        sim = Simulator()
        sim.schedule_s(1.0, lambda: print("one second in"))
        sim.run(until_s=10.0)
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, EventHandle]] = []
        self._now_ns = 0
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._events_processed = 0

    @property
    def now_ns(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return ns_to_s(self._now_ns)

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue."""
        return sum(1 for _, _, handle in self._heap if not handle.cancelled)

    def schedule_at(
        self, time_ns: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        if time_ns < self._now_ns:
            raise SchedulingError(
                f"cannot schedule at {time_ns} ns: clock is already at "
                f"{self._now_ns} ns"
            )
        handle = EventHandle(time_ns, callback, args)
        self._sequence += 1
        heapq.heappush(self._heap, (time_ns, self._sequence, handle))
        return handle

    def schedule(
        self, delay_ns: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SchedulingError(f"delay must be >= 0 ns, got {delay_ns}")
        return self.schedule_at(self._now_ns + delay_ns, callback, *args)

    def schedule_s(
        self, delay_s: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay_s`` seconds."""
        return self.schedule(s_to_ns(delay_s), callback, *args)

    def run(
        self,
        until_ns: int | None = None,
        until_s: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events in time order.

        Stops when the queue drains, when the clock would pass the given
        horizon (the clock is then advanced *to* the horizon), after
        ``max_events`` events, or when :meth:`stop` is called from inside
        an event.
        """
        if until_ns is not None and until_s is not None:
            raise SchedulingError("pass only one of until_ns / until_s")
        if until_s is not None:
            until_ns = s_to_ns(until_s)
        if until_ns is not None and until_ns < self._now_ns:
            raise SchedulingError(
                f"horizon {until_ns} ns is before current time {self._now_ns} ns"
            )
        self._stopped = False
        self._running = True
        fired = 0
        try:
            while self._heap and not self._stopped:
                time_ns, _, handle = self._heap[0]
                if until_ns is not None and time_ns > until_ns:
                    break
                heapq.heappop(self._heap)
                if handle.cancelled:
                    continue
                self._now_ns = time_ns
                handle._fire()
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False
        if until_ns is not None and not self._stopped and (
            max_events is None or fired < max_events
        ):
            self._now_ns = max(self._now_ns, until_ns)

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        for _, _, handle in self._heap:
            handle.cancel()
        self._heap.clear()
