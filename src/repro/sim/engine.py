"""The discrete-event simulator core.

Time is an integer number of nanoseconds.  Events scheduled for the same
instant fire in scheduling order (a monotonically increasing sequence
number breaks heap ties), which makes simulations bit-for-bit reproducible.

Event storage is array-backed: each scheduled event occupies a *slot* in
parallel lists (callback, args, token), slots are recycled through a
free-list, and the heap holds plain ``(time_ns, seq, slot)`` integer
triples.  Cancellation is an O(1) tombstone — the slot's token is
invalidated and the heap entry is skipped when popped; no heap surgery,
no per-event object allocation on the hot path.  The :class:`EventHandle`
returned by the public ``schedule*`` family is a thin view over a slot;
components with a tight schedule/cancel loop (timers, the medium) use
the slot API directly and never allocate a handle at all.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import SchedulingError, SimulationError, WatchdogTimeout
from repro.units import ns_to_s, s_to_ns

#: Event-count accumulator across every :class:`Simulator` in the process.
#: Purely observational (perf harnesses read it to compute events/sec);
#: nothing simulation-visible ever depends on it.
_events_fired_total = 0


def events_fired_total() -> int:
    """Total events fired by all simulators in this process (telemetry)."""
    return _events_fired_total


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    A thin view over the simulator's slot storage: cancellation is lazy
    (the heap entry stays in place and is skipped when popped), keeping
    both operations O(log n) / O(1).  A handle held across its event's
    firing stays safe — the slot token it captured can never be
    reissued, so a stale :meth:`cancel` is a no-op even after the slot
    has been recycled for a different event.
    """

    __slots__ = ("time_ns", "_sim", "_slot", "_seq")

    time_ns: int
    _sim: "Simulator"
    _slot: int
    _seq: int

    def __init__(self, sim: "Simulator", slot: int, seq: int, time_ns: int) -> None:
        self.time_ns = time_ns
        self._sim = sim
        self._slot = slot
        self._seq = seq

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._sim.cancel_slot(self._slot, self._seq)

    @property
    def cancelled(self) -> bool:
        """True once the event can no longer fire (cancelled or fired)."""
        return not self._sim.slot_active(self._slot, self._seq)


@dataclass(frozen=True)
class Watchdog:
    """Runaway-simulation guard attached to a :class:`Simulator`.

    Unlike :meth:`Simulator.run`'s ``max_events`` argument — a quiet
    pagination break — an exhausted watchdog budget *raises*
    :class:`~repro.errors.WatchdogTimeout`, so a livelocked scenario
    (e.g. two faulty MACs ping-ponging zero-delay events) surfaces as a
    structured failure instead of spinning forever.

    ``invariant`` is an optional hook called every ``invariant_interval``
    events with the simulator; returning ``False`` (or raising) aborts
    the run — use it for cheap cross-layer consistency checks.
    """

    max_events: int | None = None
    max_wall_s: float | None = None
    invariant: Callable[["Simulator"], bool | None] | None = None
    invariant_interval: int = 1000
    #: Wall-clock rechecks happen every this many events (the syscall is
    #: too slow to pay on every event).
    wall_check_interval: int = 512


class Simulator:
    """Event heap + clock.

    Typical use::

        sim = Simulator()
        sim.schedule_s(1.0, lambda: print("one second in"))
        sim.run(until_s=10.0)
    """

    def __init__(self, watchdog: Watchdog | None = None) -> None:
        self._heap: list[tuple[int, int, int]] = []
        # Slot storage: _slot_token[i] is the seq of the event occupying
        # slot i (0 = free); _slot_callback/_slot_args hold its payload.
        self._slot_token: list[int] = []
        self._slot_callback: list[Callable[..., None] | None] = []
        self._slot_args: list[tuple[Any, ...]] = []
        self._free_slots: list[int] = []
        self._now_ns = 0
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._closed = False
        self._events_processed = 0
        self._live_events = 0
        self._shutdown_hooks: list[Callable[[], None]] = []
        self.watchdog = watchdog

    @property
    def now_ns(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now_ns

    @property
    def now_s(self) -> float:
        """Current simulation time in seconds."""
        return ns_to_s(self._now_ns)

    @property
    def events_processed(self) -> int:
        """Number of events fired since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events in the queue.

        Maintained as a counter (incremented on schedule, decremented on
        cancel/fire) rather than a heap scan, so watchdog invariant
        hooks can poll it every few hundred events for free.
        """
        return self._live_events

    # ------------------------------------------------------- slot API

    def schedule_slot_at(
        self, time_ns: int, callback: Callable[..., None], *args: Any
    ) -> tuple[int, int]:
        """Schedule ``callback(*args)`` at ``time_ns``; return ``(slot, seq)``.

        The low-churn path: no :class:`EventHandle` is allocated.  Keep
        the returned pair to :meth:`cancel_slot` later, or discard it
        for fire-and-forget events.  ``seq`` values are never reused, so
        a stale pair can never cancel a different event.
        """
        if self._closed:
            raise SchedulingError("cannot schedule on a shut-down simulator")
        if time_ns < self._now_ns:
            raise SchedulingError(
                f"cannot schedule at {time_ns} ns: clock is already at "
                f"{self._now_ns} ns"
            )
        seq = self._sequence + 1
        self._sequence = seq
        free = self._free_slots
        if free:
            slot = free.pop()
            self._slot_token[slot] = seq
            self._slot_callback[slot] = callback
            self._slot_args[slot] = args
        else:
            slot = len(self._slot_token)
            self._slot_token.append(seq)
            self._slot_callback.append(callback)
            self._slot_args.append(args)
        self._live_events += 1
        heapq.heappush(self._heap, (time_ns, seq, slot))
        return slot, seq

    def schedule_slot(
        self, delay_ns: int, callback: Callable[..., None], *args: Any
    ) -> tuple[int, int]:
        """Slot-API twin of :meth:`schedule`: relative delay, no handle.

        Implemented in full (not via :meth:`schedule_slot_at`) — this is
        the single hottest scheduling entry point (timers, the medium),
        and the extra frame was measurable.
        """
        if delay_ns < 0:
            raise SchedulingError(f"delay must be >= 0 ns, got {delay_ns}")
        if self._closed:
            raise SchedulingError("cannot schedule on a shut-down simulator")
        seq = self._sequence + 1
        self._sequence = seq
        free = self._free_slots
        if free:
            slot = free.pop()
            self._slot_token[slot] = seq
            self._slot_callback[slot] = callback
            self._slot_args[slot] = args
        else:
            slot = len(self._slot_token)
            self._slot_token.append(seq)
            self._slot_callback.append(callback)
            self._slot_args.append(args)
        self._live_events += 1
        heapq.heappush(self._heap, (self._now_ns + delay_ns, seq, slot))
        return slot, seq

    def cancel_slot(self, slot: int, seq: int) -> bool:
        """Tombstone the event in ``slot`` if ``seq`` still owns it.

        O(1): the slot is released to the free-list immediately and the
        stale heap entry is skipped when popped.  Returns False (a
        no-op) when the event already fired or was already cancelled.
        """
        if slot < 0 or slot >= len(self._slot_token):
            return False
        if self._slot_token[slot] != seq:
            return False
        self._slot_token[slot] = 0
        self._slot_callback[slot] = None
        self._slot_args[slot] = ()
        self._free_slots.append(slot)
        self._live_events -= 1
        return True

    def slot_active(self, slot: int, seq: int) -> bool:
        """True while the event scheduled as ``(slot, seq)`` can still fire."""
        return (
            0 <= slot < len(self._slot_token) and self._slot_token[slot] == seq
        )

    # ----------------------------------------------------- handle API

    def schedule_at(
        self, time_ns: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time_ns``."""
        slot, seq = self.schedule_slot_at(time_ns, callback, *args)
        return EventHandle(self, slot, seq, time_ns)

    def schedule(
        self, delay_ns: int, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay_ns`` nanoseconds."""
        if delay_ns < 0:
            raise SchedulingError(f"delay must be >= 0 ns, got {delay_ns}")
        return self.schedule_at(self._now_ns + delay_ns, callback, *args)

    def schedule_s(
        self, delay_s: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay_s`` seconds."""
        return self.schedule(s_to_ns(delay_s), callback, *args)

    def run(
        self,
        until_ns: int | None = None,
        until_s: float | None = None,
        max_events: int | None = None,
    ) -> None:
        """Process events in time order.

        Stops when the queue drains, when the clock would pass the given
        horizon (the clock is then advanced *to* the horizon), after
        ``max_events`` events, or when :meth:`stop` is called from inside
        an event.
        """
        global _events_fired_total
        if until_ns is not None and until_s is not None:
            raise SchedulingError("pass only one of until_ns / until_s")
        if until_s is not None:
            until_ns = s_to_ns(until_s)
        if until_ns is not None and until_ns < self._now_ns:
            raise SchedulingError(
                f"horizon {until_ns} ns is before current time {self._now_ns} ns"
            )
        if self._closed:
            raise SchedulingError("cannot run a shut-down simulator")
        watchdog = self.watchdog
        deadline = None
        if watchdog is not None and watchdog.max_wall_s is not None:
            deadline = time.monotonic() + watchdog.max_wall_s
        self._stopped = False
        self._running = True
        fired = 0
        # Hot loop: bind everything invariant to locals — the heap, the
        # pop, the slot arrays — so each event pays attribute lookups
        # only for state that genuinely changes under it (``_stopped``
        # can be flipped by any callback).
        heap = self._heap
        heappop = heapq.heappop
        tokens = self._slot_token
        callbacks = self._slot_callback
        arglists = self._slot_args
        free = self._free_slots
        try:
            while heap and not self._stopped:
                entry = heap[0]
                time_ns = entry[0]
                if until_ns is not None and time_ns > until_ns:
                    break
                heappop(heap)
                slot = entry[2]
                if tokens[slot] != entry[1]:
                    continue  # tombstone of a cancelled event
                callback = callbacks[slot]
                args = arglists[slot]
                # Release the slot before invoking so an exception in
                # the callback cannot keep the closure alive, and so the
                # callback itself may recycle the slot.
                tokens[slot] = 0
                callbacks[slot] = None
                arglists[slot] = ()
                free.append(slot)
                self._now_ns = time_ns
                self._live_events -= 1
                callback(*args)  # type: ignore[misc]
                self._events_processed += 1
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
                if watchdog is not None:
                    self._check_watchdog(watchdog, fired, deadline)
        finally:
            self._running = False
            _events_fired_total += fired
        if until_ns is not None and not self._stopped and (
            max_events is None or fired < max_events
        ):
            self._now_ns = max(self._now_ns, until_ns)

    def _check_watchdog(
        self, watchdog: Watchdog, fired: int, deadline: float | None
    ) -> None:
        if watchdog.max_events is not None and fired >= watchdog.max_events:
            raise WatchdogTimeout(
                f"watchdog: {fired} events fired in one run "
                f"(budget {watchdog.max_events}) at t={self.now_s:.6f} s"
            )
        if (
            deadline is not None
            and fired % watchdog.wall_check_interval == 0
            and time.monotonic() > deadline
        ):
            raise WatchdogTimeout(
                f"watchdog: wall-clock budget of {watchdog.max_wall_s} s "
                f"exhausted after {fired} events at t={self.now_s:.6f} s"
            )
        if (
            watchdog.invariant is not None
            and fired % watchdog.invariant_interval == 0
            and watchdog.invariant(self) is False
        ):
            raise SimulationError(
                f"watchdog: invariant violated at t={self.now_s:.6f} s "
                f"after {fired} events"
            )

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def add_shutdown_hook(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` at the start of :meth:`shutdown`.

        Hooks fire in registration order, exactly once, while the
        simulator is still usable — this is where end-of-life audits
        (e.g. the packet-conservation ledger balance check) belong.
        """
        if self._closed:
            raise SchedulingError(
                "cannot add a shutdown hook to a shut-down simulator"
            )
        self._shutdown_hooks.append(callback)

    def shutdown(self) -> None:
        """Stop permanently: drop all events; further use raises.

        Registered shutdown hooks run first (in registration order),
        then the event queue is dropped.  After shutdown both
        :meth:`run` and the ``schedule*`` family raise
        :class:`~repro.errors.SchedulingError` — a component whose
        timers outlive the scenario fails loudly instead of silently
        queueing work that will never run.
        """
        if self._closed:
            return
        hooks, self._shutdown_hooks = self._shutdown_hooks, []
        for hook in hooks:
            hook()
        self.stop()
        self.clear()
        self._closed = True

    def clear(self) -> None:
        """Drop all pending events (the clock is left untouched)."""
        for _, seq, slot in self._heap:
            if self._slot_token[slot] == seq:
                self._slot_token[slot] = 0
                self._slot_callback[slot] = None
                self._slot_args[slot] = ()
                self._free_slots.append(slot)
        self._heap.clear()
        self._live_events = 0
