"""Discrete-event simulation kernel.

A small, deterministic event-driven kernel: integer-nanosecond clock, a
binary-heap event queue with stable FIFO ordering for simultaneous events,
cancellable handles, restartable timers, named reproducible random streams
and a structured tracing facility.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngManager
from repro.sim.timers import Timer
from repro.sim.tracing import TraceRecord, Tracer

__all__ = [
    "EventHandle",
    "RngManager",
    "Simulator",
    "Timer",
    "TraceRecord",
    "Tracer",
]
