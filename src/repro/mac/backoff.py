"""Contention-window management and backoff slot bookkeeping.

:class:`ContentionWindow` implements the binary exponential schedule of
Table 1 (CWmin 32 slots, CWmax 1024 slots): draws are uniform over
``{0, ..., W-1}``, the window doubles on every failure and snaps back to
CWmin on success or final drop.

:class:`Backoff` tracks the *remaining* slot count across busy periods:
the DCF station tells it when countdown intervals start and end, and it
consumes whole elapsed slots, exactly like the standard's slotted
decrement (a slot interrupted by a busy medium does not count).
"""

from __future__ import annotations

import random

from repro.core.params import MacParameters
from repro.errors import MacError


class ContentionWindow:
    """The current window size and its exponential schedule."""

    def __init__(self, mac: MacParameters):
        self._mac = mac
        self._window_slots = mac.cw_min_slots

    @property
    def window_slots(self) -> int:
        """Current window size W; draws are uniform over [0, W-1]."""
        return self._window_slots

    def draw(self, rng: random.Random) -> int:
        """A fresh backoff count in slots."""
        return rng.randrange(self._window_slots)

    def double(self) -> None:
        """Failure: W <- min(2 W, CWmax)."""
        self._window_slots = min(self._window_slots * 2, self._mac.cw_max_slots)

    def reset(self) -> None:
        """Success or final drop: W <- CWmin."""
        self._window_slots = self._mac.cw_min_slots


class Backoff:
    """Remaining-slot bookkeeping across interrupted countdowns."""

    def __init__(self, mac: MacParameters):
        self._mac = mac
        self._remaining_slots: int | None = None
        self._countdown_start_ns: int | None = None

    @property
    def pending(self) -> bool:
        """True while a countdown has slots left to consume."""
        return self._remaining_slots is not None

    @property
    def remaining_slots(self) -> int:
        """Slots still to count down (0 means ready at the next IFS)."""
        if self._remaining_slots is None:
            raise MacError("no backoff in progress")
        return self._remaining_slots

    @property
    def counting(self) -> bool:
        """True while slots are actively being consumed."""
        return self._countdown_start_ns is not None

    def begin(self, slots: int) -> None:
        """Arm a new countdown of ``slots`` slots."""
        if slots < 0:
            raise MacError(f"backoff slots must be >= 0, got {slots}")
        self._remaining_slots = slots
        self._countdown_start_ns = None

    def countdown_started(self, start_ns: int) -> None:
        """The medium has been idle for the IFS; slots now tick.

        ``start_ns`` is the instant the first slot begins (idle start +
        IFS), which may be in the past relative to 'now' when the IFS has
        already elapsed.
        """
        if self._remaining_slots is None:
            raise MacError("countdown started without a pending backoff")
        self._countdown_start_ns = start_ns

    def countdown_stopped(self, now_ns: int) -> None:
        """The medium went busy; consume the whole slots that elapsed."""
        if self._countdown_start_ns is None:
            return
        elapsed_ns = now_ns - self._countdown_start_ns
        slot_ns = round(self._mac.slot_time_us * 1000)
        consumed = max(0, elapsed_ns // slot_ns)
        self._remaining_slots = max(0, self._remaining_slots - int(consumed))
        self._countdown_start_ns = None

    def finish(self) -> None:
        """The countdown reached zero and access was granted."""
        self._remaining_slots = None
        self._countdown_start_ns = None
