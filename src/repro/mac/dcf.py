"""The DCF station state machine.

One :class:`MacStation` owns a transceiver and implements the IEEE 802.11
distributed coordination function:

* CSMA/CA: physical carrier sense (from the PHY) plus the NAV, DIFS/EIFS
  deferral and slotted binary-exponential backoff;
* the basic access scheme (DATA -> ACK) and the RTS/CTS scheme
  (RTS -> CTS -> DATA -> ACK), selected per configuration;
* retransmissions with contention-window doubling, retry limits and
  duplicate filtering at the receiver;
* post-transmission backoff, so a saturated station pays DIFS + E[CW]/2
  slots per frame exactly as Equation (1) of the paper assumes;
* the behaviours the paper's four-station experiments expose: an exposed
  receiver goes deaf while its PHY tracks a third station's frames and
  its CTS is withheld while the NAV is set (paper §3.3); the optional
  :class:`AckPolicy` / ``cts_respects_physical_cs`` knobs add energy-
  based suppression of responses for ablation studies.

The timing discipline follows the standard closely: backoff slots are
consumed only while the medium has stayed idle for a full IFS, a slot
interrupted mid-way does not count, EIFS replaces DIFS after an erroneous
reception, and a NAV set by an overheard RTS is reset if the protected
exchange never materialises (the NAV-reset rule of 802.11 §9.2.5.4).
"""

from __future__ import annotations

import enum
import random
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.airtime import AirtimeCalculator
from repro.core.params import Dot11bConfig, Rate
from repro.errors import ConfigurationError, MacError
from repro.mac.backoff import Backoff, ContentionWindow
from repro.mac.frames import (
    BROADCAST,
    AckFrame,
    CtsFrame,
    DataFrame,
    RtsFrame,
)
from repro.mac.nav import Nav
from repro.mac.ratecontrol import FixedRate, RateController
from repro.phy.plans import control_frame_plan, data_frame_plan
from repro.phy.reception import ReceptionOutcome
from repro.phy.transceiver import PhyListener, PhyState, Transceiver
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.sim.tracing import Tracer
from repro.units import us_to_ns

ReceiveCallback = Callable[[Any, int], None]
SentCallback = Callable[[Any, int, bool], None]


class AckPolicy(enum.Enum):
    """When a receiver answers a data frame with a MAC ACK.

    ``ALWAYS`` is the letter of the standard (and the default): the ACK
    goes out a SIFS after the data regardless of carrier state, aborting
    any reception in progress.  With it, the exposed receiver S2 of the
    Figure-6/7 experiments is starved by *deafness* — its PHY is locked
    on S3's frames when S1 transmits — which reproduces the paper's
    measured asymmetry.  ``DEFER_IF_BUSY`` additionally suppresses the
    ACK when the PHY senses energy at the SIFS boundary; it is kept as
    an ablation (it roughly doubles the measured asymmetry).
    """

    ALWAYS = "always"
    DEFER_IF_BUSY = "defer-if-busy"


@dataclass(frozen=True)
class MacConfig:
    """Per-station MAC configuration."""

    address: int
    data_rate: Rate
    dot11: Dot11bConfig = field(default_factory=Dot11bConfig)
    rts_enabled: bool = False
    ack_policy: AckPolicy = AckPolicy.ALWAYS
    #: The standard gates the CTS on the NAV only; half-duplex reception
    #: already prevents answering an RTS that arrived during another
    #: frame.  True adds an energy check at the SIFS boundary (ablation).
    cts_respects_physical_cs: bool = False
    nav_reset_on_missing_cts: bool = True
    max_queue_frames: int = 200
    #: MSDUs larger than this are split into fragments transmitted as a
    #: SIFS-spaced burst, each individually acknowledged, with the NAV
    #: chained fragment to fragment.  ``None`` disables fragmentation.
    fragmentation_threshold_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.address == BROADCAST:
            raise ConfigurationError("a station cannot use the broadcast address")
        if self.max_queue_frames < 1:
            raise ConfigurationError("queue must hold at least one frame")
        if (
            self.fragmentation_threshold_bytes is not None
            and self.fragmentation_threshold_bytes < 64
        ):
            raise ConfigurationError(
                "fragmentation threshold must be >= 64 bytes"
            )


@dataclass
class MacCounters:
    """Per-station MIB-style counters."""

    data_tx: int = 0
    flushed_frames: int = 0
    rts_tx: int = 0
    cts_tx: int = 0
    ack_tx: int = 0
    tx_success: int = 0
    tx_drops: int = 0
    queue_drops: int = 0
    retries: int = 0
    ack_timeouts: int = 0
    cts_timeouts: int = 0
    rx_data: int = 0
    rx_duplicates: int = 0
    rx_errors: int = 0
    fragments_tx: int = 0
    acks_suppressed: int = 0
    cts_suppressed_nav: int = 0
    cts_suppressed_cs: int = 0
    nav_resets: int = 0


class _TxWork:
    """The head-of-line MSDU and its attempt state."""

    __slots__ = (
        "msdu",
        "dst",
        "msdu_bytes",
        "seq",
        "retries",
        "use_rts",
        "fragment_sizes",
        "frag_index",
    )

    def __init__(
        self,
        msdu: Any,
        dst: int,
        msdu_bytes: int,
        seq: int,
        use_rts: bool,
        fragment_sizes: list[int] | None = None,
    ):
        self.msdu = msdu
        self.dst = dst
        self.msdu_bytes = msdu_bytes
        self.seq = seq
        self.retries = 0
        self.use_rts = use_rts
        self.fragment_sizes = (
            fragment_sizes if fragment_sizes else [msdu_bytes]
        )
        self.frag_index = 0

    @property
    def current_fragment_bytes(self) -> int:
        """Size of the fragment currently being transmitted."""
        return self.fragment_sizes[self.frag_index]

    @property
    def on_last_fragment(self) -> bool:
        """True when the current fragment completes the MSDU."""
        return self.frag_index == len(self.fragment_sizes) - 1

    def advance_fragment(self) -> None:
        """Move to the next fragment after a successful ACK."""
        self.frag_index += 1
        self.retries = 0


def split_msdu(msdu_bytes: int, threshold_bytes: int) -> list[int]:
    """Fragment sizes for an MSDU under a fragmentation threshold."""
    if msdu_bytes <= threshold_bytes:
        return [msdu_bytes]
    full, remainder = divmod(msdu_bytes, threshold_bytes)
    sizes = [threshold_bytes] * full
    if remainder:
        sizes.append(remainder)
    return sizes


class MacStation(PhyListener):
    """A DCF MAC entity bound to one transceiver."""

    def __init__(
        self,
        sim: Simulator,
        phy: Transceiver,
        config: MacConfig,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
        rate_controller: RateController | None = None,
    ):
        self._sim = sim
        self._phy = phy
        self._config = config
        self._rate_controller = (
            rate_controller
            if rate_controller is not None
            else FixedRate(config.data_rate)
        )
        self._airtime = AirtimeCalculator(config.dot11)
        self._mac = config.dot11.mac
        self._rng = rng if rng is not None else random.Random(config.address)
        self._tracer = tracer if tracer is not None else Tracer()
        # Self-counting trace channel (see Tracer.register_counters):
        # count locally, fan out only when a subscriber is attached.
        self._category = f"mac.{config.address}"
        self._trace_counts: dict[str, int] = defaultdict(int)
        self._tracer.register_counters(self._category, self._trace_counts)
        phy.set_listener(self)

        # Precomputed timing, in ns.
        self._slot_ns = us_to_ns(self._mac.slot_time_us)
        self._sifs_ns = us_to_ns(self._mac.sifs_us)
        self._difs_ns = us_to_ns(self._mac.difs_us)
        self._eifs_ns = us_to_ns(self._mac.eifs_us(config.dot11.plcp))
        plcp_ns = us_to_ns(config.dot11.plcp.duration_us)
        self._await_timeout_ns = self._sifs_ns + plcp_ns + 2 * self._slot_ns

        # Contention state.
        self._down = False
        self._queue: deque[tuple[Any, int, int]] = deque()
        self._work: _TxWork | None = None
        self._cw = ContentionWindow(self._mac)
        self._backoff = Backoff(self._mac)
        self._post_backoff_pending = False
        self._idle_since_ns: int | None = 0 if not phy.cs_busy else None
        self._needs_eifs = False
        self._access_timer = Timer(sim, self._on_access_timer, name="access")

        # Exchange state.
        self._tx_context: str | None = None
        self._awaiting: str | None = None
        self._await_grace = False
        self._await_timer = Timer(sim, self._on_await_timeout, name="await")
        self._pending_response: tuple[str, Any] | None = None
        self._response_timer = Timer(sim, self._fire_response, name="response")

        # Virtual carrier sense.
        self._nav = Nav(sim, self._on_nav_change)
        self._nav_reset_timer = Timer(sim, self._on_nav_reset, name="nav-reset")

        # Receiver state.
        self._dup_cache: dict[int, tuple[int, int]] = {}
        self._frag_progress: dict[int, tuple[int, int]] = {}
        self._seq_counter = 0

        self.counters = MacCounters()
        self._receive_callback: ReceiveCallback = lambda msdu, src: None
        self._sent_callback: SentCallback = lambda msdu, dst, ok: None

    # ------------------------------------------------------------ wiring

    @property
    def address(self) -> int:
        """This station's MAC address."""
        return self._config.address

    @property
    def config(self) -> MacConfig:
        """The configuration in force."""
        return self._config

    @property
    def sim(self) -> Simulator:
        """The simulator this station schedules on."""
        return self._sim

    @property
    def tracer(self) -> Tracer:
        """The tracer this station publishes to (shared by the stack)."""
        return self._tracer

    @property
    def queue_length(self) -> int:
        """Frames waiting behind the head-of-line frame."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while an MSDU is queued or being transmitted."""
        return self._work is not None or bool(self._queue)

    @property
    def down(self) -> bool:
        """True between :meth:`shutdown` and :meth:`restart`."""
        return self._down

    def set_receive_callback(self, callback: ReceiveCallback) -> None:
        """``callback(msdu, src_address)`` on every delivered MSDU."""
        self._receive_callback = callback

    def set_sent_callback(self, callback: SentCallback) -> None:
        """``callback(msdu, dst, success)`` when an MSDU leaves the MAC."""
        self._sent_callback = callback

    # ------------------------------------------------------------- queue

    def enqueue(self, msdu: Any, dst: int, msdu_bytes: int) -> bool:
        """Hand an MSDU to the MAC.  Returns False on queue overflow."""
        if msdu_bytes <= 0:
            raise ConfigurationError(f"MSDU must be > 0 bytes, got {msdu_bytes}")
        if self._down:
            self.counters.queue_drops += 1
            if self._tracer.audit:
                self._audit_sdu("sdu_drop", msdu, dst, reason="fault-crash")
            return False
        if len(self._queue) >= self._config.max_queue_frames:
            self.counters.queue_drops += 1
            if self._tracer.audit:
                self._audit_sdu("sdu_drop", msdu, dst, reason="queue-overflow")
            return False
        self._queue.append((msdu, dst, msdu_bytes))
        if self._tracer.audit:
            self._audit_sdu("sdu_enqueue", msdu, dst)
        self._ensure_access_pending()
        return True

    # ------------------------------------------- lifecycle (fault injection)

    def _timers(self) -> tuple[Timer, ...]:
        return (
            self._access_timer,
            self._await_timer,
            self._response_timer,
            self._nav_reset_timer,
        )

    def shutdown(self) -> None:
        """Crash the MAC: flush the queue, cancel every pending timer.

        Models a power failure, so nothing is signalled to upper layers —
        queued MSDUs simply vanish (counted in ``flushed_frames``).  The
        station's transceiver must be powered off by the caller first;
        :meth:`repro.net.node.Node.crash` does both in order.
        """
        if self._down:
            return
        self._down = True
        self.counters.flushed_frames += len(self._queue)
        if self._work is not None:
            self.counters.flushed_frames += 1
        if self._tracer.audit:
            for msdu, dst, _bytes in self._queue:
                self._audit_sdu("sdu_drop", msdu, dst, reason="fault-crash")
            if self._work is not None:
                self._audit_sdu(
                    "sdu_drop", self._work.msdu, self._work.dst,
                    reason="fault-crash",
                )
        self._queue.clear()
        self._work = None
        for timer in self._timers():
            timer.cancel()
        self._nav.reset()
        self._tx_context = None
        self._awaiting = None
        self._await_grace = False
        self._pending_response = None
        self._post_backoff_pending = False
        self._backoff = Backoff(self._mac)
        self._cw.reset()
        self._needs_eifs = False
        self._idle_since_ns = None
        self._trace("shutdown")

    def restart(self) -> None:
        """Reboot after :meth:`shutdown` with factory-fresh receiver state."""
        if not self._down:
            return
        self._down = False
        self._dup_cache.clear()
        self._frag_progress.clear()
        self._seq_counter = 0
        self._idle_since_ns = self._sim.now_ns if not self._medium_busy() else None
        self._trace("restart")

    def set_clock_jitter(self, jitter: Callable[[int], int] | None) -> None:
        """Perturb every MAC timer's delay (clock-skew fault injection)."""
        for timer in self._timers():
            timer.set_jitter(jitter)

    # --------------------------------------------------- medium tracking

    def _medium_busy(self) -> bool:
        return self._phy.cs_busy or self._nav.busy

    def _on_medium_state_change(self) -> None:
        if self._down:
            return
        busy = self._medium_busy()
        now = self._sim.now_ns
        if busy and self._idle_since_ns is not None:
            self._idle_since_ns = None
            self._backoff.countdown_stopped(now)
            self._access_timer.cancel()
        elif not busy and self._idle_since_ns is None:
            self._idle_since_ns = now
            self._maybe_start_countdown()

    def on_cs_busy(self) -> None:
        self._on_medium_state_change()

    def on_cs_idle(self) -> None:
        self._on_medium_state_change()

    def _on_nav_change(self) -> None:
        self._on_medium_state_change()

    # ------------------------------------------------- channel access

    def _ensure_access_pending(self) -> None:
        """Make sure the contention machinery will eventually fire."""
        if self._down:
            return
        if self._tx_context or self._pending_response or self._awaiting:
            return
        if self._work is None and not self._backoff.pending:
            if not self._queue:
                return
            self._load_next_work()
        if self._work is None and not (
            self._backoff.pending or self._post_backoff_pending
        ):
            return
        if self._idle_since_ns is not None:
            self._maybe_start_countdown()
        elif self._work is not None and not self._backoff.pending:
            # Arrival on a busy medium: draw the backoff now.
            self._backoff.begin(self._cw.draw(self._rng))

    def _load_next_work(self) -> None:
        msdu, dst, msdu_bytes = self._queue.popleft()
        use_rts = self._config.rts_enabled and dst != BROADCAST
        fragment_sizes = None
        threshold = self._config.fragmentation_threshold_bytes
        if threshold is not None and dst != BROADCAST:
            fragment_sizes = split_msdu(msdu_bytes, threshold)
        self._work = _TxWork(
            msdu, dst, msdu_bytes, self._seq_counter, use_rts, fragment_sizes
        )
        self._seq_counter = (self._seq_counter + 1) % 4096

    def _current_ifs_ns(self) -> int:
        return self._eifs_ns if self._needs_eifs else self._difs_ns

    def _maybe_start_countdown(self) -> None:
        if self._access_timer.running or self._idle_since_ns is None:
            return
        if self._tx_context or self._pending_response or self._awaiting:
            return
        now = self._sim.now_ns
        ifs_end_ns = self._idle_since_ns + self._current_ifs_ns()
        if self._backoff.pending:
            fire_at = ifs_end_ns + self._backoff.remaining_slots * self._slot_ns
            self._backoff.countdown_started(ifs_end_ns)
            self._access_timer.start(max(0, fire_at - now))
        elif self._work is not None or self._post_backoff_pending:
            # Immediate access: the medium only needs to stay idle for
            # one full IFS.
            self._access_timer.start(max(0, ifs_end_ns - now))

    def _on_access_timer(self) -> None:
        if self._backoff.pending:
            self._backoff.finish()
        self._grant_access()

    def _grant_access(self) -> None:
        if self._tx_context or self._pending_response or self._awaiting:
            raise MacError(f"mac {self.address}: access granted mid-exchange")
        self._post_backoff_pending = False
        if self._work is None:
            if self._queue:
                self._load_next_work()
            else:
                return
        if self._work.use_rts:
            self._transmit_rts()
        else:
            self._transmit_data()

    # ------------------------------------------------------ transmitting

    def _transmit_data(self) -> None:
        work = self._work
        if work.dst == BROADCAST:
            # Broadcast frames must use a basic-set rate (paper §2).
            rate = self._config.dot11.control_rate_for(self._config.data_rate)
        else:
            rate = self._rate_controller.data_rate(work.dst)
        fragment_bytes = work.current_fragment_bytes
        more = not work.on_last_fragment
        if work.dst == BROADCAST:
            duration_us = 0.0
        elif more:
            # NAV chaining: reserve up to the end of the *next*
            # fragment's ACK (SIFS + ACK + SIFS + frag + SIFS + ACK).
            next_bytes = work.fragment_sizes[work.frag_index + 1]
            duration_us = (
                3 * self._mac.sifs_us
                + 2 * self._airtime.ack_us()
                + self._airtime.data_frame_us(next_bytes, rate)
            )
        else:
            duration_us = self._mac.sifs_us + self._airtime.ack_us()
        frame = DataFrame(
            src=self.address,
            dst=work.dst,
            duration_us=duration_us,
            seq=work.seq,
            # The reassembled payload object rides on the last fragment.
            msdu=work.msdu if not more else None,
            msdu_bytes=fragment_bytes,
            retry=work.retries > 0,
            frag=work.frag_index,
            more_fragments=more,
        )
        plan = data_frame_plan(fragment_bytes, rate, self._airtime)
        self._tx_context = "data"
        self.counters.data_tx += 1
        self._trace(
            "tx_data", dst=work.dst, seq=work.seq, frag=work.frag_index,
            retry=work.retries, rate=rate.mbps,
        )
        self._phy.transmit(plan, frame)

    def _transmit_rts(self) -> None:
        work = self._work
        rate = self._rate_controller.data_rate(work.dst)
        duration_us = (
            3 * self._mac.sifs_us
            + self._airtime.cts_us()
            + self._airtime.data_frame_us(work.current_fragment_bytes, rate)
            + self._airtime.ack_us()
        )
        frame = RtsFrame(
            src=self.address,
            dst=work.dst,
            duration_us=duration_us,
            msdu_bytes=work.msdu_bytes,
        )
        plan = control_frame_plan("rts", self._mac.rts_bits, self._airtime)
        self._tx_context = "rts"
        self.counters.rts_tx += 1
        self._trace("tx_rts", dst=work.dst)
        self._phy.transmit(plan, frame)

    def on_tx_end(self) -> None:
        context = self._tx_context
        self._tx_context = None
        if context == "data":
            if self._work is not None and self._work.dst == BROADCAST:
                self._exchange_succeeded()
            else:
                self._awaiting = "ack"
                self._await_timer.start(self._await_timeout_ns)
        elif context == "rts":
            self._awaiting = "cts"
            self._await_timer.start(self._await_timeout_ns)
        else:
            # ACK or CTS response finished; resume our own contention.
            self._ensure_access_pending()

    # ------------------------------------------------- timeouts, retries

    def _on_await_timeout(self) -> None:
        if self._phy.state is PhyState.RX:
            # A frame is inbound; let its end decide (grace period).
            self._await_grace = True
            return
        self._await_failed()

    def _await_failed(self) -> None:
        kind = self._awaiting
        self._awaiting = None
        self._await_grace = False
        self._await_timer.cancel()
        if kind == "ack":
            self.counters.ack_timeouts += 1
        else:
            self.counters.cts_timeouts += 1
        work = self._work
        work.retries += 1
        self.counters.retries += 1
        self._rate_controller.on_failure(work.dst)
        limit = (
            self._mac.long_retry_limit
            if work.use_rts
            else self._mac.short_retry_limit
        )
        self._trace("timeout", kind=kind, retries=work.retries)
        if work.retries > limit:
            self.counters.tx_drops += 1
            self._cw.reset()
            if self._tracer.audit:
                self._audit_sdu("sdu_drop", work.msdu, work.dst, reason="retry-limit")
            self._sent_callback(work.msdu, work.dst, False)
            self._complete_exchange()
        else:
            self._cw.double()
            self._backoff.begin(self._cw.draw(self._rng))
            # The idle time spent waiting for the missing response does
            # not count towards the next IFS.
            if self._idle_since_ns is not None:
                self._idle_since_ns = self._sim.now_ns
            self._maybe_start_countdown()

    def _exchange_succeeded(self) -> None:
        work = self._work
        if work.dst != BROADCAST:
            self._rate_controller.on_success(work.dst)
        self._awaiting = None
        self._await_grace = False
        self._await_timer.cancel()
        self._cw.reset()
        if not work.on_last_fragment:
            # Mid-burst: the next fragment follows a SIFS after the ACK
            # (it owns the medium through the NAV chain).
            work.advance_fragment()
            self.counters.fragments_tx += 1
            self._schedule_response("data", None)
            return
        self.counters.tx_success += 1
        if self._tracer.audit:
            self._audit_sdu("sdu_tx_ok", work.msdu, work.dst)
        self._sent_callback(work.msdu, work.dst, True)
        self._complete_exchange()

    def _complete_exchange(self) -> None:
        self._work = None
        # Post-transmission backoff: mandatory even with an empty queue.
        self._backoff.begin(self._cw.draw(self._rng))
        self._post_backoff_pending = True
        if self._idle_since_ns is not None:
            self._idle_since_ns = self._sim.now_ns
        self._maybe_start_countdown()

    # --------------------------------------------------------- reception

    def on_rx_start(self) -> None:
        # PHY-RXSTART cancels a provisional RTS NAV reset (§9.2.5.4).
        self._nav_reset_timer.cancel()

    def on_rx_end(self, mac_frame: Any | None, outcome: ReceptionOutcome) -> None:
        if mac_frame is None:
            if outcome is not ReceptionOutcome.ABORTED:
                self._needs_eifs = True
                self.counters.rx_errors += 1
            if self._await_grace:
                self._await_grace = False
                self._await_failed()
            return
        self._needs_eifs = False
        if isinstance(mac_frame, DataFrame):
            self._handle_data(mac_frame)
        elif isinstance(mac_frame, RtsFrame):
            self._handle_rts(mac_frame)
        elif isinstance(mac_frame, CtsFrame):
            self._handle_cts(mac_frame)
        elif isinstance(mac_frame, AckFrame):
            self._handle_ack(mac_frame)
        if self._await_grace:
            # The inbound frame was not the response we hoped for.
            self._await_grace = False
            if self._awaiting is not None:
                self._await_failed()

    def _handle_data(self, frame: DataFrame) -> None:
        if frame.dst == BROADCAST:
            self.counters.rx_data += 1
            self._receive_callback(frame.msdu, frame.src)
            return
        if frame.dst != self.address:
            self._update_nav(frame.duration_us, from_rts=False)
            return
        if self._dup_cache.get(frame.src) == (frame.seq, frame.frag):
            self.counters.rx_duplicates += 1
        else:
            self._dup_cache[frame.src] = (frame.seq, frame.frag)
            self._accept_fragment(frame)
        self._schedule_response("ack", frame)

    def _accept_fragment(self, frame: DataFrame) -> None:
        """Reassembly: deliver the MSDU once its last fragment lands.

        Fragments arrive in order on a given link (each is individually
        acknowledged before the next is sent), so progress tracking per
        transmitter suffices.
        """
        if frame.more_fragments:
            previous = self._frag_progress.get(frame.src)
            in_sequence = frame.frag == 0 or previous == (
                frame.seq,
                frame.frag - 1,
            )
            if in_sequence:
                self._frag_progress[frame.src] = (frame.seq, frame.frag)
            else:
                self._frag_progress.pop(frame.src, None)
            return
        complete = frame.frag == 0 or self._frag_progress.get(frame.src) == (
            frame.seq,
            frame.frag - 1,
        )
        self._frag_progress.pop(frame.src, None)
        if complete:
            self.counters.rx_data += 1
            self._receive_callback(frame.msdu, frame.src)

    def _handle_rts(self, frame: RtsFrame) -> None:
        if frame.dst != self.address:
            if self._update_nav(frame.duration_us, from_rts=True):
                if self._config.nav_reset_on_missing_cts:
                    grace_ns = (
                        2 * self._sifs_ns
                        + us_to_ns(self._airtime.cts_us())
                        + 2 * self._slot_ns
                    )
                    self._nav_reset_timer.start(grace_ns)
            return
        if self._nav.busy:
            self.counters.cts_suppressed_nav += 1
            self._trace("cts_suppressed", reason="nav")
            return
        self._schedule_response("cts", frame)

    def _handle_cts(self, frame: CtsFrame) -> None:
        if frame.dst != self.address:
            self._update_nav(frame.duration_us, from_rts=False)
            return
        if self._awaiting == "cts":
            self._awaiting = None
            self._await_grace = False
            self._await_timer.cancel()
            self._schedule_response("data", frame)

    def _handle_ack(self, frame: AckFrame) -> None:
        if frame.dst != self.address:
            self._update_nav(frame.duration_us, from_rts=False)
            return
        if self._awaiting == "ack":
            self._exchange_succeeded()

    def _update_nav(self, duration_us: float, from_rts: bool) -> bool:
        if duration_us <= 0:
            return False
        moved = self._nav.update(self._sim.now_ns + us_to_ns(duration_us))
        if moved:
            self._trace("nav_set", until_us=round(self._nav.until_ns / 1000))
            if self._tracer.audit:
                self._tracer.emit_audit(
                    self._sim.now_ns,
                    self._category,
                    "nav",
                    until_ns=self._nav.until_ns,
                )
            self._on_medium_state_change()
        return moved

    def _on_nav_reset(self) -> None:
        self.counters.nav_resets += 1
        self._trace("nav_reset")
        self._nav.reset()

    # --------------------------------------------------------- responses

    def _schedule_response(self, kind: str, frame: Any) -> None:
        if self._pending_response is not None:
            # A second response obligation before the first fired; keep
            # the earlier one (it is at most SIFS away).
            return
        self._pending_response = (kind, frame)
        # Our own contention pauses for the response exchange.  The
        # frame that obliged us to respond may have been too weak to
        # trip the energy-detect threshold, in which case the access
        # timer is still armed and must not fire mid-exchange.
        self._access_timer.cancel()
        self._backoff.countdown_stopped(self._sim.now_ns)
        self._response_timer.start(self._sifs_ns)

    def _fire_response(self) -> None:
        kind, frame = self._pending_response
        self._pending_response = None
        if kind == "ack":
            self._respond_ack(frame)
        elif kind == "cts":
            self._respond_cts(frame)
        elif kind == "data":
            self._respond_data()
        if self._tx_context is None:
            # The response was suppressed; our contention may resume.
            self._ensure_access_pending()

    def _respond_ack(self, data_frame: DataFrame) -> None:
        if (
            self._config.ack_policy is AckPolicy.DEFER_IF_BUSY
            and self._phy.cs_busy
        ):
            self.counters.acks_suppressed += 1
            self._trace("ack_suppressed", dst=data_frame.src)
            return
        ack = AckFrame(src=self.address, dst=data_frame.src, duration_us=0.0)
        plan = control_frame_plan("ack", self._mac.ack_bits, self._airtime)
        self._tx_context = "ack"
        self.counters.ack_tx += 1
        self._trace("tx_ack", dst=data_frame.src)
        self._phy.transmit(plan, ack)

    def _respond_cts(self, rts: RtsFrame) -> None:
        if self._nav.busy:
            self.counters.cts_suppressed_nav += 1
            self._trace("cts_suppressed", reason="nav-late")
            return
        if self._config.cts_respects_physical_cs and self._phy.cs_busy:
            self.counters.cts_suppressed_cs += 1
            self._trace("cts_suppressed", reason="cs")
            return
        duration_us = max(
            0.0, rts.duration_us - self._mac.sifs_us - self._airtime.cts_us()
        )
        cts = CtsFrame(src=self.address, dst=rts.src, duration_us=duration_us)
        plan = control_frame_plan("cts", self._mac.cts_bits, self._airtime)
        self._tx_context = "cts"
        self.counters.cts_tx += 1
        self._trace("tx_cts", dst=rts.src)
        self._phy.transmit(plan, cts)

    def _respond_data(self) -> None:
        if self._work is None:
            raise MacError(f"mac {self.address}: CTS received with no data pending")
        self._transmit_data()

    # --------------------------------------------------------- utilities

    def _trace(self, event: str, **fields: Any) -> None:
        self._trace_counts[event] += 1
        if self._tracer.active:
            self._tracer.fanout(self._sim.now_ns, self._category, event, fields)

    def _audit_sdu(self, event: str, msdu: Any, dst: int, **fields: Any) -> None:
        """Audit-channel SDU lifecycle event (callers gate on tracer.audit)."""
        sdu = getattr(msdu, "sdu_id", -1)
        if sdu < 0:
            return
        self._tracer.emit_audit(
            self._sim.now_ns,
            self._category,
            event,
            sdu=sdu,
            origin=msdu.src,
            dst=dst,
            **fields,
        )
