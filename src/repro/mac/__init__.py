"""IEEE 802.11 DCF medium access control.

* :mod:`repro.mac.frames` — MAC frame objects (DATA / ACK / RTS / CTS)
  with their NAV duration fields.
* :mod:`repro.mac.nav` — the network allocation vector (virtual carrier
  sense), including the RTS NAV-reset rule.
* :mod:`repro.mac.backoff` — contention-window management and the
  slotted backoff countdown bookkeeping.
* :mod:`repro.mac.dcf` — the DCF station state machine: CSMA/CA with
  binary exponential backoff, DIFS/SIFS/EIFS spacing, optional RTS/CTS,
  retries and duplicate filtering.
"""

from repro.mac.frames import (
    BROADCAST,
    AckFrame,
    CtsFrame,
    DataFrame,
    MacFrame,
    RtsFrame,
)
from repro.mac.nav import Nav
from repro.mac.backoff import Backoff, ContentionWindow
from repro.mac.dcf import AckPolicy, MacConfig, MacCounters, MacStation

__all__ = [
    "AckFrame",
    "AckPolicy",
    "BROADCAST",
    "Backoff",
    "ContentionWindow",
    "CtsFrame",
    "DataFrame",
    "MacConfig",
    "MacCounters",
    "MacFrame",
    "MacStation",
    "Nav",
    "RtsFrame",
]
