"""MAC frame objects.

Frames carry the NAV ``duration_us`` field exactly as the standard
defines it: the time the medium will remain reserved *after* this frame
ends.  Third-party stations that decode any frame feed that field into
their NAV (virtual carrier sense).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Broadcast destination address.
BROADCAST = -1


@dataclass(frozen=True)
class MacFrame:
    """Common fields of every MAC frame."""

    src: int
    dst: int
    duration_us: float = 0.0

    @property
    def is_broadcast(self) -> bool:
        """True when addressed to every station."""
        return self.dst == BROADCAST


@dataclass(frozen=True)
class DataFrame(MacFrame):
    """A MAC data frame carrying one MSDU (or one fragment of it).

    For fragmented MSDUs, ``frag`` numbers the fragment and
    ``more_fragments`` marks all but the last; the reassembled ``msdu``
    object rides on the final fragment only.
    """

    seq: int = 0
    msdu: Any = None
    msdu_bytes: int = 0
    retry: bool = False
    frag: int = 0
    more_fragments: bool = False

    def key(self) -> tuple[int, int, int]:
        """Duplicate-detection key (transmitter, sequence, fragment)."""
        return (self.src, self.seq, self.frag)


@dataclass(frozen=True)
class AckFrame(MacFrame):
    """Acknowledgement; ``dst`` is the station being acknowledged."""


@dataclass(frozen=True)
class RtsFrame(MacFrame):
    """Request-to-send; duration covers CTS + DATA + ACK + 3 SIFS."""

    #: MSDU size of the data frame this RTS protects (lets the responder
    #: and the model compute the remaining reservation).
    msdu_bytes: int = 0


@dataclass(frozen=True)
class CtsFrame(MacFrame):
    """Clear-to-send; duration covers DATA + ACK + 2 SIFS."""
