"""The network allocation vector (virtual carrier sense).

The NAV holds the latest time until which the medium is known to be
reserved by other stations' frames.  It only ever moves forward when
updated by a frame (the standard forbids shortening it), except for the
explicit RTS NAV-reset rule, which the DCF station drives.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.timers import Timer


class Nav:
    """Reservation clock driven by overheard duration fields."""

    def __init__(self, sim: Simulator, on_expire: Callable[[], None]):
        self._sim = sim
        self._until_ns = 0
        self._timer = Timer(sim, self._expired, name="nav")
        self._on_expire = on_expire

    @property
    def until_ns(self) -> int:
        """Absolute time the current reservation ends."""
        return self._until_ns

    @property
    def busy(self) -> bool:
        """True while the medium is virtually reserved."""
        return self._until_ns > self._sim.now_ns

    def update(self, until_ns: int) -> bool:
        """Extend the NAV to ``until_ns`` if that is later.

        Returns True when the NAV actually moved (the caller may want to
        remember which frame set it, for the RTS reset rule).
        """
        if until_ns <= self._until_ns or until_ns <= self._sim.now_ns:
            return False
        self._until_ns = until_ns
        # Coalesced wakeup: if a timer is already armed (necessarily for
        # an earlier instant — the NAV only moves forward), leave it in
        # place and let the stale fire re-arm to the current target in
        # :meth:`_expired`.  Saturated neighbourhoods extend the NAV on
        # nearly every overheard frame; this turns that cancel+reschedule
        # churn into a single pending event per busy period.
        if not self._timer.running:
            self._timer.start(until_ns - self._sim.now_ns)
        return True

    def reset(self) -> None:
        """Clear the reservation immediately (RTS NAV-reset rule)."""
        was_busy = self.busy
        self._until_ns = self._sim.now_ns
        self._timer.cancel()
        if was_busy:
            self._on_expire()

    def _expired(self) -> None:
        until_ns = self._until_ns
        now_ns = self._sim.now_ns
        if until_ns > now_ns:
            # The reservation was extended while this wakeup was armed;
            # re-arm for the real expiry instead of firing early.
            self._timer.start(until_ns - now_ns)
            return
        self._on_expire()
