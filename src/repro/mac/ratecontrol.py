"""Transmission rate control.

Paper §2: "802.11b cards may implement a dynamic rate switching with the
objective of improving performance."  This module provides that
mechanism: a per-destination :class:`RateController` consulted for every
data transmission attempt and fed the attempt's outcome.

:class:`FixedRate` pins the NIC rate (how the paper ran its
experiments); :class:`ArfRateController` is Auto Rate Fallback as
introduced for WaveLAN-II (Kamerman & Monteban, 1997): step up after a
run of consecutive successes, step down after consecutive failures, and
fall straight back if the first attempt after an upgrade fails (the
probation rule).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.params import ALL_RATES, Rate
from repro.errors import ConfigurationError


class RateController(abc.ABC):
    """Chooses the data rate for each transmission attempt."""

    @abc.abstractmethod
    def data_rate(self, dst: int) -> Rate:
        """Rate to use for the next attempt towards ``dst``."""

    def on_success(self, dst: int) -> None:
        """The exchange towards ``dst`` completed (ACK received)."""

    def on_failure(self, dst: int) -> None:
        """An attempt towards ``dst`` failed (CTS/ACK timeout)."""


class FixedRate(RateController):
    """The preset-NIC-rate mode the paper measures."""

    def __init__(self, rate: Rate):
        self._rate = rate

    def data_rate(self, dst: int) -> Rate:
        return self._rate


@dataclass(frozen=True)
class ArfConfig:
    """ARF tunables (defaults are the classic WaveLAN-II values)."""

    success_threshold: int = 10
    failure_threshold: int = 2
    initial_rate: Rate = Rate.MBPS_2

    def __post_init__(self) -> None:
        if self.success_threshold < 1 or self.failure_threshold < 1:
            raise ConfigurationError("ARF thresholds must be >= 1")


class _ArfState:
    """Per-destination ARF bookkeeping."""

    __slots__ = ("rate_index", "successes", "failures", "probation")

    def __init__(self, rate_index: int):
        self.rate_index = rate_index
        self.successes = 0
        self.failures = 0
        self.probation = False


class ArfRateController(RateController):
    """Auto Rate Fallback over the 802.11b rate ladder."""

    def __init__(self, config: ArfConfig | None = None):
        self._config = config if config is not None else ArfConfig()
        self._ladder = list(ALL_RATES)
        self._states: dict[int, _ArfState] = {}
        self.upgrades = 0
        self.downgrades = 0

    def _state(self, dst: int) -> _ArfState:
        if dst not in self._states:
            self._states[dst] = _ArfState(
                self._ladder.index(self._config.initial_rate)
            )
        return self._states[dst]

    def data_rate(self, dst: int) -> Rate:
        return self._ladder[self._state(dst).rate_index]

    def on_success(self, dst: int) -> None:
        state = self._state(dst)
        state.failures = 0
        state.probation = False
        state.successes += 1
        if (
            state.successes >= self._config.success_threshold
            and state.rate_index < len(self._ladder) - 1
        ):
            state.rate_index += 1
            state.successes = 0
            state.probation = True  # first failure up here drops us back
            self.upgrades += 1

    def on_failure(self, dst: int) -> None:
        state = self._state(dst)
        state.successes = 0
        state.failures += 1
        must_drop = state.probation or (
            state.failures >= self._config.failure_threshold
        )
        if must_drop and state.rate_index > 0:
            state.rate_index -= 1
            state.failures = 0
            state.probation = False
            self.downgrades += 1
        elif must_drop:
            state.failures = 0
            state.probation = False
