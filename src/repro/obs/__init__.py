"""Flight-recorder observability: packet ledger + online invariant auditors.

The flight recorder follows every application-layer SDU from the moment
the IP layer opens it until it reaches exactly one terminal state —
delivered, or dropped with a typed reason — and runs online auditors
that fail fast (with sim-time context) the moment a cross-layer
invariant breaks.  Everything here rides on the :class:`Tracer` audit
channel, which is off by default: an uninstrumented run pays one
attribute read per hook point and emits nothing.

Entry points:

* :class:`FlightRecorder` — attach to a simulator + tracer pair.
* :func:`audit_experiment` — run a registry experiment with auditing on.
* :class:`AuditCollector` — session context that sweeps up recorders.
"""

from repro.obs.audit import AuditOutcome, audit_experiment
from repro.obs.auditors import (
    AirtimeAuditor,
    Auditor,
    NavAuditor,
    TcpMonotonicAuditor,
)
from repro.obs.export import LedgerWriter, TraceDigest, TraceStreamWriter
from repro.obs.ledger import DROP_REASONS, PacketLedger, SduEntry
from repro.obs.recorder import AuditReport, FlightRecorder
from repro.obs.session import AuditCollector, active_collector

__all__ = [
    "AirtimeAuditor",
    "AuditCollector",
    "AuditOutcome",
    "AuditReport",
    "Auditor",
    "DROP_REASONS",
    "FlightRecorder",
    "LedgerWriter",
    "NavAuditor",
    "PacketLedger",
    "SduEntry",
    "TcpMonotonicAuditor",
    "TraceDigest",
    "TraceStreamWriter",
    "active_collector",
    "audit_experiment",
]
