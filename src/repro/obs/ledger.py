"""The packet-conservation ledger.

Every tracked SDU (an IP datagram with a non-negative ``sdu_id``) is
opened by its originating node's IP layer and must reach *exactly one*
terminal state:

========================  ====================================================
``delivered``             the destination IP layer handed it to a transport
``retry-limit``           the MAC gave up after the retry limit
``rx-collision``          a retry-limit drop with failed receptions observed
                          at the intended receiver (collision/interference
                          evidence, as opposed to a link simply out of range)
``queue-overflow``        tail-dropped at a full MAC queue
``no-route``              a strict routing table had no path to the
                          destination (at the origin or a forwarder)
``ttl-expired``           hop budget exhausted while forwarding (routing
                          loop protection)
``fault-crash``           flushed by a node crash (or offered to a down MAC)
``tcp-abort``             in flight when its TCP connection was torn down
``sim-end-in-flight``     still in flight when the simulation shut down
========================  ====================================================

The ledger *balances* when every opened SDU is closed exactly once and
no terminal event referenced an SDU that was never opened.  Duplicate
terminal signals that have a physical explanation (a delivered frame
whose ACK was lost, so the sender also declares a retry-limit drop) are
tallied as anomalies but do not break the balance; impossible ones
(double drop, double delivery, events for unknown SDUs) do.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.tracing import TraceRecord

#: Typed drop reasons, in the order the audit table prints them.
DROP_REASONS: tuple[str, ...] = (
    "retry-limit",
    "rx-collision",
    "queue-overflow",
    "no-route",
    "ttl-expired",
    "fault-crash",
    "tcp-abort",
    "sim-end-in-flight",
)

#: Entry states.
OPEN = "open"
DELIVERED = "delivered"
DROPPED = "dropped"


@dataclass
class SduEntry:
    """One tracked SDU's lifecycle."""

    origin: int
    sdu_id: int
    dst: int
    protocol: str
    size_bytes: int
    opened_ns: int
    src_port: int | None = None
    state: str = OPEN
    reason: str | None = None
    closed_ns: int | None = None
    #: The MAC-layer next hop of the current (or last) hop.
    last_mac_dst: int | None = None
    #: Failed receptions observed *at the intended receiver* since the
    #: last enqueue — the evidence that upgrades a retry-limit drop to
    #: ``rx-collision``.
    rx_fails_at_dst: int = 0
    hops: int = 0

    @property
    def key(self) -> tuple[int, int]:
        """Ledger key: SDU ids are unique per originating node."""
        return (self.origin, self.sdu_id)

    def to_dict(self) -> dict:
        """JSON-friendly dump (one ledger line in the JSONL export)."""
        return {
            "origin": self.origin,
            "sdu": self.sdu_id,
            "dst": self.dst,
            "protocol": self.protocol,
            "size_bytes": self.size_bytes,
            "opened_ns": self.opened_ns,
            "closed_ns": self.closed_ns,
            "state": self.state,
            "reason": self.reason,
            "hops": self.hops,
        }


class PacketLedger:
    """Subscribes to the audit event stream and balances the books.

    First terminal state wins: a late duplicate signal never
    reclassifies a closed entry, it increments an anomaly counter.
    """

    def __init__(self) -> None:
        self.entries: dict[tuple[int, int], SduEntry] = {}
        self.opened = 0
        self.delivered = 0
        self.drops: dict[str, int] = {reason: 0 for reason in DROP_REASONS}
        #: Physically explainable duplicate signals (ACK-loss retries...).
        self.anomalies: dict[str, int] = {}
        #: Terminal events naming SDUs that were never opened — an
        #: instrumentation gap; any of these fails the balance.
        self.unknown_events = 0
        #: (local_addr, src_port, time_ns) of every TCP abort seen.
        self.tcp_aborts: list[tuple[int, int | None, int]] = []
        self.finalized = False
        self._dispatch = {
            "sdu_open": self._on_open,
            "sdu_deliver": self._on_deliver,
            "sdu_forward": self._on_forward,
            "sdu_enqueue": self._on_enqueue,
            "sdu_drop": self._on_drop,
            "sdu_tx_ok": self._on_tx_ok,
            "sdu_rx_fail": self._on_rx_fail,
            "abort": self._on_tcp_abort,
        }

    # ------------------------------------------------------- subscription

    def on_record(self, record: TraceRecord) -> None:
        """Tracer subscriber: dispatch on the event name."""
        handler = self._dispatch.get(record.event)
        if handler is not None:
            handler(record)

    def _anomaly(self, kind: str) -> None:
        self.anomalies[kind] = self.anomalies.get(kind, 0) + 1

    def _lookup(self, record: TraceRecord) -> SduEntry | None:
        key = (record.fields["origin"], record.fields["sdu"])
        entry = self.entries.get(key)
        if entry is None:
            self.unknown_events += 1
        return entry

    # ------------------------------------------------------------ events

    def _on_open(self, record: TraceRecord) -> None:
        fields = record.fields
        key = (fields["origin"], fields["sdu"])
        if key in self.entries:
            self._anomaly("duplicate-open")
            return
        self.entries[key] = SduEntry(
            origin=fields["origin"],
            sdu_id=fields["sdu"],
            dst=fields["dst"],
            protocol=fields["protocol"],
            size_bytes=fields["size_bytes"],
            opened_ns=record.time_ns,
            src_port=fields.get("src_port"),
        )
        self.opened += 1

    def _on_deliver(self, record: TraceRecord) -> None:
        entry = self._lookup(record)
        if entry is None:
            return
        if entry.state is not OPEN:
            if entry.state is DROPPED and entry.reason == "fault-crash":
                # Physically possible: the frame was already in the air
                # when its sender crashed and flushed the MAC, so the
                # receiver completes a reception the ledger has already
                # written off.  The drop stands (first terminal wins).
                self._anomaly("deliver-after-crash")
            else:
                # Impossible without a MAC dedup failure: count and fail.
                self._anomaly("terminal-after-close:deliver")
            return
        entry.state = DELIVERED
        entry.closed_ns = record.time_ns
        self.delivered += 1

    def _on_forward(self, record: TraceRecord) -> None:
        entry = self._lookup(record)
        if entry is not None:
            entry.hops += 1

    def _on_enqueue(self, record: TraceRecord) -> None:
        entry = self._lookup(record)
        if entry is None:
            return
        entry.last_mac_dst = record.fields["dst"]
        entry.rx_fails_at_dst = 0

    def _on_drop(self, record: TraceRecord) -> None:
        entry = self._lookup(record)
        if entry is None:
            return
        reason = record.fields["reason"]
        if reason == "retry-limit" and entry.rx_fails_at_dst > 0:
            reason = "rx-collision"
        if entry.state is DROPPED:
            # The MAC can only drop an SDU once; twice is a bug.
            self._anomaly("double-drop")
            return
        if entry.state is DELIVERED:
            # Physically possible: the data frame arrived but its ACK
            # was lost, so the sender exhausted retries on a frame the
            # receiver already delivered.  Delivery stands.
            self._anomaly("drop-after-delivery")
            return
        self._close_dropped(entry, reason, record.time_ns)

    def _on_tx_ok(self, record: TraceRecord) -> None:
        entry = self._lookup(record)
        if entry is not None:
            entry.rx_fails_at_dst = 0

    def _on_rx_fail(self, record: TraceRecord) -> None:
        # Evidence, not a terminal: a stale failure (frame still in the
        # air after its entry closed) is silently ignored, and an
        # unknown SDU here does not break the balance.
        key = (record.fields["origin"], record.fields["sdu"])
        entry = self.entries.get(key)
        if entry is None or entry.state is not OPEN:
            return
        receiver = _receiver_address(record.category)
        if receiver is not None and receiver == entry.last_mac_dst:
            entry.rx_fails_at_dst += 1

    def _on_tcp_abort(self, record: TraceRecord) -> None:
        addr, port = _tcp_endpoint(record.category)
        self.tcp_aborts.append((addr, port, record.time_ns))

    def _close_dropped(self, entry: SduEntry, reason: str, time_ns: int) -> None:
        entry.state = DROPPED
        entry.reason = reason
        entry.closed_ns = time_ns
        self.drops[reason] = self.drops.get(reason, 0) + 1

    # ---------------------------------------------------------- finalize

    def finalize(self, end_ns: int) -> None:
        """Close the books at simulation end.

        Still-open TCP SDUs whose connection recorded an abort become
        ``tcp-abort``; everything else still open becomes
        ``sim-end-in-flight``.  Idempotent.
        """
        if self.finalized:
            return
        self.finalized = True
        aborted = {(addr, port) for addr, port, _ in self.tcp_aborts}
        for entry in self.entries.values():
            if entry.state is not OPEN:
                continue
            if (
                entry.protocol == "tcp"
                and (entry.origin, entry.src_port) in aborted
            ):
                self._close_dropped(entry, "tcp-abort", end_ns)
            else:
                self._close_dropped(entry, "sim-end-in-flight", end_ns)

    # ------------------------------------------------------------ checks

    @property
    def in_flight(self) -> int:
        """Entries not yet closed."""
        return sum(1 for e in self.entries.values() if e.state is OPEN)

    @property
    def balanced(self) -> bool:
        """True when conservation holds (see :meth:`problems`)."""
        return not self.problems()

    def problems(self) -> list[str]:
        """Human-readable conservation violations (empty = balanced)."""
        problems: list[str] = []
        closed = self.delivered + sum(self.drops.values())
        if closed != self.opened:
            problems.append(
                f"opened {self.opened} SDUs but closed {closed} "
                f"({self.in_flight} still in flight)"
            )
        if self.unknown_events:
            problems.append(
                f"{self.unknown_events} audit event(s) referenced SDUs "
                f"that were never opened"
            )
        for kind in ("double-drop", "terminal-after-close:deliver",
                     "duplicate-open"):
            if self.anomalies.get(kind):
                problems.append(
                    f"{self.anomalies[kind]} impossible duplicate "
                    f"signal(s): {kind}"
                )
        return problems


def _receiver_address(category: str) -> int | None:
    """Station address from a ``phy.n<addr>`` category, else ``None``.

    The scenario builder names every transceiver ``n<address>``; a raw
    transceiver's default name does not parse, and its failures then
    never count as collision evidence (they cannot be attributed).
    """
    prefix = "phy.n"
    if not category.startswith(prefix):
        return None
    try:
        return int(category[len(prefix):])
    except ValueError:
        return None


def _tcp_endpoint(category: str) -> tuple[int, int | None]:
    """(addr, port) from a ``tcp.<addr>:<port>`` category."""
    _, _, endpoint = category.partition(".")
    addr_text, _, port_text = endpoint.partition(":")
    try:
        return int(addr_text), int(port_text)
    except ValueError:
        return -1, None
