"""The flight recorder: ledger + auditors + exporters on one simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.tables import render_table
from repro.errors import AuditError
from repro.obs.auditors import (
    AirtimeAuditor,
    Auditor,
    NavAuditor,
    TcpMonotonicAuditor,
)
from repro.obs.export import LedgerWriter, TraceDigest, TraceStreamWriter
from repro.obs.ledger import DROP_REASONS, PacketLedger
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer
from repro.units import ns_to_s


@dataclass(frozen=True)
class AuditReport:
    """What the flight recorder found, frozen at finalize time."""

    balanced: bool
    opened: int
    delivered: int
    drops: dict[str, int]
    anomalies: dict[str, int]
    violations: tuple[str, ...]
    problems: tuple[str, ...]
    end_ns: int
    trace_sha256: str | None = None
    artifacts: dict[str, str] = field(default_factory=dict)

    def drop_table(self) -> str:
        """The drop-reason breakdown as a printable table."""
        rows: list[list[object]] = [["delivered", self.delivered]]
        for reason in DROP_REASONS:
            rows.append([reason, self.drops.get(reason, 0)])
        rows.append(["opened", self.opened])
        return render_table(
            ["terminal state", "SDUs"], rows, title="Packet ledger"
        )

    def summary(self) -> str:
        """One grep-able line: balanced or not, and why not."""
        if self.balanced and not self.violations:
            return (
                f"ledger balanced: {self.opened} SDUs accounted for, "
                f"0 invariant violations, t_end={ns_to_s(self.end_ns):.3f}s"
            )
        details = list(self.problems) + list(self.violations)
        return "ledger NOT balanced: " + "; ".join(details)


class FlightRecorder:
    """Attaches observability to one (simulator, tracer) pair.

    ``attach()`` flips the tracer's audit channel on, subscribes the
    ledger and auditors, and registers :meth:`finalize` as a simulator
    shutdown hook, so a scenario that ends via
    :meth:`Simulator.shutdown` balances its books automatically.  In
    strict mode (the default) an invariant violation raises
    :class:`~repro.errors.AuditError` the moment it happens, and an
    unbalanced ledger raises at finalize.
    """

    def __init__(
        self,
        sim: Simulator,
        tracer: Tracer,
        *,
        audit: bool = True,
        strict: bool = True,
        trace_digest: bool = False,
        trace_jsonl: str | Path | None = None,
        ledger_jsonl: str | Path | None = None,
    ):
        self._sim = sim
        self._tracer = tracer
        self._audit = audit
        self._strict = strict
        self._want_digest = trace_digest
        self._trace_jsonl = trace_jsonl
        self._ledger_jsonl = ledger_jsonl
        self.ledger: PacketLedger | None = None
        self.auditors: tuple[Auditor, ...] = ()
        self.digest: TraceDigest | None = None
        self.writer: TraceStreamWriter | None = None
        self.report: AuditReport | None = None
        self._attached = False
        self._finalized = False

    def attach(self) -> "FlightRecorder":
        """Subscribe everything; idempotent."""
        if self._attached:
            return self
        self._attached = True
        # Exporters subscribe first so they see the stream the auditors
        # judge (subscribers fire in subscription order).
        if self._want_digest:
            self.digest = TraceDigest(self._tracer)
        if self._trace_jsonl is not None:
            self.writer = TraceStreamWriter(self._tracer, self._trace_jsonl)
        if self._audit:
            self._tracer.audit = True
            self.ledger = PacketLedger()
            self._tracer.subscribe(self.ledger.on_record)
            self.auditors = (
                AirtimeAuditor(),
                NavAuditor(),
                TcpMonotonicAuditor(),
            )
            for auditor in self.auditors:
                if self._strict:
                    auditor.on_violation = self._raise
                self._tracer.subscribe(auditor.on_record, prefix=auditor.prefix)
        self._sim.add_shutdown_hook(self.finalize)
        return self

    def _raise(self, message: str) -> None:
        raise AuditError(message)

    def finalize(self) -> AuditReport:
        """Close the books and build the report.  Idempotent.

        In strict mode raises :class:`AuditError` if the ledger does not
        balance or any auditor collected a violation.
        """
        if self._finalized:
            assert self.report is not None
            return self.report
        self._finalized = True
        end_ns = self._sim.now_ns
        violations: list[str] = []
        for auditor in self.auditors:
            auditor.finalize(end_ns)
            violations.extend(auditor.violations)
        problems: list[str] = []
        artifacts: dict[str, str] = {}
        if self.writer is not None:
            artifacts["trace_jsonl"] = str(self.writer.path)
            self.writer.close()
        opened = delivered = 0
        drops: dict[str, int] = {}
        anomalies: dict[str, int] = {}
        if self.ledger is not None:
            self.ledger.finalize(end_ns)
            problems = self.ledger.problems()
            opened = self.ledger.opened
            delivered = self.ledger.delivered
            drops = dict(self.ledger.drops)
            anomalies = dict(self.ledger.anomalies)
            if self._ledger_jsonl is not None:
                LedgerWriter(self._ledger_jsonl).write(self.ledger)
                artifacts["ledger_jsonl"] = str(self._ledger_jsonl)
        self.report = AuditReport(
            balanced=not problems,
            opened=opened,
            delivered=delivered,
            drops=drops,
            anomalies=anomalies,
            violations=tuple(violations),
            problems=tuple(problems),
            end_ns=end_ns,
            trace_sha256=(
                self.digest.hexdigest() if self.digest is not None else None
            ),
            artifacts=artifacts,
        )
        if self._strict and (problems or violations):
            raise AuditError(
                f"audit failed at t={ns_to_s(end_ns):.6f}s: "
                + "; ".join(problems + violations)
            )
        return self.report
