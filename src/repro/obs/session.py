"""Session-scoped audit collection.

Experiment shims build networks wherever they like — through
:func:`repro.scenario.points.scenario_point`, or by calling
:func:`repro.scenario.builder.build` directly (the fault-resilience
experiments do).  An :class:`AuditCollector` covers both: while one is
active, every network the builder constructs gets a strict
:class:`~repro.obs.recorder.FlightRecorder`, and recorders that were
never finalized (networks whose simulator was not shut down) are swept
up when the collector exits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.recorder import AuditReport, FlightRecorder

_ACTIVE: "AuditCollector | None" = None


def active_collector() -> "AuditCollector | None":
    """The collector in force, if any (consulted by the builder)."""
    return _ACTIVE


class AuditCollector:
    """Context manager that audits every network built inside it."""

    def __init__(self, strict: bool = True):
        self.strict = strict
        self.recorders: list["FlightRecorder"] = []
        self.reports: list["AuditReport"] = []

    def __enter__(self) -> "AuditCollector":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("audit collectors do not nest")
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = None
        if exc_type is not None:
            return  # don't mask the in-flight exception with audit noise
        for recorder in self.recorders:
            self.reports.append(recorder.finalize())

    def register(self, recorder: "FlightRecorder") -> None:
        """Track a recorder for end-of-context finalization."""
        self.recorders.append(recorder)
