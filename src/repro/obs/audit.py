"""``repro80211 audit`` — run a registry experiment with auditors on.

Runs the experiment serially and uncached: a cached sweep point skips
the simulation entirely, and a ledger over zero events would balance
vacuously.  Every network the experiment builds gets a strict flight
recorder; any invariant violation or conservation leak aborts the run
with :class:`~repro.errors.AuditError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.analysis.tables import render_table
from repro.obs.ledger import DROP_REASONS
from repro.obs.recorder import AuditReport
from repro.obs.session import AuditCollector


@dataclass(frozen=True)
class AuditOutcome:
    """Aggregated audit of one experiment run."""

    experiment: str
    output: str
    reports: tuple[AuditReport, ...]

    @property
    def balanced(self) -> bool:
        """True when every simulated network balanced its ledger."""
        return all(report.balanced for report in self.reports)

    @property
    def violations(self) -> tuple[str, ...]:
        """All invariant violations across all runs."""
        return tuple(
            violation
            for report in self.reports
            for violation in report.violations
        )

    def drop_breakdown(self) -> dict[str, int]:
        """Total SDUs per terminal state across all simulated networks."""
        totals = {"delivered": 0}
        for reason in DROP_REASONS:
            totals[reason] = 0
        for report in self.reports:
            totals["delivered"] += report.delivered
            for reason, count in report.drops.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def render(self) -> str:
        """The audit verdict: breakdown table plus a grep-able line."""
        totals = self.drop_breakdown()
        opened = sum(report.opened for report in self.reports)
        rows: list[list[object]] = [
            [state, count] for state, count in totals.items()
        ]
        rows.append(["opened (total)", opened])
        table = render_table(
            ["terminal state", "SDUs"],
            rows,
            title=f"Audit: {self.experiment} "
            f"({len(self.reports)} simulated network(s))",
        )
        if self.balanced and not self.violations:
            verdict = (
                f"ledger balanced: {opened} SDUs accounted for across "
                f"{len(self.reports)} network(s), 0 invariant violations"
            )
        else:  # pragma: no cover - strict mode raises before this
            verdict = "ledger NOT balanced"
        return f"{table}\n{verdict}"


def audit_experiment(
    name: str,
    overrides: Mapping[str, Any] | None = None,
    *,
    duration_s: float | None = None,
    seed: int | None = None,
    probes: int | None = None,
    strict: bool = True,
) -> AuditOutcome:
    """Run experiment ``name`` under a strict audit and aggregate it."""
    from repro.experiments.registry import get_experiment

    experiment = get_experiment(name)
    harness: dict[str, Any] = {"jobs": 1, "cache": None}
    if duration_s is not None:
        harness["duration_s"] = duration_s
    if seed is not None:
        harness["seed"] = seed
    if probes is not None:
        harness["probes"] = probes
    with AuditCollector(strict=strict) as collector:
        output = experiment.invoke(overrides, **harness)
    return AuditOutcome(
        experiment=name,
        output=output,
        reports=tuple(collector.reports),
    )
