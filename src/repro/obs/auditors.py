"""Online invariant auditors.

Each auditor subscribes to a slice of the trace stream and checks one
cross-layer invariant *while the simulation runs*.  A violation calls
``on_violation(message)`` — the :class:`~repro.obs.recorder.FlightRecorder`
wires that to raise :class:`~repro.errors.AuditError` immediately (fail
fast, with sim-time context in the message) unless strict mode is off,
in which case violations accumulate on :attr:`Auditor.violations`.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.tracing import TraceRecord
from repro.units import ns_to_s


class Auditor:
    """Base class: violation plumbing shared by all auditors."""

    #: Subscription prefix on the tracer.
    prefix = ""

    def __init__(self) -> None:
        self.violations: list[str] = []
        self.on_violation: Callable[[str], None] | None = None

    def violate(self, time_ns: int, message: str) -> None:
        """Record a violation stamped with its simulation time."""
        stamped = f"[t={ns_to_s(time_ns):.6f}s] {type(self).__name__}: {message}"
        self.violations.append(stamped)
        if self.on_violation is not None:
            self.on_violation(stamped)

    def on_record(self, record: TraceRecord) -> None:
        """Tracer subscriber; override."""
        raise NotImplementedError

    def finalize(self, end_ns: int) -> None:
        """End-of-run checks; default none."""


class AirtimeAuditor(Auditor):
    """Airtime occupancy can never exceed elapsed simulation time.

    Rides the *regular* ``phy.`` trace events (``tx_start`` carries the
    transmission duration), so it needs no audit channel.  Two checks
    per station at each transmission start, one for the medium union at
    the end:

    * a station's cumulative airtime never exceeds the clock,
    * a station never starts transmitting before its previous
      transmission ended (half-duplex violation),
    * the union of all transmission intervals fits in the run.
    """

    prefix = "phy."

    def __init__(self) -> None:
        super().__init__()
        self._busy_ns: dict[str, int] = {}
        self._last_end_ns: dict[str, int] = {}
        self._union_busy_ns = 0
        self._union_end_ns = 0

    def on_record(self, record: TraceRecord) -> None:
        if record.event != "tx_start":
            return
        station = record.category
        now = record.time_ns
        dur = record.fields.get("dur_ns", 0)
        last_end = self._last_end_ns.get(station, 0)
        if now < last_end:
            self.violate(
                now,
                f"{station} starts a transmission at {now} ns while its "
                f"previous one runs until {last_end} ns",
            )
        busy = self._busy_ns.get(station, 0)
        if busy > now:
            self.violate(
                now,
                f"{station} has accumulated {busy} ns of airtime but only "
                f"{now} ns have elapsed",
            )
        self._busy_ns[station] = busy + dur
        self._last_end_ns[station] = now + dur
        # Union of transmission intervals across the medium: events
        # arrive in time order, so a running (busy, end) pair suffices.
        if now >= self._union_end_ns:
            self._union_busy_ns += dur
        else:
            self._union_busy_ns += max(0, now + dur - self._union_end_ns)
        self._union_end_ns = max(self._union_end_ns, now + dur)

    def finalize(self, end_ns: int) -> None:
        horizon = max(end_ns, self._union_end_ns)
        if self._union_busy_ns > horizon:
            self.violate(
                end_ns,
                f"medium occupied for {self._union_busy_ns} ns of a "
                f"{horizon} ns run",
            )

    @property
    def union_busy_ns(self) -> int:
        """Total time at least one station was transmitting."""
        return self._union_busy_ns


class NavAuditor(Auditor):
    """The NAV (virtual carrier sense) never points into the past."""

    prefix = "mac."

    def on_record(self, record: TraceRecord) -> None:
        if record.event != "nav":
            return
        until_ns = record.fields["until_ns"]
        if until_ns < record.time_ns:
            self.violate(
                record.time_ns,
                f"{record.category} set NAV to {until_ns} ns, which is "
                f"before the current time {record.time_ns} ns",
            )


class TcpMonotonicAuditor(Auditor):
    """TCP sequence/ack monotonicity per connection.

    ``snd_una`` and ``rcv_nxt`` only move forward, and ``snd_una`` never
    overtakes ``snd_nxt``.  State resets on each audit ``open`` event:
    a crash-reboot cycle restarts a flow on the same (addr, port), and
    the fresh connection legitimately begins back at sequence 0.
    """

    prefix = "tcp."

    def __init__(self) -> None:
        super().__init__()
        self._state: dict[str, tuple[int, int]] = {}  # category -> (una, rcv)

    def on_record(self, record: TraceRecord) -> None:
        if record.event == "open":
            self._state.pop(record.category, None)
            return
        if record.event != "state":
            return
        snd_una = record.fields["snd_una"]
        snd_nxt = record.fields["snd_nxt"]
        rcv_nxt = record.fields["rcv_nxt"]
        now = record.time_ns
        if snd_una > snd_nxt:
            self.violate(
                now,
                f"{record.category} snd_una={snd_una} overtook "
                f"snd_nxt={snd_nxt}",
            )
        prev = self._state.get(record.category)
        if prev is not None:
            prev_una, prev_rcv = prev
            if snd_una < prev_una:
                self.violate(
                    now,
                    f"{record.category} snd_una moved backwards "
                    f"{prev_una} -> {snd_una}",
                )
            if rcv_nxt < prev_rcv:
                self.violate(
                    now,
                    f"{record.category} rcv_nxt moved backwards "
                    f"{prev_rcv} -> {rcv_nxt}",
                )
        self._state[record.category] = (snd_una, rcv_nxt)
