"""Exporters: JSONL dumps and streaming digests of the event stream.

All encodings go through
:func:`repro.analysis.tracefile.encode_record`, so a digest streamed
during the run equals a digest of the written file's lines — and two
runs of the same seeded scenario produce bit-identical artefacts
regardless of worker count or cache temperature.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.tracefile import encode_record
from repro.sim.tracing import TraceRecord, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.ledger import PacketLedger


class TraceStreamWriter:
    """Streams every matching trace record to a ``.jsonl`` file.

    Unlike :class:`~repro.analysis.tracefile.TraceWriter` this is not a
    context manager: the flight recorder opens it at attach time and
    closes it at finalize, which do not nest lexically.
    """

    def __init__(self, tracer: Tracer, path: str | Path, prefix: str = ""):
        self._tracer = tracer
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self._path.open("w")
        self.records_written = 0
        tracer.subscribe(self._on_record, prefix=prefix)

    @property
    def path(self) -> Path:
        """Where the trace lands."""
        return self._path

    def _on_record(self, record: TraceRecord) -> None:
        self._handle.write(encode_record(record))
        self._handle.write("\n")
        self.records_written += 1

    def close(self) -> None:
        """Flush, close and unsubscribe.  Idempotent."""
        if self._handle is not None:
            self._tracer.unsubscribe(self._on_record)
            self._handle.close()
            self._handle = None


class TraceDigest:
    """SHA-256 over the canonical encoding of the event stream.

    Subscribing does not perturb the tracer's counters, so attaching a
    digest never changes a run's golden counter digest.
    """

    def __init__(self, tracer: Tracer, prefix: str = ""):
        self._sha = hashlib.sha256()
        self.records_hashed = 0
        tracer.subscribe(self._on_record, prefix=prefix)

    def _on_record(self, record: TraceRecord) -> None:
        self._sha.update(encode_record(record).encode())
        self._sha.update(b"\n")
        self.records_hashed += 1

    def hexdigest(self) -> str:
        """Digest of everything hashed so far."""
        return self._sha.hexdigest()


class LedgerWriter:
    """Dumps a finalized ledger to a ``.jsonl`` file, one SDU per line.

    Entries are written in (origin, sdu) order so the file is
    deterministic for a deterministic run.
    """

    def __init__(self, path: str | Path):
        self._path = Path(path)

    def write(self, ledger: "PacketLedger") -> int:
        """Write every entry; returns the number of lines."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        entries = sorted(ledger.entries.values(), key=lambda e: e.key)
        with self._path.open("w") as handle:
            for entry in entries:
                handle.write(json.dumps(entry.to_dict(), sort_keys=True))
                handle.write("\n")
        return len(entries)


def trace_digest_row(net, **params) -> dict:
    """Scenario extractor: the run's streamed trace digest.

    Requires the scenario's :class:`ObservabilitySpec` to have
    ``trace_digest=True`` so the builder attached a digest subscriber;
    the spec travels with the point, which is what makes this work in
    parallel sweep workers too.
    """
    recorder = getattr(net, "recorder", None)
    if recorder is None or recorder.digest is None:
        raise ValueError(
            "trace_digest_row needs observability.trace_digest=True on "
            "the scenario spec"
        )
    return {
        "trace_sha256": recorder.digest.hexdigest(),
        "records": recorder.digest.records_hashed,
    }
