"""Batched reception math: the fast kernel behind the reception models.

The reference implementations in :mod:`repro.phy.reception` walk every
(frame field x interference interval) pair in Python and call
``linear_to_db`` — a transcendental — per pair.  This module restructures
that walk around one observation: for the threshold model a segment
fails iff its *worst* (minimum-SINR) interval fails, and SINR is
monotone decreasing in interference power.  The kernel therefore reduces
each segment to its maximum interference power — a pure max, no
transcendental — and makes exactly one ``linear_to_db`` call per
segment, with bit-identical arguments to the call the reference would
have made on that worst interval.  The verdict is identical by
monotonicity; the floating-point path to it is identical by
construction.

Interference timelines come from the transceiver with nondecreasing
offsets.  Long timelines (dense interferer neighbourhoods) are reduced
with numpy in one vectorized pass (``searchsorted`` + sliced ``max``
per segment); short ones — the common case — use a scalar fast path,
since numpy's per-call overhead exceeds the work below roughly a dozen
entries.  A timeline that is *not* sorted (only hand-built contexts can
produce one) falls back to the scalar path, which handles arbitrary
timelines exactly like the reference.

Kernel selection: ``resolve_kernel()`` reads the ``REPRO_KERNEL``
environment variable (``python`` | ``numpy`` | ``auto``); scenario specs
can pin a choice per run via ``StackSpec.kernel``.  ``python`` is the
reference implementation, kept verbatim as the fallback; ``numpy`` is
this module.  The golden digests are the arbiter that both agree.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from math import log10 as _log10

from repro.errors import ConfigurationError
from repro.units import dbm_to_mw

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.phy.radio import RadioParameters
    from repro.phy.reception import ReceptionContext

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None  # type: ignore[assignment]

#: Environment variable selecting the reception kernel.
KERNEL_ENV = "REPRO_KERNEL"

#: Kernel names accepted by :func:`resolve_kernel` (besides ``auto``).
KERNELS = ("python", "numpy")

#: Timeline length at which the numpy reduction overtakes the scalar
#: loop.  Below this the kernel stays scalar — same arithmetic, no
#: array-construction overhead.
VECTOR_CUTOFF = 12


def numpy_available() -> bool:
    """True when the numpy backend can actually run."""
    return _np is not None


def resolve_kernel(preference: str | None = None) -> str:
    """Pick the reception kernel: explicit preference, else environment.

    ``preference`` (e.g. from a scenario spec) wins over the
    ``REPRO_KERNEL`` environment variable; ``auto`` (the default when
    neither is set) selects ``numpy`` when importable, else ``python``.
    An *explicit* request for ``numpy`` without numpy installed is a
    configuration error, not a silent fallback.
    """
    name = preference if preference is not None else os.environ.get(KERNEL_ENV, "auto")
    name = name.strip().lower() or "auto"
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name not in KERNELS:
        raise ConfigurationError(
            f"unknown reception kernel {name!r}; expected one of "
            f"{', '.join(KERNELS)} or auto"
        )
    if name == "numpy" and not numpy_available():
        raise ConfigurationError(
            "reception kernel 'numpy' requested but numpy is not importable"
        )
    return name


class SinrKernel:
    """Fast path for :class:`~repro.phy.reception.SinrThresholdReception`.

    Holds per-plan tables — segment offsets joined with the radio's
    per-rate sensitivity and SINR threshold — so the per-frame work is
    pure arithmetic on floats.  Plans are interned per station (see
    :mod:`repro.phy.plans`), so the table dict stays a handful of
    entries.  The tables are keyed against one radio; if the same model
    instance is ever handed a different radio the tables rebuild.
    """

    __slots__ = ()

    @staticmethod
    def _rows(
        plan, radio: "RadioParameters"
    ) -> tuple[tuple[int, int, float, float], ...]:
        # The table rides on the (interned, frozen) plan itself, written
        # through __dict__ like cached_property does — an attribute read
        # per frame instead of hashing the plan's segment tuple.  Tagged
        # with the radio it was built against: a plan is only ever
        # evaluated by its transmitting station's radio, but a different
        # radio (shared plans in tests) rebuilds rather than lies.
        cached = plan.__dict__.get("_sinr_rows")
        if cached is not None and cached[0] is radio:
            return cached[1]
        rows = tuple(
            (
                start_ns,
                end_ns,
                radio.sensitivity_dbm[segment.rate],
                radio.sinr_threshold_db[segment.rate],
            )
            for start_ns, end_ns, segment in plan.segment_offsets_ns()
        )
        plan.__dict__["_sinr_rows"] = (radio, rows)
        return rows

    def evaluate(self, context: "ReceptionContext", radio: "RadioParameters"):
        """Threshold-model verdict, bit-identical to the reference."""
        from repro.phy.reception import ReceptionOutcome

        rx_dbm = context.rx_power_dbm
        signal_mw = dbm_to_mw(rx_dbm)
        noise_mw = context.noise_mw
        timeline = context.interference_timeline
        n = len(timeline)
        rows = self._rows(context.plan, radio)

        # ``10.0 * log10(x)`` below is units.linear_to_db inlined (SINR
        # is strictly positive here): same expression, no call frame.

        if n == 1:
            # No interference change during the whole reception — the
            # modal case: every segment sees the single timeline level.
            interference_mw = timeline[0][1]
            for start_ns, end_ns, sensitivity, threshold in rows:
                if rx_dbm < sensitivity:
                    return ReceptionOutcome.BELOW_SENSITIVITY
                if end_ns <= start_ns:
                    continue
                sinr = signal_mw / (noise_mw + interference_mw)
                if 10.0 * _log10(sinr) < threshold:
                    return ReceptionOutcome.SINR_FAILURE
            return ReceptionOutcome.OK

        if _np is not None and n >= VECTOR_CUTOFF:
            offs = _np.empty(n, dtype=_np.int64)
            mws = _np.empty(n, dtype=_np.float64)
            for i, (off, mw) in enumerate(timeline):
                offs[i] = off
                mws[i] = mw
            if bool((offs[1:] >= offs[:-1]).all()):
                # Keep-last dedupe: an entry sharing its offset with its
                # successor spans zero time — the reference's lo < hi
                # check drops exactly those, so dropping them here keeps
                # the per-segment max over the same interval set.
                keep = _np.empty(n, dtype=bool)
                keep[:-1] = offs[1:] > offs[:-1]
                keep[-1] = True
                if not bool(keep.all()):
                    offs = offs[keep]
                    mws = mws[keep]
                for start_ns, end_ns, sensitivity, threshold in rows:
                    if rx_dbm < sensitivity:
                        return ReceptionOutcome.BELOW_SENSITIVITY
                    if end_ns <= start_ns:
                        continue
                    i0 = int(_np.searchsorted(offs, start_ns, side="right")) - 1
                    if i0 < 0:
                        i0 = 0
                    i1 = int(_np.searchsorted(offs, end_ns, side="left"))
                    if i1 <= i0:
                        continue
                    worst_mw = float(mws[i0:i1].max())
                    sinr = signal_mw / (noise_mw + worst_mw)
                    if 10.0 * _log10(sinr) < threshold:
                        return ReceptionOutcome.SINR_FAILURE
                return ReceptionOutcome.OK
            # Unsorted timeline (hand-built context): scalar path below
            # handles it exactly like the reference.

        for start_ns, end_ns, sensitivity, threshold in rows:
            if rx_dbm < sensitivity:
                return ReceptionOutcome.BELOW_SENSITIVITY
            worst_mw = -1.0
            for i in range(n):
                off, mw = timeline[i]
                nxt = timeline[i + 1][0] if i + 1 < n else end_ns
                lo = off if off > start_ns else start_ns
                hi = nxt if nxt < end_ns else end_ns
                if lo < hi and mw > worst_mw:
                    worst_mw = mw
            if worst_mw < 0.0:
                continue
            sinr = signal_mw / (noise_mw + worst_mw)
            if 10.0 * _log10(sinr) < threshold:
                return ReceptionOutcome.SINR_FAILURE
        return ReceptionOutcome.OK
