"""Radio front-end parameters.

The calibrated preset reproduces the paper's measured Table-3 ranges over
the calibrated log-distance channel; the ns-2 preset reproduces the
TX_range = 250 m / PCS_range = 550 m setting the paper criticises, for
side-by-side comparison (paper §3.2).

Thresholds are defined *through ranges*: :meth:`RadioParameters.from_ranges`
turns "the 11 Mbps range should be 31 m" into a sensitivity via the path
loss model, which keeps the calibration explicit and auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.channel.propagation import (
    LogDistancePathLoss,
    PropagationModel,
    TwoRayGroundPathLoss,
)
from repro.core.params import ALL_RATES, Rate
from repro.errors import ConfigurationError

#: Data transmission ranges (metres) the calibrated preset targets —
#: the centre of each band the paper reports in Table 3.
CALIBRATED_DATA_RANGES_M: dict[Rate, float] = {
    Rate.MBPS_11: 31.0,
    Rate.MBPS_5_5: 69.0,
    Rate.MBPS_2: 94.0,
    Rate.MBPS_1: 113.0,
}
#: Physical carrier-sense range (metres) targeted by the calibration:
#: large enough that S2 senses S3 strongly in the Figure-6 scenario
#: (80 m apart), small enough that the same coupling is marginal at the
#: Figure-8 spacing (92.5 m) — which is what makes the 11 Mbps system
#: strongly asymmetric and the 2 Mbps one "more balanced" (paper §3.3).
CALIBRATED_CS_RANGE_M = 93.0
#: Preamble-lock range: how far away a PLCP header can be synchronised
#: on.  The PLCP travels at 1 Mbps, so locking works out to the 1 Mbps
#: data range — this is what lets the Figure-3 loss curve at 1 Mbps
#: extend to ~113 m.  Carrier-sense deferral is governed separately by
#: the energy-detect threshold (CCA mode 1), which is what keeps S1 and
#: S3 decoupled at 105 m in the Figure-6 scenario.
CALIBRATED_LOCK_RANGE_M = 113.0

#: Minimum SINR (dB) to decode each modulation in the threshold reception
#: model.  Monotone in rate: CCK-11 needs the cleanest channel.
DEFAULT_SINR_THRESHOLDS_DB: dict[Rate, float] = {
    Rate.MBPS_1: 4.0,
    Rate.MBPS_2: 7.0,
    Rate.MBPS_5_5: 9.0,
    Rate.MBPS_11: 12.0,
}


@dataclass(frozen=True)
class RadioParameters:
    """Everything the PHY needs to know about the radio hardware."""

    tx_power_dbm: float
    #: Received power needed to decode a frame *field* sent at each rate.
    sensitivity_dbm: Mapping[Rate, float]
    #: Energy-detect threshold for physical carrier sensing.
    cs_threshold_dbm: float
    #: Received power needed to synchronise on a PLCP preamble.
    preamble_lock_dbm: float
    #: Effective noise floor after DSSS despreading.  Low enough that the
    #: calibrated *sensitivities* (not the SINR thresholds against pure
    #: noise) set the transmission ranges, as on real hardware.
    noise_floor_dbm: float = -104.0
    #: Minimum SINR per rate for the threshold reception model.
    sinr_threshold_db: Mapping[Rate, float] = field(
        default_factory=lambda: dict(DEFAULT_SINR_THRESHOLDS_DB)
    )
    #: Allow re-locking onto a stronger frame during a preamble.
    capture_enabled: bool = False
    #: Power advantage (dB) a late frame needs to capture the receiver.
    capture_margin_db: float = 10.0

    def __post_init__(self) -> None:
        missing = [rate for rate in ALL_RATES if rate not in self.sensitivity_dbm]
        if missing:
            raise ConfigurationError(
                f"sensitivity_dbm must cover all rates; missing {missing}"
            )

    @classmethod
    def from_ranges(
        cls,
        propagation: PropagationModel,
        data_range_m: Mapping[Rate, float],
        cs_range_m: float,
        lock_range_m: float | None = None,
        tx_power_dbm: float = 15.0,
        **overrides,
    ) -> "RadioParameters":
        """Derive thresholds from target ranges over ``propagation``.

        The sensitivity for a rate whose range should be R is simply the
        mean received power at R: ``tx_power - PL(R)``.
        """
        sensitivity = {
            rate: tx_power_dbm - propagation.path_loss_db(rng_m)
            for rate, rng_m in data_range_m.items()
        }
        if lock_range_m is None:
            lock_range_m = cs_range_m
        return cls(
            tx_power_dbm=tx_power_dbm,
            sensitivity_dbm=sensitivity,
            cs_threshold_dbm=tx_power_dbm - propagation.path_loss_db(cs_range_m),
            preamble_lock_dbm=tx_power_dbm - propagation.path_loss_db(lock_range_m),
            **overrides,
        )

    @classmethod
    def calibrated(cls, **overrides) -> "RadioParameters":
        """The preset matched to the paper's Table-3 measurements."""
        return cls.from_ranges(
            LogDistancePathLoss.calibrated(),
            CALIBRATED_DATA_RANGES_M,
            cs_range_m=CALIBRATED_CS_RANGE_M,
            lock_range_m=CALIBRATED_LOCK_RANGE_M,
            **overrides,
        )

    @classmethod
    def ns2_default(cls, **overrides) -> "RadioParameters":
        """The ns-2-style setting the paper contrasts with (§3.2).

        TX_range = 250 m at every rate and PCS_range = IF_range = 550 m,
        over the two-ray ground model with 1.5 m antennas.
        """
        propagation = TwoRayGroundPathLoss()
        return cls.from_ranges(
            propagation,
            {rate: 250.0 for rate in ALL_RATES},
            cs_range_m=550.0,
            lock_range_m=550.0,
            tx_power_dbm=24.5,
            **overrides,
        )

    def rx_power_dbm_at(
        self, propagation: PropagationModel, distance_m: float
    ) -> float:
        """Mean received power at a distance (diagnostic helper)."""
        return self.tx_power_dbm - propagation.path_loss_db(distance_m)
