"""Transmission plans: the rate-and-duration schedule of a frame.

An 802.11b frame is not transmitted at one rate: the PLCP preamble and
header go at the PLCP rates, the MAC header at the header rate and the
payload at the data rate (paper §2 and §3.1).  A :class:`TransmissionPlan`
captures that schedule; the transceiver uses it both to time the signal
and to evaluate reception field by field.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.core.airtime import AirtimeCalculator
from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.units import us_to_ns


@dataclass(frozen=True)
class Segment:
    """One constant-rate field of a frame."""

    name: str
    bits: int
    rate: Rate
    duration_ns: int


@dataclass(frozen=True)
class TransmissionPlan:
    """The full field schedule of one frame on the air.

    Plans are immutable and — when built through :func:`data_frame_plan`
    / :func:`control_frame_plan` — interned per calculator, so the
    derived quantities below are ``cached_property``: each is computed
    once per distinct plan, not once per transmitted frame.
    (``cached_property`` writes through ``__dict__`` directly, which is
    why it composes with ``frozen=True``.)
    """

    segments: tuple[Segment, ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigurationError("a transmission plan needs >= 1 segment")

    @cached_property
    def duration_ns(self) -> int:
        """Total airtime."""
        return sum(segment.duration_ns for segment in self.segments)

    @cached_property
    def preamble_end_ns(self) -> int:
        """Offset at which the PLCP (first segment) ends."""
        return self.segments[0].duration_ns

    @property
    def data_rate(self) -> Rate:
        """Rate of the last (payload) segment."""
        return self.segments[-1].rate

    @cached_property
    def _segment_offsets(self) -> tuple[tuple[int, int, Segment], ...]:
        offsets = []
        position = 0
        for segment in self.segments:
            offsets.append((position, position + segment.duration_ns, segment))
            position += segment.duration_ns
        return tuple(offsets)

    def segment_offsets_ns(self) -> tuple[tuple[int, int, Segment], ...]:
        """(start, end, segment) offsets relative to frame start."""
        return self._segment_offsets


def _plcp_segment(airtime: AirtimeCalculator) -> Segment:
    plcp = airtime.config.plcp
    return Segment(
        name="plcp",
        bits=plcp.preamble_bits + plcp.header_bits,
        # The PLCP is decoded at its preamble rate (1 Mbps for both formats).
        rate=plcp.preamble_rate,
        duration_ns=us_to_ns(plcp.duration_us),
    )


def data_frame_plan(
    msdu_bytes: int, data_rate: Rate, airtime: AirtimeCalculator
) -> TransmissionPlan:
    """Plan for a MAC data frame carrying an ``msdu_bytes`` payload.

    Interned: one plan object per ``(payload size, rate)`` per
    calculator.  A saturated station transmits the same few frame shapes
    tens of thousands of times; rebuilding the plan each time made the
    per-frame ``Rate`` enum arithmetic one of the hottest lines in the
    whole profile.  Plans are frozen, so sharing is safe, and the
    identity-stable objects double as cache keys for the reception
    kernel's per-plan tables.
    """
    cache = airtime.plan_cache
    key = (msdu_bytes, data_rate)
    cached = cache.get(key)
    if cached is not None:
        return cached
    plan = _build_data_frame_plan(msdu_bytes, data_rate, airtime)
    cache[key] = plan
    return plan


def _build_data_frame_plan(
    msdu_bytes: int, data_rate: Rate, airtime: AirtimeCalculator
) -> TransmissionPlan:
    breakdown = airtime.data_frame(msdu_bytes, data_rate)
    header_rate = airtime.config.header_rate_policy.header_rate(data_rate)
    return TransmissionPlan(
        segments=(
            _plcp_segment(airtime),
            Segment(
                name="mac-header",
                bits=airtime.config.mac.mac_header_bits,
                rate=header_rate,
                duration_ns=us_to_ns(breakdown.header_us),
            ),
            Segment(
                name="payload",
                bits=msdu_bytes * 8,
                rate=data_rate,
                duration_ns=us_to_ns(breakdown.payload_us),
            ),
        )
    )


def control_frame_plan(
    name: str, body_bits: int, airtime: AirtimeCalculator, rate: Rate | None = None
) -> TransmissionPlan:
    """Plan for a control frame (RTS/CTS/ACK) at the control rate.

    Interned per calculator like :func:`data_frame_plan`.
    """
    if rate is None:
        rate = airtime.config.control_rate
    if body_bits <= 0:
        raise ConfigurationError(f"control body must be > 0 bits, got {body_bits}")
    cache = airtime.plan_cache
    key = (name, body_bits, rate)
    cached = cache.get(key)
    if cached is not None:
        return cached
    plan = _build_control_frame_plan(name, body_bits, airtime, rate)
    cache[key] = plan
    return plan


def _build_control_frame_plan(
    name: str, body_bits: int, airtime: AirtimeCalculator, rate: Rate
) -> TransmissionPlan:
    return TransmissionPlan(
        segments=(
            _plcp_segment(airtime),
            Segment(
                name=name,
                bits=body_bits,
                rate=rate,
                duration_ns=us_to_ns(body_bits / rate.mbps),
            ),
        )
    )
