"""The half-duplex PHY state machine.

The transceiver sits between the MAC and the medium.  It tracks every
signal currently audible, maintains the physical carrier-sense state
(energy above threshold, or locked on a frame, or transmitting), locks on
preambles, records interference during receptions and hands completed
frames — or reception errors — to its listener (the MAC).

Carrier sensing deliberately includes the "locked on a PLCP" condition:
a station can follow a frame whose *energy* alone would not trip the
energy-detect threshold, which is one of the couplings the paper observes
beyond the transmission range.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.channel.medium import Medium, Signal
from repro.channel.shadowing import Position
from repro.errors import MacError
from repro.phy.plans import TransmissionPlan
from repro.phy.radio import RadioParameters
from repro.phy.reception import (
    ReceptionContext,
    ReceptionModel,
    ReceptionOutcome,
    SinrThresholdReception,
)
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer
from repro.units import dbm_to_mw, linear_to_db


class PhyState(Enum):
    """Transceiver macro-state."""

    IDLE = "idle"
    RX = "rx"
    TX = "tx"


@dataclass(frozen=True)
class PhyFrame:
    """What actually rides on a medium signal: MAC frame + field plan."""

    mac_frame: Any
    plan: TransmissionPlan


class PhyListener:
    """MAC-side callbacks; subclass and override what you need."""

    def on_cs_busy(self) -> None:
        """Physical carrier sense went busy."""

    def on_cs_idle(self) -> None:
        """Physical carrier sense went idle."""

    def on_rx_start(self) -> None:
        """The PHY locked onto a preamble."""

    def on_rx_end(self, mac_frame: Any | None, outcome: ReceptionOutcome) -> None:
        """A locked frame ended; ``mac_frame`` is None unless decoded."""

    def on_tx_end(self) -> None:
        """Our own transmission completed."""


class Transceiver:
    """One station's radio."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        radio: RadioParameters,
        name: str = "phy",
        position_m: Position = (0.0, 0.0),
        reception: ReceptionModel | None = None,
        rng: random.Random | None = None,
        tracer: Tracer | None = None,
    ):
        self._sim = sim
        self._medium = medium
        self._radio = radio
        self.name = name
        self._position_m = position_m
        self._reception = reception if reception is not None else SinrThresholdReception()
        self._rng = rng if rng is not None else random.Random(0)
        self._tracer = tracer if tracer is not None else Tracer()
        # Self-counting trace channel: the category string is built once,
        # counts land in a registered local dict, and the tracer is only
        # called (fan-out) when a subscriber is attached.
        self._category = f"phy.{name}"
        self._counts: dict[str, int] = defaultdict(int)
        self._tracer.register_counters(self._category, self._counts)
        self._listener = PhyListener()
        self._state = PhyState.IDLE
        self._signals: dict[int, float] = {}  # signal_id -> rx power, mW
        self._locked_signal: Signal | None = None
        self._locked_power_dbm = 0.0
        self._locked_start_ns = 0
        self._interference_log: list[tuple[int, float]] = []
        self._cs_busy = False
        self._powered = True
        self._noise_rise_db = 0.0
        self._noise_mw = dbm_to_mw(radio.noise_floor_dbm)
        self._cs_threshold_mw = dbm_to_mw(radio.cs_threshold_dbm)
        # Pending own-transmission-complete event, in slot form (seq 0 =
        # no transmission in flight).
        self._tx_slot = -1
        self._tx_seq = 0
        medium.attach(self)

    # ------------------------------------------------------------- wiring

    def set_listener(self, listener: PhyListener) -> None:
        """Attach the MAC (or a test probe)."""
        self._listener = listener

    @property
    def radio(self) -> RadioParameters:
        """The radio parameters in force."""
        return self._radio

    @property
    def position_m(self) -> Position:
        """Current station position (metres)."""
        return self._position_m

    @position_m.setter
    def position_m(self, position: Position) -> None:
        self._position_m = position
        # The medium evicts stale pair-cache rows and re-buckets the
        # spatial index; tolerates devices not yet attached (this setter
        # does not fire during __init__, but external movers may assign
        # before attach in exotic wiring).
        self._medium.notify_moved(self)

    @property
    def state(self) -> PhyState:
        """Current macro-state."""
        return self._state

    @property
    def cs_busy(self) -> bool:
        """Physical carrier sense: energy detect or own transmission.

        Deliberately energy-based (CCA mode 1): a weak frame beyond the
        energy-detect range can still be *received* (the PLCP travels at
        1 Mbps) without making the medium look busy, matching the
        measured behaviour the calibration targets (DESIGN.md §2).
        """
        return self._cs_busy

    @property
    def total_power_mw(self) -> float:
        """Summed received power of all audible signals."""
        return sum(self._signals.values())

    @property
    def powered(self) -> bool:
        """False while the radio is crashed/powered down."""
        return self._powered

    @property
    def noise_rise_db(self) -> float:
        """Current noise-floor elevation (fault injection)."""
        return self._noise_rise_db

    def set_noise_rise_db(self, rise_db: float) -> None:
        """Elevate (or restore, with 0) the effective noise floor.

        Models wide-band interference — microwave ovens, co-channel
        bursts — that degrades SINR at this receiver without being a
        decodable or carrier-sensable signal.
        """
        self._noise_rise_db = rise_db
        self._noise_mw = dbm_to_mw(self._radio.noise_floor_dbm + rise_db)

    def power_off(self) -> None:
        """Crash the radio: stop hearing the medium, abandon TX/RX.

        No listener callbacks fire — the caller is expected to reset the
        MAC as part of the same crash (see :meth:`repro.net.node.Node.crash`).
        A transmission already on the air keeps propagating to receivers
        (the energy has left the antenna); only its local completion
        callback is dropped.
        """
        if not self._powered:
            return
        self._powered = False
        if self._tx_seq != 0:
            self._sim.cancel_slot(self._tx_slot, self._tx_seq)
            self._tx_seq = 0
        self._locked_signal = None
        self._interference_log = []
        self._signals.clear()
        self._state = PhyState.IDLE
        self._cs_busy = False
        self._trace("power_off")

    def power_on(self) -> None:
        """Reboot the radio.  Signals already in flight stay unheard."""
        if self._powered:
            return
        self._powered = True
        self._trace("power_on")
        self._update_cs()

    # --------------------------------------------------------------- MAC

    def transmit(self, plan: TransmissionPlan, mac_frame: Any) -> int:
        """Put a frame on the air; returns its duration in ns.

        Transmitting while already transmitting is a MAC bug.  A
        transmission that starts while a reception is in progress aborts
        the reception (half-duplex radio).
        """
        if not self._powered:
            raise MacError(f"{self.name}: transmit while powered off")
        if self._state is PhyState.TX:
            raise MacError(f"{self.name}: transmit while already transmitting")
        if self._state is PhyState.RX:
            self._abort_reception()
        self._state = PhyState.TX
        signal = self._medium.transmit(
            self, PhyFrame(mac_frame, plan), plan.duration_ns, self._radio.tx_power_dbm
        )
        self._counts["tx_start"] += 1
        if self._tracer.active:
            self._tracer.fanout(
                self._sim.now_ns,
                self._category,
                "tx_start",
                {"frame": type(mac_frame).__name__, "dur_ns": signal.duration_ns},
            )
        self._tx_slot, self._tx_seq = self._sim.schedule_slot(
            plan.duration_ns, self._finish_tx
        )
        self._update_cs()
        return plan.duration_ns

    def _finish_tx(self) -> None:
        self._tx_seq = 0
        self._state = PhyState.IDLE
        self._trace("tx_end")
        self._update_cs()
        self._listener.on_tx_end()

    # ------------------------------------------------------------ medium

    def on_signal_start(self, signal: Signal, rx_power_dbm: float) -> None:
        """Medium callback: a signal's energy reaches us.

        The audible-power sum is computed once here and threaded through
        the state updates — it was the single hottest expression in
        saturated profiles when each of lock/interference/carrier-sense
        re-derived it.  Reusing one value is bit-identical: the signal
        dict does not change between those reads.
        """
        if not self._powered:
            return
        self._signals[signal.signal_id] = dbm_to_mw(rx_power_dbm)
        total_mw = sum(self._signals.values())
        if self._state is PhyState.RX:
            self._note_interference_change(total_mw)
            self._maybe_capture(signal, rx_power_dbm, total_mw)
        elif self._state is PhyState.IDLE:
            self._maybe_lock(signal, rx_power_dbm, total_mw)
        self._update_cs(total_mw)

    def on_signal_end(self, signal: Signal) -> None:
        """Medium callback: a signal fades out at our position."""
        if not self._powered:
            return
        self._signals.pop(signal.signal_id, None)
        total_mw = sum(self._signals.values())
        if self._locked_signal is signal:
            self._finish_reception(signal)
        elif self._state is PhyState.RX:
            self._note_interference_change(total_mw)
        self._update_cs(total_mw)

    # --------------------------------------------------------- internals

    def _other_power_mw(self, total_mw: float | None = None) -> float:
        total = self.total_power_mw if total_mw is None else total_mw
        if self._locked_signal is not None:
            total -= self._signals.get(self._locked_signal.signal_id, 0.0)
        return max(total, 0.0)

    def _maybe_lock(
        self, signal: Signal, rx_power_dbm: float, total_mw: float | None = None
    ) -> None:
        if rx_power_dbm < self._radio.preamble_lock_dbm:
            return
        if total_mw is None:
            total_mw = self.total_power_mw
        interference_mw = total_mw - self._signals[signal.signal_id]
        sinr = dbm_to_mw(rx_power_dbm) / (self._noise_mw + interference_mw)
        plcp_rate = signal.frame.plan.segments[0].rate
        if linear_to_db(sinr) < self._radio.sinr_threshold_db[plcp_rate]:
            return
        self._state = PhyState.RX
        self._locked_signal = signal
        self._locked_power_dbm = rx_power_dbm
        self._locked_start_ns = self._sim.now_ns
        self._interference_log = [(0, interference_mw)]
        self._counts["rx_lock"] += 1
        if self._tracer.active:
            self._tracer.fanout(
                self._sim.now_ns,
                self._category,
                "rx_lock",
                {"signal": signal.signal_id, "rx_dbm": round(rx_power_dbm, 1)},
            )
        self._listener.on_rx_start()

    def _maybe_capture(
        self, signal: Signal, rx_power_dbm: float, total_mw: float | None = None
    ) -> None:
        if not self._radio.capture_enabled or self._locked_signal is None:
            return
        in_preamble = (
            self._sim.now_ns - self._locked_start_ns
            <= self._locked_signal.frame.plan.preamble_end_ns
        )
        if not in_preamble:
            return
        if rx_power_dbm >= self._locked_power_dbm + self._radio.capture_margin_db:
            self._trace(
                "capture",
                old=self._locked_signal.signal_id,
                new=signal.signal_id,
            )
            # The previously locked frame degrades into interference.
            self._locked_signal = None
            self._state = PhyState.IDLE
            self._maybe_lock(signal, rx_power_dbm, total_mw)

    def _note_interference_change(self, total_mw: float | None = None) -> None:
        offset = self._sim.now_ns - self._locked_start_ns
        self._interference_log.append((offset, self._other_power_mw(total_mw)))

    def _finish_reception(self, signal: Signal) -> None:
        phy_frame: PhyFrame = signal.frame
        context = ReceptionContext(
            plan=phy_frame.plan,
            rx_power_dbm=self._locked_power_dbm,
            noise_mw=self._noise_mw,
            interference_timeline=tuple(self._interference_log),
        )
        outcome = self._reception.evaluate(context, self._radio, self._rng)
        self._locked_signal = None
        self._interference_log = []
        self._state = PhyState.IDLE
        self._trace("rx_end", signal=signal.signal_id, outcome=outcome.value)
        mac_frame = phy_frame.mac_frame if outcome.success else None
        if not outcome.success and self._tracer.audit:
            self._audit_rx_fail(phy_frame, outcome.value)
        self._listener.on_rx_end(mac_frame, outcome)

    def _abort_reception(self) -> None:
        signal = self._locked_signal
        self._locked_signal = None
        self._interference_log = []
        self._state = PhyState.IDLE
        if signal is not None:
            self._trace("rx_abort", signal=signal.signal_id)
            if self._tracer.audit:
                self._audit_rx_fail(signal.frame, ReceptionOutcome.ABORTED.value)
            self._listener.on_rx_end(None, ReceptionOutcome.ABORTED)

    def _update_cs(self, total_mw: float | None = None) -> None:
        if total_mw is None:
            total_mw = sum(self._signals.values())
        busy = (
            self._state is PhyState.TX
            or total_mw >= self._cs_threshold_mw
        )
        if busy == self._cs_busy:
            return
        self._cs_busy = busy
        if busy:
            self._listener.on_cs_busy()
        else:
            self._listener.on_cs_idle()

    def _trace(self, event: str, **fields: Any) -> None:
        self._counts[event] += 1
        if self._tracer.active:
            self._tracer.fanout(self._sim.now_ns, self._category, event, fields)

    def _audit_rx_fail(self, phy_frame: PhyFrame, outcome_value: str) -> None:
        """Audit-channel record of a failed reception of a tracked SDU.

        Duck-typed against ``mac_frame.msdu`` so the PHY stays ignorant
        of MAC frame classes: only data frames carry an MSDU, and only
        the last fragment of a burst carries the tracked one.
        """
        msdu = getattr(phy_frame.mac_frame, "msdu", None)
        sdu = getattr(msdu, "sdu_id", -1)
        if sdu < 0:
            return
        self._tracer.emit_audit(
            self._sim.now_ns,
            self._category,
            "sdu_rx_fail",
            sdu=sdu,
            origin=msdu.src,
            outcome=outcome_value,
        )
