"""Frame reception models.

The transceiver records, for the frame it is locked on, a timeline of the
total interference power (every other signal overlapping the reception).
At frame end a :class:`ReceptionModel` turns that timeline into a verdict:

* :class:`SinrThresholdReception` (default, ns-2-style): every field of
  the frame must be received above the sensitivity of its rate and with a
  worst-case SINR above the rate's threshold.
* :class:`BerReception` (ablation): integrates the bit-error probability
  over every (field x interference interval) and draws a Bernoulli.
"""

from __future__ import annotations

import abc
import enum
import random
from dataclasses import dataclass

from repro.phy import ber as ber_models
from repro.phy.kernel import SinrKernel, resolve_kernel
from repro.phy.plans import TransmissionPlan
from repro.phy.radio import RadioParameters
from repro.errors import ConfigurationError
from repro.units import dbm_to_mw, linear_to_db


class ReceptionOutcome(enum.Enum):
    """Why a locked frame was or was not decoded."""

    OK = "ok"
    BELOW_SENSITIVITY = "below-sensitivity"
    SINR_FAILURE = "sinr-failure"
    BER_FAILURE = "ber-failure"
    ABORTED = "aborted"

    @property
    def success(self) -> bool:
        """True only for a clean decode."""
        return self is ReceptionOutcome.OK


@dataclass(frozen=True)
class ReceptionContext:
    """Everything known about one locked frame at its end.

    ``interference_timeline`` is a step function: ``(offset_ns, mw)``
    entries meaning "from this offset (relative to frame start at the
    receiver) the summed power of all other signals is ``mw``".  The
    first entry is always at offset 0.
    """

    plan: TransmissionPlan
    rx_power_dbm: float
    noise_mw: float
    interference_timeline: tuple[tuple[int, float], ...]

    def __post_init__(self) -> None:
        if not self.interference_timeline:
            raise ConfigurationError("interference timeline must not be empty")
        if self.interference_timeline[0][0] != 0:
            raise ConfigurationError("interference timeline must start at offset 0")

    def interference_intervals(
        self, start_ns: int, end_ns: int
    ) -> list[tuple[int, int, float]]:
        """The timeline restricted to [start_ns, end_ns) as intervals."""
        intervals: list[tuple[int, int, float]] = []
        timeline = self.interference_timeline
        for index, (offset, mw) in enumerate(timeline):
            next_offset = (
                timeline[index + 1][0] if index + 1 < len(timeline) else end_ns
            )
            lo = max(offset, start_ns)
            hi = min(next_offset, end_ns)
            if lo < hi:
                intervals.append((lo, hi, mw))
        return intervals


class ReceptionModel(abc.ABC):
    """Decides whether a locked frame decodes."""

    @abc.abstractmethod
    def evaluate(
        self,
        context: ReceptionContext,
        radio: RadioParameters,
        rng: random.Random,
    ) -> ReceptionOutcome:
        """Verdict for one frame."""


class SinrThresholdReception(ReceptionModel):
    """Per-field sensitivity + worst-case SINR thresholds.

    Two implementations produce the verdict:

    * ``kernel="python"`` — the reference loop below, one SINR/dB
      comparison per (field x interference interval);
    * ``kernel="numpy"`` — the batched kernel
      (:class:`repro.phy.kernel.SinrKernel`): per-plan threshold tables
      and a worst-interval reduction (vectorized for long timelines)
      that makes one dB conversion per field.  Bit-identical by
      monotonicity — the golden digests pin it.

    ``kernel=None`` resolves from the ``REPRO_KERNEL`` environment
    variable (default ``auto``: numpy when importable).
    """

    def __init__(self, kernel: str | None = None):
        self._kernel_name = resolve_kernel(kernel)
        self._kernel = SinrKernel() if self._kernel_name == "numpy" else None

    @property
    def kernel(self) -> str:
        """Which implementation this model runs (``python``/``numpy``)."""
        return self._kernel_name

    def evaluate(
        self,
        context: ReceptionContext,
        radio: RadioParameters,
        rng: random.Random,
    ) -> ReceptionOutcome:
        if self._kernel is not None:
            return self._kernel.evaluate(context, radio)
        return self._evaluate_reference(context, radio)

    def _evaluate_reference(
        self, context: ReceptionContext, radio: RadioParameters
    ) -> ReceptionOutcome:
        signal_mw = dbm_to_mw(context.rx_power_dbm)
        for start_ns, end_ns, segment in context.plan.segment_offsets_ns():
            if context.rx_power_dbm < radio.sensitivity_dbm[segment.rate]:
                return ReceptionOutcome.BELOW_SENSITIVITY
            threshold_db = radio.sinr_threshold_db[segment.rate]
            for _, _, interference_mw in context.interference_intervals(
                start_ns, end_ns
            ):
                sinr = signal_mw / (context.noise_mw + interference_mw)
                if linear_to_db(sinr) < threshold_db:
                    return ReceptionOutcome.SINR_FAILURE
        return ReceptionOutcome.OK


class BerReception(ReceptionModel):
    """Bit-error integration over fields and interference intervals.

    The ``numpy`` kernel setting swaps the per-term transcendental math
    for the per-rate lookup tables + exact-key memo in
    :mod:`repro.phy.ber` (:func:`~repro.phy.ber.frame_success_probability_cached`);
    term order and arithmetic are unchanged, so the accumulated product
    — and therefore the single Bernoulli draw — is bit-identical.
    """

    def __init__(self, kernel: str | None = None):
        self._cached = resolve_kernel(kernel) == "numpy"

    def evaluate(
        self,
        context: ReceptionContext,
        radio: RadioParameters,
        rng: random.Random,
    ) -> ReceptionOutcome:
        success_of = (
            ber_models.frame_success_probability_cached
            if self._cached
            else ber_models.frame_success_probability
        )
        signal_mw = dbm_to_mw(context.rx_power_dbm)
        success_probability = 1.0
        for start_ns, end_ns, segment in context.plan.segment_offsets_ns():
            duration = end_ns - start_ns
            if duration <= 0:
                continue
            for lo, hi, interference_mw in context.interference_intervals(
                start_ns, end_ns
            ):
                sinr = signal_mw / (context.noise_mw + interference_mw)
                bits = segment.bits * (hi - lo) / duration
                probability = success_of(segment.rate, sinr, round(bits))
                success_probability *= probability
        if rng.random() < success_probability:
            return ReceptionOutcome.OK
        return ReceptionOutcome.BER_FAILURE
