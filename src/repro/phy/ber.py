"""Bit-error-rate models for the 802.11b modulations.

The DBPSK formula is the textbook non-coherent result.  DQPSK and the two
CCK rates use phenomenological exponential families that reproduce the
well-established *ordering* of required SNR (1 < 2 < 5.5 < 11 Mbps) and a
realistic ~3 dB step per rate; the threshold reception model is the
calibrated default, and these curves back the BER-integration ablation
(DESIGN.md §6, decision 2).

``gamma`` is the per-bit SNR, Eb/N0, obtained from the channel SINR via
the processing gain ``bandwidth / bitrate``.
"""

from __future__ import annotations

import math

from repro.core.params import Rate
from repro.errors import ConfigurationError

#: DSSS channel bandwidth used for the processing gain, Hz.
CHANNEL_BANDWIDTH_HZ = 22e6


def ebn0_from_sinr(sinr_linear: float, rate: Rate) -> float:
    """Per-bit SNR from channel SINR via the processing gain."""
    if sinr_linear < 0:
        raise ConfigurationError(f"SINR must be >= 0, got {sinr_linear}")
    return sinr_linear * CHANNEL_BANDWIDTH_HZ / rate.bps


def ber_dbpsk(gamma: float) -> float:
    """Non-coherent DBPSK (1 Mbps): Pb = 0.5 exp(-gamma)."""
    return 0.5 * math.exp(-min(gamma, 700.0))


def ber_dqpsk(gamma: float) -> float:
    """DQPSK (2 Mbps): ~2.3 dB penalty relative to DBPSK."""
    return 0.5 * math.exp(-min(0.59 * gamma, 700.0))


def ber_cck55(gamma: float) -> float:
    """CCK at 5.5 Mbps: phenomenological, ~3 dB beyond DQPSK."""
    return 0.5 * math.exp(-min(0.30 * gamma, 700.0))


def ber_cck11(gamma: float) -> float:
    """CCK at 11 Mbps: phenomenological, ~3 dB beyond CCK-5.5."""
    return 0.5 * math.exp(-min(0.15 * gamma, 700.0))


_BER_BY_RATE = {
    Rate.MBPS_1: ber_dbpsk,
    Rate.MBPS_2: ber_dqpsk,
    Rate.MBPS_5_5: ber_cck55,
    Rate.MBPS_11: ber_cck11,
}

#: Per-rate lookup tables for the fast BER path: the exponential-family
#: coefficient of each modulation and the (float) bit rate.  Together
#: they replace per-call function dispatch and ``Rate`` enum property
#: reads with two dict reads; the arithmetic stays the exact expression
#: of the reference functions above (``1.0 * gamma == gamma``, and
#: ``float(bps)`` is value-identical to the int), so results are
#: bit-identical.
_COEFF_BY_RATE: dict[Rate, float] = {
    Rate.MBPS_1: 1.0,
    Rate.MBPS_2: 0.59,
    Rate.MBPS_5_5: 0.30,
    Rate.MBPS_11: 0.15,
}
_BPS_BY_RATE: dict[Rate, float] = {rate: float(rate.bps) for rate in _BER_BY_RATE}

#: Memo for :func:`frame_success_probability_cached`.  Saturated
#: scenarios evaluate the same few (rate, SINR, bits) triples tens of
#: thousands of times — identical geometry produces identical float
#: SINRs, so exact-key memoisation hits constantly.  Bounded: cleared
#: wholesale past ``_MEMO_LIMIT`` entries (mobility sweeps can produce
#: unbounded distinct SINRs).
_success_memo: dict[tuple[Rate, float, int], float] = {}
_MEMO_LIMIT = 65536


def ber(rate: Rate, sinr_linear: float) -> float:
    """Bit error rate at a channel SINR for a rate's modulation."""
    gamma = ebn0_from_sinr(sinr_linear, rate)
    return _BER_BY_RATE[rate](gamma)


def frame_success_probability(rate: Rate, sinr_linear: float, bits: int) -> float:
    """Probability that ``bits`` consecutive bits all decode correctly."""
    if bits < 0:
        raise ConfigurationError(f"bits must be >= 0, got {bits}")
    if bits == 0:
        return 1.0
    return (1.0 - ber(rate, sinr_linear)) ** bits


def frame_success_probability_cached(
    rate: Rate, sinr_linear: float, bits: int
) -> float:
    """Memoised, table-driven :func:`frame_success_probability`.

    Bit-identical to the reference: the same minimum/exponential/power
    expression, fed from the per-rate lookup tables instead of function
    dispatch, with results cached by exact ``(rate, sinr, bits)`` key.
    """
    key = (rate, sinr_linear, bits)
    cached = _success_memo.get(key)
    if cached is not None:
        return cached
    if bits < 0:
        raise ConfigurationError(f"bits must be >= 0, got {bits}")
    if sinr_linear < 0:
        raise ConfigurationError(f"SINR must be >= 0, got {sinr_linear}")
    if bits == 0:
        probability = 1.0
    else:
        gamma = sinr_linear * CHANNEL_BANDWIDTH_HZ / _BPS_BY_RATE[rate]
        error = 0.5 * math.exp(-min(_COEFF_BY_RATE[rate] * gamma, 700.0))
        probability = (1.0 - error) ** bits
    if len(_success_memo) >= _MEMO_LIMIT:
        _success_memo.clear()
    _success_memo[key] = probability
    return probability
