"""IEEE 802.11b physical layer.

* :mod:`repro.phy.radio` — radio front-end parameters (transmit power,
  per-rate sensitivities, carrier-sense threshold), with presets
  calibrated to the paper's Table 3 and to ns-2's classic defaults.
* :mod:`repro.phy.plans` — transmission plans: the per-field (PLCP / MAC
  header / payload) rate-and-duration schedule of a frame.
* :mod:`repro.phy.ber` — bit-error-rate models per modulation.
* :mod:`repro.phy.reception` — frame reception models (SINR threshold or
  BER integration over interference segments).
* :mod:`repro.phy.transceiver` — the half-duplex PHY state machine that
  connects the MAC to the medium.
"""

from repro.phy.radio import RadioParameters
from repro.phy.plans import Segment, TransmissionPlan, control_frame_plan, data_frame_plan
from repro.phy.reception import (
    BerReception,
    ReceptionContext,
    ReceptionModel,
    ReceptionOutcome,
    SinrThresholdReception,
)
from repro.phy.transceiver import PhyListener, PhyState, Transceiver

__all__ = [
    "BerReception",
    "PhyListener",
    "PhyState",
    "RadioParameters",
    "ReceptionContext",
    "ReceptionModel",
    "ReceptionOutcome",
    "Segment",
    "SinrThresholdReception",
    "TransmissionPlan",
    "Transceiver",
    "control_frame_plan",
    "data_frame_plan",
]
