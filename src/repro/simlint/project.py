"""Whole-program layer: import graph, signatures and unit inference.

PR 3's linter reasons about one :class:`~repro.simlint.checker.ParsedModule`
at a time, which is enough for syntactic hazards (``id()`` keys, stray
``random`` imports) but blind to the bug classes PR 7 introduced: a
nanosecond value flowing into a microsecond parameter two modules away,
or a dBm level added to a milliwatt total after a conversion was lost in
a refactor.  This module gives rules a project-wide view:

* :func:`summarize_module` distils one parsed module into a picklable
  :class:`ModuleSummary` — resolved imports, module-level function
  signatures with *inferred unit annotations*, and every call site with
  the inferred units of its arguments.  Being plain data, summaries
  travel through the ``--jobs`` process pool and the content-hash cache.
* :class:`ProjectGraph` joins the summaries of every linted module and
  resolves call references through ``import`` / ``from … import``
  (including relative forms) to the signature of the callee, so rules
  can check cross-module calls mechanically.
* :class:`UnitInferencer` is the dataflow engine behind both: a forward
  pass per scope that seeds units from the repo's naming contract
  (``*_ns``/``*_us``/``*_ms``/``*_s`` for time, ``*_dbm``/``*_db``/
  ``*_mw`` for power, ``*_bps``/``*_mbps`` for rate), treats the
  ``repro.units`` converters as unit casts (``us_to_ns(x)`` yields ns
  and *demands* µs), and propagates units through assignments,
  arithmetic, returns and call arguments.  Mixing incompatible units is
  reported through the SL7xx rules in
  :mod:`repro.simlint.rules.units_flow`.

The inference is deliberately conservative: a unit is only ever
attached to a value the naming contract or a converter vouches for, and
rules stay silent whenever either side of an operation is unknown.
Named per-unit constants (``NS_PER_S`` and friends) read as their
target unit, so ``duration_ns / NS_PER_S`` is a recognised conversion
while ``duration_ns * 1e-9`` is not — magic-number conversions are
exactly what the rules exist to flag.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.simlint.checker import Finding, ParsedModule, Waiver

#: Recognised unit suffixes, grouped by dimension.
TIME_UNITS = ("ns", "us", "ms", "s")
LOG_POWER_UNITS = ("dbm", "db")
LINEAR_POWER_UNITS = ("mw",)
RATE_UNITS = ("bps", "mbps")

#: Every unit the naming contract recognises.
UNITS = frozenset(TIME_UNITS + LOG_POWER_UNITS + LINEAR_POWER_UNITS + RATE_UNITS)

#: Pseudo-unit for dimensionless values (bare literals, ratios).
UNITLESS = "1"

_CONVERTER_RE = re.compile(r"^([a-z]+)_to_([a-z]+)$")


def unit_from_name(name: str) -> str | None:
    """The unit a ``*_ns``-style suffixed name declares, if any.

    Only an underscore-separated suffix counts: ``delay_us`` is µs but a
    bare ``s`` or ``ns`` variable is not a unit (single-letter names are
    far too common for loop variables and strings).
    """
    head, sep, tail = name.lower().rpartition("_")
    if sep and head and tail in UNITS:
        return tail
    return None


def converter_units(name: str) -> tuple[str | None, str | None] | None:
    """``(from_unit, to_unit)`` when ``name`` is an ``X_to_Y`` converter.

    Matches the :mod:`repro.units` naming scheme (``us_to_ns``,
    ``dbm_to_mw``, ``db_to_linear``, …).  A side that is not a known
    unit (``linear``) comes back as ``None`` — the cast still conveys
    the other side.
    """
    match = _CONVERTER_RE.match(name.lower())
    if match is None:
        return None
    source, target = match.group(1), match.group(2)
    if source not in UNITS and target not in UNITS:
        return None
    return (
        source if source in UNITS else None,
        target if target in UNITS else None,
    )


def dimension(unit: str | None) -> str | None:
    """The dimension class of a unit (``time``/``log``/``linear``/``rate``)."""
    if unit in TIME_UNITS:
        return "time"
    if unit in LOG_POWER_UNITS:
        return "log"
    if unit in LINEAR_POWER_UNITS:
        return "linear"
    if unit in RATE_UNITS:
        return "rate"
    return None


def unit_label(unit: str) -> str:
    """Human spelling of a unit for messages (``dbm`` → ``dBm``)."""
    return {
        "ns": "ns",
        "us": "µs",
        "ms": "ms",
        "s": "s",
        "dbm": "dBm",
        "db": "dB",
        "mw": "mW",
        "bps": "bit/s",
        "mbps": "Mbit/s",
    }.get(unit, unit)


def mixing_violation(left: str | None, right: str | None) -> tuple[str, str] | None:
    """``(rule_id, description)`` when combining two units additively is wrong.

    Additive here means ``+``/``-``/comparison/assignment — contexts
    where both operands must carry the same unit.  Valid mixed-unit
    algebra is excused: dBm ± dB applies a gain, dBm − dBm yields a dB
    ratio.  Unknown or dimensionless sides never fire.
    """
    if left in (None, UNITLESS) or right in (None, UNITLESS):
        return None
    if left == right:
        return None
    left_dim, right_dim = dimension(left), dimension(right)
    if {left_dim, right_dim} == {"log", "linear"}:
        return (
            "SL702",
            f"{unit_label(left)} (logarithmic) combined with "
            f"{unit_label(right)} (linear power)",
        )
    if left_dim == "log" and right_dim == "log":
        # dbm/db pairs: handled by the caller for the one bad case
        # (dBm + dBm); everything else is legitimate link-budget algebra.
        return None
    return (
        "SL701",
        f"{unit_label(left)} combined with {unit_label(right)}",
    )


# --------------------------------------------------------------------------
# Summary data model (all picklable, all hashable building blocks)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ParamInfo:
    """One function parameter and the unit its name declares."""

    name: str
    unit: str | None


@dataclass(frozen=True)
class FunctionSig:
    """One function definition, with inferred unit annotations."""

    module: str
    qualname: str
    name: str
    lineno: int
    params: tuple[ParamInfo, ...]
    kwonly: tuple[ParamInfo, ...]
    has_vararg: bool
    return_unit: str | None

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")

    def param_named(self, name: str) -> ParamInfo | None:
        for param in self.params + self.kwonly:
            if param.name == name:
                return param
        return None


@dataclass(frozen=True)
class ArgInfo:
    """One call argument: inferred unit plus literal kind."""

    unit: str | None
    #: ``"float"`` / ``"int"`` for bare numeric literals, else ``"expr"``.
    kind: str


@dataclass(frozen=True)
class CallSite:
    """One call whose callee is a plain (possibly dotted) name."""

    callee: str
    line: int
    col: int
    args: tuple[ArgInfo, ...]
    kwargs: tuple[tuple[str, ArgInfo], ...]
    has_star: bool


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project pass needs to know about one module."""

    module: str
    relpath: str
    is_package: bool
    #: ``local name -> dotted target`` for every import binding.
    imports: tuple[tuple[str, str], ...]
    functions: tuple[FunctionSig, ...]
    calls: tuple[CallSite, ...]
    waivers: tuple[Waiver, ...]
    #: 1-based line numbers that are blank or comment-only — enough to
    #: re-run waiver matching without the source text.
    soft_lines: frozenset[int]


def module_name_for(relpath: str) -> tuple[str, bool]:
    """``(dotted module name, is_package)`` for a root-relative path."""
    parts = relpath.replace("\\", "/").split("/")
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    is_package = parts[-1] == "__init__"
    if is_package:
        parts = parts[:-1]
    return ".".join(part for part in parts if part), is_package


def extract_imports(
    tree: ast.Module, module: str, is_package: bool
) -> tuple[tuple[str, str], ...]:
    """Resolve every import statement to ``(local name, dotted target)``."""
    bindings: list[tuple[str, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    bindings.append((alias.asname, alias.name))
                else:
                    head = alias.name.split(".")[0]
                    bindings.append((head, head))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: level 1 is the containing package
                # (the module itself when it is an ``__init__``).
                anchor_parts = module.split(".") if module else []
                drop = node.level - (1 if is_package else 0)
                if drop:
                    anchor_parts = anchor_parts[: len(anchor_parts) - drop]
                base_parts = anchor_parts + (
                    node.module.split(".") if node.module else []
                )
            else:
                base_parts = node.module.split(".") if node.module else []
            base = ".".join(base_parts)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                target = f"{base}.{alias.name}" if base else alias.name
                bindings.append((local, target))
    return tuple(bindings)


def waiver_for_summary(summary: ModuleSummary, finding: Finding) -> Waiver | None:
    """Mirror of :meth:`ParsedModule.waiver_for` that works off a summary.

    Needed so project-level findings (computed after the per-file pass,
    possibly from cached or pool-returned summaries with no live source)
    still honour inline waivers.
    """
    for waiver in summary.waivers:
        if waiver.line == finding.line and waiver.covers(finding.rule_id):
            return waiver
    best: Waiver | None = None
    for waiver in summary.waivers:
        if not waiver.standalone or not waiver.covers(finding.rule_id):
            continue
        if waiver.line >= finding.line:
            continue
        between = range(waiver.line + 1, finding.line)
        if all(line in summary.soft_lines for line in between):
            if best is None or waiver.line > best.line:
                best = waiver
    return best


# --------------------------------------------------------------------------
# Unit inference
# --------------------------------------------------------------------------


@dataclass
class InferenceResult:
    """What one module-level inference pass produces."""

    functions: list[FunctionSig] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    #: ``(rule_id, line, col, message)`` — materialised into findings by
    #: the SL7xx rules so this module stays independent of rule classes.
    violations: list[tuple[str, int, int, str]] = field(default_factory=list)


class UnitInferencer:
    """Forward-pass unit inference over one module.

    One instance per module; :meth:`run` walks the module body and every
    function in source order, keeping a per-scope ``name -> unit``
    environment.  Declared suffixes win over inferred values (assigning
    a µs expression to ``deadline_ns`` keeps the target ns — and flags
    the mix).
    """

    def __init__(self, module_tree: ast.Module, module_name: str):
        self._tree = module_tree
        self._module = module_name
        self._module_env: dict[str, str | None] = {}
        self._result = InferenceResult()

    def run(self) -> InferenceResult:
        self._process_body(self._tree.body, self._module_env, qualprefix="")
        return self._result

    # -- statements --------------------------------------------------------

    def _process_body(
        self,
        body: Sequence[ast.stmt],
        env: dict[str, str | None],
        qualprefix: str,
    ) -> list[str | None]:
        returns: list[str | None] = []
        for stmt in body:
            returns.extend(self._process_stmt(stmt, env, qualprefix))
        return returns

    def _process_stmt(
        self,
        stmt: ast.stmt,
        env: dict[str, str | None],
        qualprefix: str,
    ) -> list[str | None]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._process_function(stmt, qualprefix)
            return []
        if isinstance(stmt, ast.ClassDef):
            class_prefix = (
                f"{qualprefix}.{stmt.name}" if qualprefix else stmt.name
            )
            class_env: dict[str, str | None] = dict(self._module_env)
            self._process_body(stmt.body, class_env, class_prefix)
            return []
        if isinstance(stmt, ast.Assign):
            unit = self._unit_of(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, unit, env, stmt.value)
            return []
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                unit = self._unit_of(stmt.value, env)
                self._bind_target(stmt.target, unit, env, stmt.value)
            return []
        if isinstance(stmt, ast.AugAssign):
            value_unit = self._unit_of(stmt.value, env)
            target_unit = self._target_unit(stmt.target, env)
            if isinstance(stmt.op, (ast.Add, ast.Sub)):
                self._check_mix(
                    target_unit, value_unit, stmt.value, "augmented assignment"
                )
            return []
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                return [None]
            return [self._unit_of(stmt.value, env)]
        # Generic statement: infer over expression children, recurse into
        # statement-list children (If/For/While/With/Try bodies share the
        # enclosing environment — the pass is flow-insensitive).
        returns: list[str | None] = []
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._unit_of(child, env)
            elif isinstance(child, ast.stmt):
                returns.extend(self._process_stmt(child, env, qualprefix))
            elif isinstance(child, (ast.excepthandler,)):
                returns.extend(self._process_body(child.body, env, qualprefix))
            elif isinstance(child, (ast.withitem,)):
                self._unit_of(child.context_expr, env)
        return returns

    def _process_function(
        self, fn: ast.FunctionDef | ast.AsyncFunctionDef, qualprefix: str
    ) -> None:
        env: dict[str, str | None] = dict(self._module_env)
        params: list[ParamInfo] = []
        for arg in fn.args.posonlyargs + fn.args.args:
            unit = unit_from_name(arg.arg)
            env[arg.arg] = unit
            params.append(ParamInfo(name=arg.arg, unit=unit))
        kwonly: list[ParamInfo] = []
        for arg in fn.args.kwonlyargs:
            unit = unit_from_name(arg.arg)
            env[arg.arg] = unit
            kwonly.append(ParamInfo(name=arg.arg, unit=unit))
        for default in list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]:
            self._unit_of(default, env)
        return_units = self._process_body(fn.body, env, self._qual(qualprefix, fn.name))
        declared = unit_from_name(fn.name)
        inferred = self._common_unit(return_units)
        if declared is not None and inferred not in (None, UNITLESS, declared):
            violation = mixing_violation(declared, inferred)
            if violation is not None:
                rule_id, _ = violation
                assert inferred is not None
                self._result.violations.append(
                    (
                        rule_id,
                        fn.lineno,
                        fn.col_offset,
                        f"function {fn.name!r} declares {unit_label(declared)} "
                        f"by suffix but returns {unit_label(inferred)} values",
                    )
                )
        qualname = self._qual(qualprefix, fn.name)
        self._result.functions.append(
            FunctionSig(
                module=self._module,
                qualname=qualname,
                name=fn.name,
                lineno=fn.lineno,
                params=tuple(params),
                kwonly=tuple(kwonly),
                has_vararg=fn.args.vararg is not None or fn.args.kwarg is not None,
                return_unit=declared if declared is not None else inferred,
            )
        )

    @staticmethod
    def _qual(prefix: str, name: str) -> str:
        return f"{prefix}.{name}" if prefix else name

    @staticmethod
    def _common_unit(units: Sequence[str | None]) -> str | None:
        known = {unit for unit in units if unit not in (None, UNITLESS)}
        if len(known) == 1:
            return next(iter(known))
        return None

    # -- binding and mixing ------------------------------------------------

    def _bind_target(
        self,
        target: ast.expr,
        value_unit: str | None,
        env: dict[str, str | None],
        value: ast.expr,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None, env, value)
            return
        declared: str | None = None
        name: str | None = None
        if isinstance(target, ast.Name):
            declared = unit_from_name(target.id)
            name = target.id
        elif isinstance(target, ast.Attribute):
            declared = unit_from_name(target.attr)
        if declared is not None:
            self._check_mix(declared, value_unit, value, "assignment")
        if name is not None:
            env[name] = declared if declared is not None else value_unit

    def _target_unit(self, target: ast.expr, env: dict[str, str | None]) -> str | None:
        if isinstance(target, ast.Name):
            declared = unit_from_name(target.id)
            return declared if declared is not None else env.get(target.id)
        if isinstance(target, ast.Attribute):
            return unit_from_name(target.attr)
        return None

    def _check_mix(
        self,
        left: str | None,
        right: str | None,
        node: ast.expr,
        context: str,
    ) -> None:
        violation = mixing_violation(left, right)
        if violation is None:
            return
        rule_id, description = violation
        self._result.violations.append(
            (
                rule_id,
                node.lineno,
                node.col_offset,
                f"{description} in {context}; convert via repro.units at the "
                "boundary",
            )
        )

    # -- expressions -------------------------------------------------------

    def _unit_of(self, node: ast.expr, env: dict[str, str | None]) -> str | None:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return UNITLESS
        if isinstance(node, ast.Name):
            declared = unit_from_name(node.id)
            if declared is not None:
                return declared
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            self._unit_of(node.value, env)
            return unit_from_name(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self._unit_of(node.operand, env)
        if isinstance(node, ast.BinOp):
            return self._binop_unit(node, env)
        if isinstance(node, ast.Compare):
            self._compare_units(node, env)
            return None
        if isinstance(node, ast.Call):
            return self._call_unit(node, env)
        if isinstance(node, ast.IfExp):
            self._unit_of(node.test, env)
            body = self._unit_of(node.body, env)
            orelse = self._unit_of(node.orelse, env)
            return body if body == orelse else None
        # Generic fallthrough: visit every child expression (so call
        # sites and mixes nested in comprehensions, f-strings, subscripts
        # and the like are still seen) but claim no unit.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._unit_of(child, env)
            elif isinstance(child, ast.comprehension):
                self._unit_of(child.iter, env)
                for condition in child.ifs:
                    self._unit_of(condition, env)
        return None

    def _binop_unit(self, node: ast.BinOp, env: dict[str, str | None]) -> str | None:
        left = self._unit_of(node.left, env)
        right = self._unit_of(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if (
                isinstance(node.op, ast.Add)
                and left == "dbm"
                and right == "dbm"
            ):
                self._result.violations.append(
                    (
                        "SL702",
                        node.lineno,
                        node.col_offset,
                        "adding two dBm values is not physical (dBm is "
                        "logarithmic); convert to mW to sum powers",
                    )
                )
                return None
            self._check_mix(left, right, node, "arithmetic")
            if left == right:
                return left
            if left in (None, UNITLESS):
                return right if left == UNITLESS else None
            if right in (None, UNITLESS):
                return left if right == UNITLESS else None
            return None
        if isinstance(node.op, ast.Mult):
            if left == UNITLESS and right not in (None, UNITLESS):
                return right
            if right == UNITLESS and left not in (None, UNITLESS):
                return left
            if left == UNITLESS and right == UNITLESS:
                return UNITLESS
            return None
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            if left not in (None, UNITLESS) and right == UNITLESS:
                return left
            if left == right and left not in (None, UNITLESS):
                return UNITLESS
            if left == UNITLESS and right == UNITLESS:
                return UNITLESS
            return None
        return None

    def _compare_units(self, node: ast.Compare, env: dict[str, str | None]) -> None:
        spine = [node.left, *node.comparators]
        units = [self._unit_of(expr, env) for expr in spine]
        for index in range(len(units) - 1):
            self._check_mix(
                units[index], units[index + 1], spine[index + 1], "comparison"
            )

    def _call_unit(self, node: ast.Call, env: dict[str, str | None]) -> str | None:
        callee = _callee_ref(node.func)
        arg_infos: list[ArgInfo] = []
        has_star = bool(node.keywords) and any(
            keyword.arg is None for keyword in node.keywords
        )
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                has_star = True
                self._unit_of(arg.value, env)
                continue
            arg_infos.append(ArgInfo(unit=self._unit_of(arg, env), kind=_literal_kind(arg)))
        kwarg_infos: list[tuple[str, ArgInfo]] = []
        for keyword in node.keywords:
            if keyword.arg is None:
                self._unit_of(keyword.value, env)
                continue
            kwarg_infos.append(
                (
                    keyword.arg,
                    ArgInfo(
                        unit=self._unit_of(keyword.value, env),
                        kind=_literal_kind(keyword.value),
                    ),
                )
            )
        if isinstance(node.func, (ast.Lambda, ast.Call, ast.Subscript)):
            self._unit_of(node.func, env)
        if callee is not None:
            self._result.calls.append(
                CallSite(
                    callee=callee,
                    line=node.lineno,
                    col=node.col_offset,
                    args=tuple(arg_infos),
                    kwargs=tuple(kwarg_infos),
                    has_star=has_star,
                )
            )
        func_name = callee.rpartition(".")[2] if callee is not None else None
        if func_name is not None:
            cast = converter_units(func_name)
            if cast is not None:
                source, target = cast
                if (
                    source is not None
                    and len(arg_infos) == 1
                    and arg_infos[0].unit not in (None, UNITLESS, source)
                ):
                    argument_unit = arg_infos[0].unit
                    assert argument_unit is not None
                    hint = (
                        "already in the target unit — double conversion"
                        if argument_unit == target
                        else "not in the converter's input unit"
                    )
                    self._result.violations.append(
                        (
                            "SL703",
                            node.lineno,
                            node.col_offset,
                            f"{func_name}() applied to a "
                            f"{unit_label(argument_unit)} value ({hint})",
                        )
                    )
                return target
            declared = unit_from_name(func_name)
            if declared is not None:
                return declared
        return None


def _callee_ref(func: ast.expr) -> str | None:
    """Dotted name of a call target built purely from Names, else None."""
    parts: list[str] = []
    current = func
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _literal_kind(node: ast.expr) -> str:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _literal_kind(node.operand)
    if isinstance(node, ast.Constant) and not isinstance(node.value, bool):
        if isinstance(node.value, float):
            return "float"
        if isinstance(node.value, int):
            return "int"
    return "expr"


def _soft_lines(module: ParsedModule) -> frozenset[int]:
    soft: set[int] = set()
    for number, text in enumerate(module.lines, start=1):
        stripped = text.strip()
        if not stripped or stripped.startswith("#"):
            soft.add(number)
    return frozenset(soft)


def _inference_for(module: ParsedModule) -> InferenceResult:
    """The (memoised) unit-inference result for one parsed module.

    Three SL7xx rules and the summariser all consume the same pass;
    caching it on the module keeps lint wall-clock flat.
    """
    cached = module.__dict__.get("_unit_inference")
    if cached is None:
        name, _ = module_name_for(module.relpath)
        cached = UnitInferencer(module.tree, name).run()
        module.__dict__["_unit_inference"] = cached
    return cached


def summarize_module(module: ParsedModule) -> ModuleSummary:
    """Distil one parsed module into its picklable project summary."""
    name, is_package = module_name_for(module.relpath)
    inference = _inference_for(module)
    return ModuleSummary(
        module=name,
        relpath=module.relpath,
        is_package=is_package,
        imports=extract_imports(module.tree, name, is_package),
        functions=tuple(inference.functions),
        calls=tuple(inference.calls),
        waivers=module.waivers,
        soft_lines=_soft_lines(module),
    )


def local_unit_violations(module: ParsedModule) -> list[tuple[str, int, int, str]]:
    """The SL701/702/703 raw violations for one module (no project view)."""
    return _inference_for(module).violations


class ProjectGraph:
    """The joined view over every module summary in one lint run."""

    def __init__(self, summaries: Mapping[str, ModuleSummary]):
        #: module name -> summary
        self.summaries: dict[str, ModuleSummary] = dict(summaries)
        #: fully-qualified ``pkg.mod.func`` -> signature (module level only)
        self.functions: dict[str, FunctionSig] = {}
        for summary in self.summaries.values():
            for sig in summary.functions:
                if sig.qualname == sig.name:  # module-level only
                    self.functions[f"{summary.module}.{sig.name}"] = sig

    @classmethod
    def from_modules(cls, modules: Sequence[ParsedModule]) -> "ProjectGraph":
        return cls(
            {
                summary.module: summary
                for summary in (summarize_module(module) for module in modules)
            }
        )

    def resolve_call(
        self, summary: ModuleSummary, callee: str
    ) -> FunctionSig | None:
        """The signature a dotted call reference names, through imports."""
        parts = callee.split(".")
        imports = dict(summary.imports)
        if parts[0] in imports:
            target = ".".join([imports[parts[0]], *parts[1:]])
        elif len(parts) == 1:
            target = f"{summary.module}.{callee}" if summary.module else callee
        else:
            return None
        sig = self.functions.get(target)
        if sig is not None:
            return sig
        # One re-export hop: ``from repro import units`` then
        # ``units.us_to_ns`` resolves through the package summary.
        if len(parts) > 1:
            head, _, rest = target.rpartition(".")
            package = self.summaries.get(head)
            if package is not None and package.is_package:
                for local, reexport in package.imports:
                    if local == rest:
                        return self.functions.get(reexport)
        return None

    def iter_call_bindings(
        self,
    ) -> Iterator[tuple[ModuleSummary, CallSite, FunctionSig, ParamInfo, ArgInfo]]:
        """Every ``(caller, call, callee, parameter, argument)`` binding.

        Positional arguments are matched in order; calls with star
        arguments or arity the signature cannot hold are skipped rather
        than guessed at.  Keyword arguments match by name.
        """
        for summary in self.summaries.values():
            for call in summary.calls:
                sig = self.resolve_call(summary, call.callee)
                if sig is None:
                    continue
                if not call.has_star and len(call.args) <= len(sig.params):
                    for param, arg in zip(sig.params, call.args):
                        yield summary, call, sig, param, arg
                for name, arg in call.kwargs:
                    param = sig.param_named(name)
                    if param is not None:
                        yield summary, call, sig, param, arg
