"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what GitHub code scanning ingests: CI uploads the document via
``github/codeql-action/upload-sarif`` and findings annotate the PR diff
inline.  One run object carries the whole lint pass:

* every rule (the registry's families plus the checker's own
  SL001/SL002/SL003) is declared in ``tool.driver.rules`` so viewers can
  show summaries without guessing;
* active findings become ``results`` at level ``error`` (the lint gate
  fails on any active finding, so "error" is honest);
* waived and baselined findings are emitted too — GitHub hides them —
  with a ``suppressions`` entry (``inSource`` for inline waivers,
  ``external`` for baseline entries) so an audit can still see what was
  accepted and why.

URIs are the checker's root-relative POSIX paths, which is exactly what
``upload-sarif`` expects relative to the repository checkout.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

from repro.simlint.checker import Finding

#: The schema the document declares; tests validate against a vendored
#: subset of it (the full OASIS schema is not shipped in the image).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Findings the checker emits itself, outside the rule registry.
CHECKER_RULES: Mapping[str, str] = {
    "SL001": "waiver comment without a '-- justification' suffix",
    "SL002": "file cannot be parsed",
    "SL003": "stale waiver: suppresses no finding in the current run",
}


def _rule_descriptors(
    rule_summaries: Mapping[str, str]
) -> list[dict[str, object]]:
    merged = dict(CHECKER_RULES)
    merged.update(rule_summaries)
    return [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, summary in sorted(merged.items())
    ]


def _result(
    finding: Finding,
    rule_index: Mapping[str, int],
    suppression_kind: str | None,
) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if suppression_kind is not None:
        suppression: dict[str, object] = {"kind": suppression_kind}
        if finding.waiver_reason:
            suppression["justification"] = finding.waiver_reason
        result["suppressions"] = [suppression]
    return result


def render_sarif(
    active: Sequence[Finding],
    waived: Sequence[Finding],
    baselined: Sequence[Finding],
    rule_summaries: Mapping[str, str],
    tool_version: str = "2.0.0",
) -> str:
    """The SARIF 2.1.0 document for one lint run."""
    rules = _rule_descriptors(rule_summaries)
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}  # type: ignore[misc]
    results = [_result(finding, rule_index, None) for finding in active]
    results.extend(
        _result(finding, rule_index, "inSource") for finding in waived
    )
    results.extend(
        _result(finding, rule_index, "external") for finding in baselined
    )
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": (
                            "https://github.com/repro80211/repro80211"
                        ),
                        "semanticVersion": tool_version,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2)
