"""Rendering and exit codes for ``repro lint``.

Text output is one ``path:line:col: SLnnn message`` line per finding —
the grep/editor-jump format — followed by a one-line summary.  JSON
output is a stable machine-readable document (schema version 1) that CI
uploads as an artifact, including the spec-constant table the SL5xx
rule extracted so a red diff shows *which* constant drifted.

Exit codes: 0 — clean (every finding waived or baselined); 1 — at
least one active finding; 2 — usage or internal error (the CLI's
job to raise).
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.simlint.checker import Finding

#: Exit codes of the ``lint`` command.
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def exit_code(active_findings: Sequence[Finding]) -> int:
    """0 when nothing actionable remains, 1 otherwise."""
    return EXIT_FINDINGS if active_findings else EXIT_CLEAN


def summarise(
    active: Sequence[Finding],
    waived: Sequence[Finding],
    baselined: Sequence[Finding],
    files_checked: int,
) -> str:
    """The one-line human summary closing the text report."""
    by_rule = Counter(finding.rule_id for finding in active)
    parts = [f"{len(active)} finding{'s' if len(active) != 1 else ''}"]
    if by_rule:
        details = ", ".join(
            f"{rule} ×{count}" for rule, count in sorted(by_rule.items())
        )
        parts[0] += f" ({details})"
    if waived:
        parts.append(f"{len(waived)} waived")
    if baselined:
        parts.append(f"{len(baselined)} baselined")
    parts.append(f"{files_checked} files checked")
    return "simlint: " + ", ".join(parts)


def render_text(
    active: Sequence[Finding],
    waived: Sequence[Finding],
    baselined: Sequence[Finding],
    files_checked: int,
    verbose_waivers: bool = False,
) -> str:
    """The full text report."""
    lines = [
        f"{finding.location()}: {finding.rule_id} {finding.message}"
        for finding in active
    ]
    if verbose_waivers:
        for finding in waived:
            lines.append(
                f"{finding.location()}: {finding.rule_id} waived "
                f"-- {finding.waiver_reason}"
            )
    lines.append(summarise(active, waived, baselined, files_checked))
    return "\n".join(lines)


def _finding_payload(finding: Finding) -> dict[str, object]:
    payload: dict[str, object] = {
        "rule": finding.rule_id,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
    }
    if finding.waived:
        payload["waived"] = True
        payload["waiver_reason"] = finding.waiver_reason
    return payload


def render_json(
    active: Sequence[Finding],
    waived: Sequence[Finding],
    baselined: Sequence[Finding],
    files_checked: int,
    spec_constants: dict[str, object] | None = None,
) -> str:
    """The machine-readable report CI archives."""
    document = {
        "version": 1,
        "summary": {
            "active": len(active),
            "waived": len(waived),
            "baselined": len(baselined),
            "files_checked": files_checked,
            "by_rule": dict(
                sorted(Counter(f.rule_id for f in active).items())
            ),
        },
        "findings": [_finding_payload(finding) for finding in active],
        "waivers": [_finding_payload(finding) for finding in waived],
        "baselined": [_finding_payload(finding) for finding in baselined],
    }
    if spec_constants is not None:
        document["spec_constants"] = {
            key: list(value) if isinstance(value, tuple) else value
            for key, value in sorted(spec_constants.items())
        }
    return json.dumps(document, indent=2)
