"""Content-hash keyed cache of per-file lint results.

The whole-program pass re-parses every file under ``src/repro`` on each
run; almost all of them are unchanged between runs.  This cache keys one
:class:`~repro.simlint.checker.FileResult` — module-rule findings plus
the module's project-graph summary — on the SHA-256 of the file's bytes
joined with a version tag hashing the linter's own sources, so editing
any rule (or the checker, or this file) invalidates every entry at once.
Entries are JSON (one file per key, written atomically), mirroring the
sweep cache in :mod:`repro.parallel.cache`.

Project rules and SL003 are *not* cached: they depend on every file in
the run, and re-running them over cached summaries is cheap — the cache
exists to skip parsing and the per-file pass, which dominate.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

from repro.simlint.checker import FileResult, Finding, Waiver
from repro.simlint.project import (
    ArgInfo,
    CallSite,
    FunctionSig,
    ModuleSummary,
    ParamInfo,
)

_version_tag_cache: str | None = None


def default_cache_dir() -> Path:
    """Cache root: env override, else ``~/.cache/repro-simlint``."""
    override = os.environ.get("REPRO_SIMLINT_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-simlint"


def rules_version_tag() -> str:
    """Content hash of the linter's own sources (computed once per process)."""
    global _version_tag_cache
    if _version_tag_cache is None:
        package_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for file in sorted(package_root.rglob("*.py")):
            digest.update(str(file.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(file.read_bytes())
            digest.update(b"\0")
        _version_tag_cache = digest.hexdigest()[:16]
    return _version_tag_cache


# -- JSON round-trip --------------------------------------------------------


def _summary_to_json(summary: ModuleSummary) -> dict[str, object]:
    payload = asdict(summary)
    payload["soft_lines"] = sorted(summary.soft_lines)
    return payload


def _summary_from_json(payload: dict[str, object]) -> ModuleSummary:
    def _pairs(items: object) -> tuple[tuple[str, str], ...]:
        return tuple((str(a), str(b)) for a, b in items)  # type: ignore[union-attr]

    functions = tuple(
        FunctionSig(
            module=f["module"],
            qualname=f["qualname"],
            name=f["name"],
            lineno=f["lineno"],
            params=tuple(ParamInfo(**p) for p in f["params"]),
            kwonly=tuple(ParamInfo(**p) for p in f["kwonly"]),
            has_vararg=f["has_vararg"],
            return_unit=f["return_unit"],
        )
        for f in payload["functions"]  # type: ignore[union-attr]
    )
    calls = tuple(
        CallSite(
            callee=c["callee"],
            line=c["line"],
            col=c["col"],
            args=tuple(ArgInfo(**a) for a in c["args"]),
            kwargs=tuple((name, ArgInfo(**a)) for name, a in c["kwargs"]),
            has_star=c["has_star"],
        )
        for c in payload["calls"]  # type: ignore[union-attr]
    )
    waivers = tuple(
        Waiver(
            line=w["line"],
            rule_ids=tuple(w["rule_ids"]),
            reason=w["reason"],
            standalone=w["standalone"],
        )
        for w in payload["waivers"]  # type: ignore[union-attr]
    )
    return ModuleSummary(
        module=str(payload["module"]),
        relpath=str(payload["relpath"]),
        is_package=bool(payload["is_package"]),
        imports=_pairs(payload["imports"]),
        functions=functions,
        calls=calls,
        waivers=waivers,
        soft_lines=frozenset(int(n) for n in payload["soft_lines"]),  # type: ignore[union-attr]
    )


def result_to_json(result: FileResult) -> dict[str, object]:
    return {
        "relpath": result.relpath,
        "findings": [asdict(finding) for finding in result.findings],
        "summary": (
            _summary_to_json(result.summary) if result.summary is not None else None
        ),
        "used_waiver_lines": list(result.used_waiver_lines),
    }


def result_from_json(payload: dict[str, object]) -> FileResult:
    summary = payload.get("summary")
    return FileResult(
        relpath=str(payload["relpath"]),
        findings=tuple(
            Finding(**finding) for finding in payload["findings"]  # type: ignore[union-attr]
        ),
        summary=(
            _summary_from_json(summary)  # type: ignore[arg-type]
            if summary is not None
            else None
        ),
        used_waiver_lines=tuple(
            int(line) for line in payload["used_waiver_lines"]  # type: ignore[union-attr]
        ),
    )


class LintCache:
    """One JSON file per ``(content hash, linter version)`` key."""

    def __init__(self, directory: Path):
        self._directory = Path(directory)
        self._tag = rules_version_tag()

    @property
    def directory(self) -> Path:
        return self._directory

    @staticmethod
    def content_hash(path: Path) -> str:
        """SHA-256 of the file's bytes — the cache key's file half."""
        return hashlib.sha256(path.read_bytes()).hexdigest()

    def _entry_path(self, content_hash: str) -> Path:
        return self._directory / f"{self._tag}-{content_hash}.json"

    def get(self, content_hash: str) -> FileResult | None:
        """The cached result for a content hash, or None on any miss."""
        entry = self._entry_path(content_hash)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            return result_from_json(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, content_hash: str, result: FileResult) -> None:
        """Persist one result (atomic rename; concurrent lints may race)."""
        entry = self._entry_path(content_hash)
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
            scratch = entry.with_suffix(f".tmp.{os.getpid()}")
            scratch.write_text(
                json.dumps(result_to_json(result), sort_keys=True),
                encoding="utf-8",
            )
            os.replace(scratch, entry)
        except OSError:  # pragma: no cover - cache is best-effort
            pass
