"""SL2xx — ordering: no ``id()`` keys, no set-order-dependent control flow.

Two distinct hazards share this family:

* **``id()`` as identity** (SL201).  CPython reuses object ids the
  moment the old object is collected, so an ``id()``-keyed dict or set
  can silently alias a dead device with a live one — exactly the shape
  of the historical ``Medium._device_set`` bug.  Keying containers by
  the object itself (identity hash + a strong reference) or by an
  explicitly assigned index is always safe; a bare ``id()`` never is.

* **set iteration order** (SL202).  Set order depends on insertion
  history and per-process hash seeding.  Any ``for`` loop over a set
  that schedules events or mutates simulation state replays
  differently between runs.  Iterate lists, or wrap in ``sorted()``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.simlint.checker import Finding, ParsedModule

#: Wrappers that impose a deterministic order on an unordered iterable.
_ORDERING_WRAPPERS = frozenset({"sorted", "min", "max", "len", "sum", "any", "all"})

#: Methods that return a set whatever they are called on a set with.
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference"}
)

#: Annotation names marking a variable as a set.
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet"})


class IdentityKeyRule:
    """SL201: any call to the builtin ``id()``."""

    rule_id = "SL201"
    summary = (
        "id() call: CPython reuses ids after GC, so id-derived keys can "
        "alias dead objects with live ones"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id == "id"):
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "id() result used as a value: ids are reused after GC; "
                    "key by the object itself or an assigned index instead"
                ),
            )


def _is_set_expression(node: ast.expr, local_sets: set[str]) -> str | None:
    """A short description when ``node`` is definitely a set, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return f"a {node.func.id}() value"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        # ``buckets.intersection(...)`` and friends return sets no matter
        # what they were called with — the spatial-index style of feeding
        # a scheduler from bucket overlaps must come out sorted.
        if node.func.attr in _SET_METHODS:
            return f"a .{node.func.attr}() result"
    if isinstance(node, ast.Name) and node.id in local_sets:
        return f"the set variable {node.id!r}"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # ``a | b`` / ``a - b`` over sets; only report when a side is
        # provably a set, so integer arithmetic never trips this.
        left = _is_set_expression(node.left, local_sets)
        right = _is_set_expression(node.right, local_sets)
        if left or right:
            return "a set expression"
    return None


def _is_set_annotation(annotation: ast.expr) -> bool:
    """True for ``set``/``frozenset`` annotations, subscripted or bare."""
    if isinstance(annotation, ast.Name):
        return annotation.id in _SET_ANNOTATIONS
    if isinstance(annotation, ast.Subscript):
        return _is_set_annotation(annotation.value)
    return False


def _local_set_names(scope: ast.AST) -> set[str]:
    """Names assigned a set value or a ``set[...]`` annotation in ``scope``."""
    names: set[str] = set()
    for node in ast.walk(scope):
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign):
            if _is_set_annotation(node.annotation) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
            if node.value is None:
                continue
            value, targets = node.value, [node.target]
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for arg in [*node.args.args, *node.args.kwonlyargs]:
                if arg.annotation is not None and _is_set_annotation(
                    arg.annotation
                ):
                    names.add(arg.arg)
            continue
        if value is None:
            continue
        if _is_set_expression(value, set()) is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


class SetIterationRule:
    """SL202: ``for`` loop (or comprehension) over a set."""

    rule_id = "SL202"
    summary = (
        "iteration over a set: order varies with hash seeding, so any "
        "simulation state it feeds replays differently between runs"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_sets = _local_set_names(module.tree)
        iter_nodes: list[tuple[ast.expr, ast.AST]] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_nodes.append((node.iter, node))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    iter_nodes.append((generator.iter, node))
        for iter_expr, owner in iter_nodes:
            description = _is_set_expression(iter_expr, local_sets)
            if description is None:
                continue
            if self._order_insensitive(module, owner):
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=iter_expr.lineno,
                col=iter_expr.col_offset,
                message=(
                    f"iterating {description}: set order is not "
                    "reproducible; iterate a list or wrap in sorted()"
                ),
            )

    @staticmethod
    def _order_insensitive(module: ParsedModule, owner: ast.AST) -> bool:
        """True when the iteration result is immediately re-ordered or
        reduced (``sorted(...)``, ``sum(...)``, ``len(...)``...)."""
        parent = module.parent(owner)
        if isinstance(parent, ast.Call) and isinstance(parent.func, ast.Name):
            return parent.func.id in _ORDERING_WRAPPERS
        return False


RULES = [IdentityKeyRule, SetIterationRule]
