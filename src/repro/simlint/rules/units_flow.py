"""SL7xx — unit/dimension dataflow over the project graph.

The simulator's numbers only mean anything with their units attached:
MAC timing is integer nanoseconds, link budgets flip between dBm (log,
additive for gains) and mW (linear, additive for powers), and the paper
comparisons quote µs and Mbit/s.  The naming contract (``*_ns``,
``*_us``, ``*_ms``, ``*_s``, ``*_dbm``, ``*_db``, ``*_mw``, ``*_bps``,
``*_mbps``) plus the :mod:`repro.units` converters make every unit
visible to a dataflow pass — these rules run that pass (see
:mod:`repro.simlint.project`) and flag the mixes it proves wrong:

* **SL701** — incompatible units combined additively: ns added to s,
  a µs value assigned to a ``*_ns`` target, Mbit/s compared to bit/s.
* **SL702** — logarithmic/linear power mixing: dB or dBm added to a
  mW total, or two dBm levels added (dBm is not additive).
* **SL703** — converter misuse: ``us_to_ns`` applied to a value that is
  already ns (double conversion) or provably not µs.
* **SL704** *(project-wide)* — a call argument whose inferred unit
  contradicts the callee parameter's suffix, resolved through imports
  across module boundaries.
* **SL705** *(project-wide)* — a bare ``float`` literal passed to a
  ``*_ns`` parameter: integer-nanosecond APIs taking ``2.5`` almost
  always mean someone thought the argument was seconds or µs.

SL701–703 need only the local pass; SL704/705 query the
:class:`~repro.simlint.project.ProjectGraph` and therefore only run in
:meth:`Checker.check_paths` (single-module ``check_module`` calls skip
them).
"""

from __future__ import annotations

from typing import Iterator

from repro.simlint.checker import Finding, ParsedModule
from repro.simlint.project import (
    ProjectGraph,
    local_unit_violations,
    unit_label,
)

#: The conversion home may mix freely — it is the boundary itself.
_UNIT_HOMES = ("units.py",)


def _exempt(relpath: str) -> bool:
    return relpath.endswith(_UNIT_HOMES)


class _LocalUnitRule:
    """Shared machinery: surface the local pass's findings for one id."""

    rule_id = ""
    summary = ""

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if _exempt(module.relpath):
            return
        for rule_id, line, col, message in local_unit_violations(module):
            if rule_id != self.rule_id:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=line,
                col=col,
                message=message,
            )


class UnitMixRule(_LocalUnitRule):
    """SL701: incompatible units combined additively."""

    rule_id = "SL701"
    summary = (
        "incompatible units combined (ns/us/ms/s or bps/mbps mixed in "
        "arithmetic, comparison or assignment); convert via repro.units"
    )


class LogLinearPowerRule(_LocalUnitRule):
    """SL702: dB-domain and mW-domain power mixed."""

    rule_id = "SL702"
    summary = (
        "logarithmic power (dB/dBm) mixed with linear power (mW), or dBm "
        "added to dBm; powers add in mW, gains add in dB"
    )


class ConverterMisuseRule(_LocalUnitRule):
    """SL703: a repro.units-style converter fed the wrong unit."""

    rule_id = "SL703"
    summary = (
        "X_to_Y converter applied to a value that is not in X "
        "(double conversion or wrong source unit)"
    )


class CallArgumentUnitRule:
    """SL704: cross-module call argument unit contradicts the parameter."""

    rule_id = "SL704"
    summary = (
        "call argument unit contradicts the callee parameter's suffix "
        "(resolved project-wide through imports)"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for summary, call, sig, param, arg in graph.iter_call_bindings():
            if _exempt(summary.relpath):
                continue
            if param.unit is None or arg.unit in (None, "1"):
                continue
            if arg.unit == param.unit:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=summary.relpath,
                line=call.line,
                col=call.col,
                message=(
                    f"{unit_label(arg.unit)} value passed to parameter "
                    f"{param.name!r} of {sig.module}.{sig.qualname}() which "
                    f"expects {unit_label(param.unit)}"
                ),
            )


class FloatLiteralNanosecondRule:
    """SL705: unit-less float literal crossing a ``*_ns`` API boundary."""

    rule_id = "SL705"
    summary = (
        "float literal passed to a *_ns parameter: integer-nanosecond "
        "APIs given floats usually mean a seconds/µs mix-up"
    )

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        for summary, call, sig, param, arg in graph.iter_call_bindings():
            if _exempt(summary.relpath):
                continue
            if param.unit != "ns" or arg.kind != "float":
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=summary.relpath,
                line=call.line,
                col=call.col,
                message=(
                    f"float literal passed to nanosecond parameter "
                    f"{param.name!r} of {sig.module}.{sig.qualname}(); "
                    "nanoseconds are integers — convert via repro.units"
                ),
            )


RULES = [
    UnitMixRule,
    LogLinearPowerRule,
    ConverterMisuseRule,
    CallArgumentUnitRule,
    FloatLiteralNanosecondRule,
]
