"""SL5xx — spec conformance: the declared constants match 802.11b.

The analytic model (paper Eq. 1–2, Table 2) and the simulator share one
source of truth for MAC/PHY constants: the dataclass defaults in
``core/params.py``.  This rule extracts those defaults **from the AST**
— not by importing the module, so a broken edit is still caught — and
diffs them against ``GOLDEN_80211B``, the paper's Table 1 restated in
the repo's conventions.

Conventions worth restating (they trip every 802.11 reimplementation):

* ``cw_min_slots = 32`` means backoffs are drawn from ``{0, ..., 31}``;
  the standard's ``aCWmin = 31`` names the same window by its largest
  draw.  Likewise ``cw_max_slots = 1024`` is ``aCWmax = 1023``.
* The long PLCP preamble is 144 bits and its header 48 bits, both at
  1 Mb/s — 192 µs in total, the paper's ``PHYhdr``.
* The basic rate set is {1, 2} Mb/s; control frames must use it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.simlint.checker import Finding, ParsedModule

SpecValue = Union[int, float, tuple[float, ...]]

#: Paper Table 1 / IEEE 802.11b-1999, in the repo's own conventions.
GOLDEN_80211B: dict[str, SpecValue] = {
    "mac.slot_time_us": 20.0,
    "mac.sifs_us": 10.0,
    "mac.difs_us": 50.0,
    "mac.cw_min_slots": 32,  # aCWmin = 31: draws come from {0..31}
    "mac.cw_max_slots": 1024,  # aCWmax = 1023
    "mac.mac_header_bits": 272,  # 34-byte 4-address MAC header + FCS
    "mac.ack_bits": 112,  # 14-byte ACK
    "mac.rts_bits": 160,  # 20-byte RTS
    "mac.cts_bits": 112,  # 14-byte CTS
    "mac.short_retry_limit": 7,
    "mac.long_retry_limit": 4,
    "plcp.long.preamble_bits": 144,
    "plcp.long.preamble_rate_mbps": 1.0,
    "plcp.long.header_bits": 48,
    "plcp.long.header_rate_mbps": 1.0,
    "plcp.short.preamble_bits": 72,
    "plcp.short.preamble_rate_mbps": 1.0,
    "plcp.short.header_bits": 48,
    "plcp.short.header_rate_mbps": 2.0,
    "basic_rate_set_mbps": (1.0, 2.0),
}

#: Derived timings the extracted table must reproduce (µs).
_LONG_PLCP_DURATION_US = 192.0
_SHORT_PLCP_DURATION_US = 96.0

#: ``Rate.<member>`` attribute → Mb/s, mirrored from core/params.py so
#: extraction stays purely syntactic.
_RATE_MBPS = {
    "MBPS_1": 1.0,
    "MBPS_2": 2.0,
    "MBPS_5_5": 5.5,
    "MBPS_11": 11.0,
}

#: The single module the rule audits.
_SPEC_MODULE = "core/params.py"


def _literal(node: ast.expr) -> SpecValue | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return node.value
    if isinstance(node, ast.Attribute) and node.attr in _RATE_MBPS:
        return _RATE_MBPS[node.attr]
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal(node.operand)
        if isinstance(inner, (int, float)):
            return -inner
    return None


def _class_def(tree: ast.Module, name: str) -> ast.ClassDef | None:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _dataclass_defaults(class_node: ast.ClassDef) -> dict[str, SpecValue]:
    defaults: dict[str, SpecValue] = {}
    for statement in class_node.body:
        if not isinstance(statement, ast.AnnAssign) or statement.value is None:
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        value = _literal(statement.value)
        if value is not None:
            defaults[statement.target.id] = value
    return defaults


def _classmethod_constructor_kwargs(
    class_node: ast.ClassDef, method_name: str
) -> dict[str, SpecValue]:
    """Keyword literals of the ``return cls(...)`` inside a classmethod."""
    for statement in class_node.body:
        if not isinstance(statement, ast.FunctionDef):
            continue
        if statement.name != method_name:
            continue
        for node in ast.walk(statement):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            kwargs: dict[str, SpecValue] = {}
            for keyword in call.keywords:
                if keyword.arg is None:
                    continue
                value = _literal(keyword.value)
                if value is not None:
                    kwargs[keyword.arg] = value
            return kwargs
    return {}


def _basic_rate_set(tree: ast.Module) -> tuple[float, ...] | None:
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if "BASIC_RATE_SET" not in names:
            continue
        if isinstance(value, ast.Tuple):
            rates = []
            for element in value.elts:
                rate = _literal(element)
                if isinstance(rate, float):
                    rates.append(rate)
            return tuple(rates)
    return None


def extract_spec_constants(module: ParsedModule) -> dict[str, SpecValue]:
    """The MAC/PHY constant table declared by ``core/params.py``."""
    constants: dict[str, SpecValue] = {}
    mac = _class_def(module.tree, "MacParameters")
    if mac is not None:
        for name, value in _dataclass_defaults(mac).items():
            constants[f"mac.{name}"] = value
    plcp = _class_def(module.tree, "PlcpParameters")
    if plcp is not None:
        for method, prefix in (("long", "plcp.long"), ("short", "plcp.short")):
            for name, value in _classmethod_constructor_kwargs(
                plcp, method
            ).items():
                key = name.replace("preamble_rate", "preamble_rate_mbps").replace(
                    "header_rate", "header_rate_mbps"
                )
                constants[f"{prefix}.{key}"] = value
    rates = _basic_rate_set(module.tree)
    if rates is not None:
        constants["basic_rate_set_mbps"] = rates
    return constants


def plcp_duration_us(constants: dict[str, SpecValue], prefix: str) -> float | None:
    """PLCP airtime implied by the extracted bits/rates, in µs."""
    try:
        preamble_bits = constants[f"{prefix}.preamble_bits"]
        preamble_rate = constants[f"{prefix}.preamble_rate_mbps"]
        header_bits = constants[f"{prefix}.header_bits"]
        header_rate = constants[f"{prefix}.header_rate_mbps"]
    except KeyError:
        return None
    if not all(
        isinstance(v, (int, float)) and v
        for v in (preamble_rate, header_rate)
    ):
        return None
    assert isinstance(preamble_bits, (int, float))
    assert isinstance(header_bits, (int, float))
    assert isinstance(preamble_rate, (int, float))
    assert isinstance(header_rate, (int, float))
    return preamble_bits / preamble_rate + header_bits / header_rate


class SpecConformanceRule:
    """SL501/SL502/SL503: declared constants diff against the golden table."""

    rule_id = "SL501"
    summary = (
        "MAC/PHY constants in core/params.py are diffed against the "
        "golden 802.11b table (paper Table 1)"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not module.relpath.endswith(_SPEC_MODULE):
            return
        constants = extract_spec_constants(module)
        for key, golden in sorted(GOLDEN_80211B.items()):
            declared = constants.get(key)
            if declared is None:
                yield Finding(
                    rule_id="SL502",
                    path=module.relpath,
                    line=1,
                    col=0,
                    message=(
                        f"spec constant {key} = {golden!r} not found in "
                        "core/params.py; the golden 802.11b table has no "
                        "counterpart to diff against"
                    ),
                )
            elif declared != golden:
                yield Finding(
                    rule_id="SL501",
                    path=module.relpath,
                    line=1,
                    col=0,
                    message=(
                        f"spec constant {key} is {declared!r} but IEEE "
                        f"802.11b (paper Table 1) requires {golden!r}"
                    ),
                )
        yield from self._derived_checks(module, constants)

    @staticmethod
    def _derived_checks(
        module: ParsedModule, constants: dict[str, SpecValue]
    ) -> Iterator[Finding]:
        sifs = constants.get("mac.sifs_us")
        slot = constants.get("mac.slot_time_us")
        difs = constants.get("mac.difs_us")
        if (
            isinstance(sifs, float)
            and isinstance(slot, float)
            and isinstance(difs, float)
            and difs != sifs + 2 * slot
        ):
            yield Finding(
                rule_id="SL503",
                path=module.relpath,
                line=1,
                col=0,
                message=(
                    f"DIFS ({difs} µs) must equal SIFS + 2·slot "
                    f"({sifs} + 2×{slot} µs) per IEEE 802.11 §9.2.10"
                ),
            )
        for prefix, expected in (
            ("plcp.long", _LONG_PLCP_DURATION_US),
            ("plcp.short", _SHORT_PLCP_DURATION_US),
        ):
            duration = plcp_duration_us(constants, prefix)
            if duration is not None and duration != expected:
                yield Finding(
                    rule_id="SL503",
                    path=module.relpath,
                    line=1,
                    col=0,
                    message=(
                        f"{prefix} airtime works out to {duration:g} µs; "
                        f"802.11b requires {expected:g} µs (the paper's "
                        "PHYhdr)"
                    ),
                )


RULES = [SpecConformanceRule]
