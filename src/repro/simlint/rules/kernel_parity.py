"""SL8xx — kernel/scheduler parity: keep the dual engines bit-identical.

PR 7 split the hot paths in two: reception math runs on either the
python reference kernel or the vectorized numpy kernel (goldens prove
them bit-identical), and timers ride the slot/token scheduler API.
Both splits created bug classes a per-file style check cannot name:

* **SL801** — order-dependent float accumulation over an unordered
  container.  ``sum()`` over a set (or a generator drawn from one)
  rounds differently per iteration order, so two runs — or the two
  kernels — can disagree in the last bit.  ``math.fsum`` is exact and
  therefore order-independent; ``sorted()`` pins the order.  (SL202
  deliberately exempts ``sum(...)`` as "order-insensitive"; that is
  true for ints and exactly wrong for floats, which is this rule.)
* **SL802** — builtin ``sum()`` in a dual-kernel module (one that also
  imports numpy): the python reduction and the numpy reduction
  (pairwise summation) round differently, so a module implementing
  both paths must route reductions through ``math.fsum`` or a single
  shared helper.  Integer reductions (``*_ns`` spines) are exact and
  exempt.
* **SL803** — a numpy construction or reduction fed directly from a
  set or dict-key iteration: the array's element order inherits hash
  seeding, so every downstream reduction is irreproducible.
* **SL804** — slot-API misuse: passing a literal integer where a
  scheduler token (the ``seq`` returned by ``schedule_slot``) is
  expected, or reusing a ``(slot, seq)`` handle pair after it was
  cancelled in the same straight-line block (the token is dead the
  moment ``cancel_slot`` returns; a recycled slot can alias it).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.simlint.checker import Finding, ParsedModule

#: Call names that take/validate a ``(slot, seq)`` token pair.
_SLOT_CONSUMERS = frozenset({"cancel_slot", "slot_active"})

#: Numpy entry points whose argument order becomes array order.
_NUMPY_ALIASES = frozenset({"np", "numpy", "_np"})


def _is_set_expr(node: ast.expr, local_sets: frozenset[str]) -> str | None:
    """A short description when ``node`` is provably unordered, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return f"a {node.func.id}() value"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "keys" and not node.args:
            # dict keys are insertion-ordered, but iterating them for a
            # float reduction couples the result to build history; only
            # flagged when a reduction consumes them (see callers).
            return None
    if isinstance(node, ast.Name) and node.id in local_sets:
        return f"the set variable {node.id!r}"
    if isinstance(node, (ast.GeneratorExp, ast.ListComp)):
        for generator in node.generators:
            inner = _is_set_expr(generator.iter, local_sets)
            if inner is not None:
                return f"a generator over {inner}"
    return None


def _local_set_names(scope: ast.AST) -> frozenset[str]:
    names: set[str] = set()
    for node in ast.walk(scope):
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None:
            continue
        if _is_set_expr(value, frozenset()) is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _names_int_ns(node: ast.expr) -> bool:
    """Whether the reduced expression's spine names an integer-ns value."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id.endswith("_ns"):
            return True
        if isinstance(sub, ast.Attribute) and sub.attr.endswith("_ns"):
            return True
    return False


class UnorderedFloatSumRule:
    """SL801: ``sum()`` over a provably unordered container."""

    rule_id = "SL801"
    summary = (
        "sum() over a set: float accumulation order follows hash "
        "seeding; use math.fsum (exact) or sorted() to pin the order"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_sets = _local_set_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
                continue
            if not node.args:
                continue
            description = _is_set_expr(node.args[0], local_sets)
            if description is None:
                continue
            if _names_int_ns(node.args[0]):
                continue  # integer ns sums are exact in any order
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"sum() over {description}: float accumulation order "
                    "follows hash seeding; use math.fsum or sorted()"
                ),
            )


def _module_uses_numpy(module: ParsedModule) -> bool:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            if any(alias.name.split(".")[0] == "numpy" for alias in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if node.module is not None and node.module.split(".")[0] == "numpy":
                return True
    return False


class DualKernelSumRule:
    """SL802: builtin ``sum()`` in a module that also runs numpy math."""

    rule_id = "SL802"
    summary = (
        "builtin sum() in a numpy-importing (dual-kernel) module: python "
        "and numpy reductions round differently; use math.fsum or one "
        "shared reduction helper"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if not _module_uses_numpy(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
                continue
            if not node.args:
                continue
            if _names_int_ns(node.args[0]):
                continue  # exact in both kernels
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "builtin sum() beside numpy reductions: sequential and "
                    "pairwise summation round differently, so the kernels "
                    "can diverge; use math.fsum or share one reduction"
                ),
            )


class NumpyUnorderedFeedRule:
    """SL803: numpy array/reduction built from set or dict-key iteration."""

    rule_id = "SL803"
    summary = (
        "numpy call fed from a set or dict-key iteration: the array "
        "order inherits hash seeding; materialise a sorted list first"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        local_sets = _local_set_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_ALIASES
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            description = _is_set_expr(first, local_sets)
            if description is None and isinstance(first, ast.Call):
                inner = first.func
                if (
                    isinstance(inner, ast.Attribute)
                    and inner.attr == "keys"
                    and not first.args
                ):
                    description = "dict keys"
            if description is None:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"numpy.{func.attr}() consuming {description}: element "
                    "order follows hash seeding, so every downstream "
                    "reduction is irreproducible; pass sorted(...) instead"
                ),
            )


def _call_attr_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _handle_pair(node: ast.Call) -> tuple[str, str] | None:
    """The ``(slot_name, seq_name)`` a slot-consumer call passes, if plain."""
    if len(node.args) != 2:
        return None
    slot_arg, seq_arg = node.args
    slot = _plain_name(slot_arg)
    seq = _plain_name(seq_arg)
    if slot is None or seq is None:
        return None
    return slot, seq


def _plain_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        # self._slot style handles: key on the attribute name.
        return node.attr
    return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def _walk_straight_line(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Walk a statement's subtree, pruning nested function/class bodies.

    A call inside a nested ``def`` does not execute where it is written,
    so it must not participate in the enclosing block's straight-line
    handle tracking (a class body is a sequence of definitions, not of
    executions).
    """
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, _SCOPE_NODES):
                stack.append(child)


def _assigned_names(stmt: ast.stmt) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(stmt):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            targets = [node.target]
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    names.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    names.add(sub.attr)
    return names


class SlotTokenMisuseRule:
    """SL804: literal tokens or cancelled handles fed to the slot API."""

    rule_id = "SL804"
    summary = (
        "slot-API misuse: literal int where a schedule_slot token is "
        "expected, or a (slot, seq) handle reused after cancel_slot"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        yield from self._literal_tokens(module)
        yield from self._stale_handles(module)

    def _literal_tokens(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_attr_name(node) not in _SLOT_CONSUMERS:
                continue
            if len(node.args) != 2:
                continue
            seq_arg = node.args[1]
            if isinstance(seq_arg, ast.Constant) and isinstance(
                seq_arg.value, int
            ) and not isinstance(seq_arg.value, bool):
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"literal {seq_arg.value} passed as the seq token of "
                        f"{_call_attr_name(node)}(); only the pair returned "
                        "by schedule_slot identifies an event"
                    ),
                )

    def _stale_handles(self, module: ParsedModule) -> Iterator[Finding]:
        """Reuse of a cancelled ``(slot, seq)`` pair in the same block.

        Straight-line only: the scan walks each statement list in order,
        so handles cancelled and reused on different branches of an
        ``if`` never trip it.
        """
        for node in ast.walk(module.tree):
            body_lists: list[list[ast.stmt]] = []
            for field_value in ast.iter_fields(node):
                _, value = field_value
                if isinstance(value, list) and value and all(
                    isinstance(item, ast.stmt) for item in value
                ):
                    body_lists.append(value)
            for body in body_lists:
                yield from self._scan_block(module, body)

    def _scan_block(
        self, module: ParsedModule, body: list[ast.stmt]
    ) -> Iterator[Finding]:
        cancelled: dict[tuple[str, str], int] = {}
        for stmt in body:
            if isinstance(stmt, _SCOPE_NODES):
                continue  # definitions are not executions of this block
            rebound = _assigned_names(stmt)
            for pair in list(cancelled):
                if pair[0] in rebound or pair[1] in rebound:
                    del cancelled[pair]
            calls = [
                sub
                for sub in _walk_straight_line(stmt)
                if isinstance(sub, ast.Call)
                and _call_attr_name(sub) in _SLOT_CONSUMERS
            ]
            for call in calls:
                pair = _handle_pair(call)
                if pair is None:
                    continue
                if pair in cancelled:
                    yield Finding(
                        rule_id=self.rule_id,
                        path=module.relpath,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"handle ({pair[0]}, {pair[1]}) used after "
                            f"cancel_slot on line {cancelled[pair]}: the "
                            "token died with the cancel and a recycled slot "
                            "can alias it"
                        ),
                    )
                elif _call_attr_name(call) == "cancel_slot":
                    cancelled[pair] = call.lineno


RULES = [
    UnorderedFloatSumRule,
    DualKernelSumRule,
    NumpyUnorderedFeedRule,
    SlotTokenMisuseRule,
]
