"""SL6xx — scenario-layer discipline: networks are built from specs.

Since the declarative scenario layer landed, the one blessed way to
stand up a simulated network is::

    from repro.scenario import ScenarioSpec, build
    net = build(spec)

Hand-constructing ``Simulator()`` / ``Medium(...)`` / ``Node(...)``
outside :mod:`repro.scenario` re-creates exactly the wiring drift the
spec layer exists to kill: ad hoc seeds, inconsistent stream names,
event-insertion orders that silently diverge from the cached sweep
points.  SL601 flags such constructions.  Some constructors carry an
extra owning layer: ``GridIndex`` (the medium's spatial index) may also
be built inside the channel package, and nowhere else.  The scenario
package itself and test code are exempt (tests legitimately poke the
raw kernel), and genuinely special setups can waive inline with a
justification::

    sim = Simulator()  # simlint: waive[SL601] -- needs a bare kernel
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.simlint.checker import Finding, ParsedModule

#: Guarded constructors -> extra path segments (beyond the global
#: exemptions) whose files may call them directly.  ``GridIndex`` is the
#: medium's internal spatial index: only the channel layer builds one;
#: everything else gets spatial culling by attaching devices to a
#: ``Medium``, never by hand-rolling an index whose bucket iteration
#: could feed the scheduler.
_RAW_CONSTRUCTORS: dict[str, frozenset[str]] = {
    "Simulator": frozenset(),
    "Medium": frozenset(),
    "Node": frozenset(),
    "GridIndex": frozenset({"channel"}),
}

#: Path segments whose files may construct the raw kernel directly.
_EXEMPT_SEGMENTS = frozenset({"scenario", "tests"})


def _constructor_name(node: ast.Call) -> str | None:
    """The bare class name of ``Name(...)`` or ``pkg.mod.Name(...)`` calls."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class RawNetworkConstructionRule:
    """SL601: Simulator/Medium/Node built outside the scenario layer."""

    rule_id = "SL601"
    summary = (
        "direct Simulator()/Medium()/Node() (or out-of-layer GridIndex) "
        "construction outside repro.scenario; build networks from a "
        "ScenarioSpec via repro.scenario.build"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        segments = set(module.relpath.split("/"))
        if segments & _EXEMPT_SEGMENTS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _constructor_name(node)
            extra_exempt = _RAW_CONSTRUCTORS.get(name)
            if extra_exempt is None or segments & extra_exempt:
                continue
            if name == "GridIndex":
                message = (
                    "direct GridIndex(...) construction outside the "
                    "channel layer; spatial culling belongs to the "
                    "Medium — attach devices instead of hand-rolling "
                    "an index"
                )
            else:
                message = (
                    f"direct {name}(...) construction bypasses the "
                    "scenario layer; express the setup as a ScenarioSpec "
                    "and call repro.scenario.build (waivable for "
                    "genuinely bespoke kernels)"
                )
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=message,
            )


RULES = [RawNetworkConstructionRule]
