"""SL3xx — sim-time hygiene: constants live in one place, ns stay int.

The simulator keeps time as integer nanoseconds precisely so the event
heap never drifts; the 802.11b timing constants (SIFS, slot, DIFS, the
PLCP preamble) live in ``core/params.py`` so the analytic model, the
MAC and the PHY can never disagree.  Both properties erode one literal
at a time:

* **SL301** — a literal equal to a spec timing constant (10/20/50/192 µs
  or their ns forms) appearing *in a time-named context* (a ``*_us`` /
  ``*_ns`` parameter, target or arithmetic partner) outside the
  parameter modules is a copy of the spec that will not follow a
  calibration change.  Bare ``10.0``-style floats in non-time contexts
  (seconds, dB, metres) are deliberately ignored — the value match
  alone is far too common.
* **SL302** — float arithmetic on a ``*_ns`` value quietly reintroduces
  the drift integer nanoseconds exist to prevent.  Conversions belong
  in :mod:`repro.units`, wrapped in ``round()`` at the boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.simlint.checker import Finding, ParsedModule

#: Files allowed to spell out spec timing constants: the unit helpers,
#: the parameter tables, the PLCP plan builder, and this linter's own
#: golden table.
TIMING_CONSTANT_HOMES = (
    "units.py",
    "core/params.py",
    "phy/plans.py",
    "simlint/rules/simtime.py",
    "simlint/rules/spec.py",
)

#: 802.11b timing values (paper Table 1) in µs (floats) and ns (ints).
#: Matching is exact — a bare ``20`` is far too common to flag, but a
#: bare ``20.0`` or ``20_000`` in timing code is almost always the slot
#: time escaping from ``core/params.py``.
SPEC_TIMING_US = frozenset({10.0, 20.0, 50.0, 192.0, 96.0, 364.0})
SPEC_TIMING_NS = frozenset({10_000, 20_000, 50_000, 192_000, 96_000, 364_000})


def _in_allowed_file(module: ParsedModule) -> bool:
    return module.relpath.endswith(TIMING_CONSTANT_HOMES)


def _time_suffixed(name: str) -> bool:
    lowered = name.lower()
    return lowered.endswith(("_us", "_ns"))


def _names_time(node: ast.expr) -> bool:
    """Whether an expression is (or contains at its spine) a time name."""
    if isinstance(node, ast.Name):
        return _time_suffixed(node.id)
    if isinstance(node, ast.Attribute):
        return _time_suffixed(node.attr) or _names_time(node.value)
    if isinstance(node, ast.BinOp):
        return _names_time(node.left) or _names_time(node.right)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return _time_suffixed(func.id)
        if isinstance(func, ast.Attribute):
            return _time_suffixed(func.attr)
    return False


class SpecTimingLiteralRule:
    """SL301: magic 802.11b timing literal outside the parameter modules."""

    rule_id = "SL301"
    summary = (
        "magic timing literal in a *_us/*_ns context duplicates an "
        "802.11b spec constant; take it from core/params.py instead"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if _in_allowed_file(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool):
                continue
            if isinstance(value, float) and value in SPEC_TIMING_US:
                unit, canonical = "µs", f"{value:g} µs"
            elif isinstance(value, int) and value in SPEC_TIMING_NS:
                unit, canonical = "ns", f"{value} ns"
            else:
                continue
            if not self._in_time_context(module, node):
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"literal {canonical} duplicates an 802.11b spec timing "
                    f"constant ({unit} form); reference MacParameters / "
                    "PlcpParameters or name the value if it is coincidental"
                ),
            )

    @staticmethod
    def _in_time_context(module: ParsedModule, node: ast.Constant) -> bool:
        """Whether the literal sits somewhere time-named.

        Recognised contexts: a keyword argument / assignment target /
        function-parameter default whose name ends ``_us``/``_ns``, an
        arithmetic expression whose other spine carries such a name, or
        an argument to a unit-conversion helper (``us_to_ns`` ...).
        """
        current: ast.expr = node
        parent = module.parent(node)
        # Climb nested arithmetic first: in ``a_ns + b_ns + 50_000`` the
        # time-named sibling may sit one or more BinOps up.
        while isinstance(parent, ast.BinOp):
            sibling = parent.left if parent.right is current else parent.right
            if _names_time(sibling):
                return True
            current = parent
            parent = module.parent(parent)
        if isinstance(parent, ast.keyword) and parent.arg is not None:
            return _time_suffixed(parent.arg)
        if isinstance(parent, ast.Call):
            return _names_time(parent.func)
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (
                parent.targets
                if isinstance(parent, ast.Assign)
                else [parent.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and _time_suffixed(target.id):
                    return True
                if isinstance(target, ast.Attribute) and _time_suffixed(
                    target.attr
                ):
                    return True
            return False
        if isinstance(parent, ast.Compare):
            spine = [parent.left, *parent.comparators]
            return any(
                _names_time(expr) for expr in spine if expr is not current
            )
        if isinstance(parent, ast.arguments):
            for argument, default in _defaults_with_args(parent):
                if default is current:
                    return _time_suffixed(argument.arg)
        return False


def _defaults_with_args(
    arguments: ast.arguments,
) -> Iterator[tuple[ast.arg, ast.expr]]:
    positional = arguments.posonlyargs + arguments.args
    for argument, default in zip(
        positional[len(positional) - len(arguments.defaults) :],
        arguments.defaults,
    ):
        yield argument, default
    for argument, default in zip(arguments.kwonlyargs, arguments.kw_defaults):
        if default is not None:
            yield argument, default


def _ends_in_ns(node: ast.expr) -> str | None:
    """The ``*_ns`` name an expression refers to, if any."""
    if isinstance(node, ast.Name) and node.id.endswith("_ns"):
        return node.id
    if isinstance(node, ast.Attribute) and node.attr.endswith("_ns"):
        return node.attr
    return None


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class FloatNanosecondArithmeticRule:
    """SL302: float arithmetic applied to a ``*_ns`` value."""

    rule_id = "SL302"
    summary = (
        "float arithmetic on a *_ns value reintroduces the drift integer "
        "nanoseconds prevent; convert via repro.units at the boundary"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        if module.relpath.endswith("units.py"):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.BinOp):
                continue
            ns_name = _ends_in_ns(node.left) or _ends_in_ns(node.right)
            if ns_name is None:
                continue
            if isinstance(node.op, ast.Div):
                if _ends_in_ns(node.right):
                    # Dividing *by* a ns quantity yields a dimensionless
                    # ratio (airtime shares, utilisation): no time value
                    # leaves integer land.
                    continue
                if self._rounded(module, node):
                    continue
                yield self._finding(
                    module,
                    node,
                    f"true division on {ns_name!r} produces a float time; "
                    "use // for slots or repro.units.ns_to_* at the boundary",
                )
            elif isinstance(node.op, (ast.Mult, ast.Add, ast.Sub)) and (
                _is_float_literal(node.left) or _is_float_literal(node.right)
            ):
                if self._rounded(module, node):
                    continue
                yield self._finding(
                    module,
                    node,
                    f"float literal combined with {ns_name!r}; scale in "
                    "integer ns or convert via repro.units first",
                )

    @staticmethod
    def _rounded(module: ParsedModule, node: ast.BinOp) -> bool:
        """True when an enclosing round()/int() re-integerises the value."""
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Call) and isinstance(
                ancestor.func, ast.Name
            ):
                if ancestor.func.id in {"round", "int"}:
                    return True
            if isinstance(ancestor, ast.stmt):
                break
        return False

    def _finding(
        self, module: ParsedModule, node: ast.BinOp, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            path=module.relpath,
            line=node.lineno,
            col=node.col_offset,
            message=message,
        )


RULES = [SpecTimingLiteralRule, FloatNanosecondArithmeticRule]
