"""SL1xx — determinism: all randomness flows through ``RngManager``.

Two runs with the same master seed must be bit-for-bit identical.  That
breaks the moment any component draws from the process-global ``random``
module (whose state is shared and seeded from OS entropy), from the wall
clock, or from an unseeded ``random.Random()``.  The blessed pattern is
a named substream::

    rng = rng_manager.stream("mac.backoff")

``random.Random(seed)`` *with* an explicit seed is tolerated — it is
deterministic — but module-level draws never are.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.simlint.checker import Finding, ParsedModule

#: ``random`` module attributes that are *not* draws (safe to touch).
_NON_DRAW_ATTRS = frozenset({"Random", "SystemRandom"})

#: Wall-clock / OS-entropy calls that leak host state into a simulation.
#: ``time.monotonic`` / ``perf_counter`` are deliberately absent: they
#: are the right tools for wall-clock watchdog budgets and benchmarks,
#: which never feed simulated state.
_ENTROPY_CALLS = {
    ("time", "time"): "wall-clock time",
    ("time", "time_ns"): "wall-clock time",
    ("os", "urandom"): "OS entropy",
    ("uuid", "uuid1"): "host/clock-derived UUID",
    ("uuid", "uuid4"): "OS-entropy UUID",
    ("secrets", "token_bytes"): "OS entropy",
    ("secrets", "token_hex"): "OS entropy",
    ("datetime", "now"): "wall-clock time",
    ("datetime", "utcnow"): "wall-clock time",
}


def _call_target(node: ast.Call) -> tuple[str, str] | None:
    """``("module_or_object", "attr")`` for an ``x.y(...)`` call."""
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (func.value.id, func.attr)
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute)
        and isinstance(func.value.value, ast.Name)
    ):
        # datetime.datetime.now(...) — collapse to ("datetime", "now").
        return (func.value.attr, func.attr)
    return None


class ModuleGlobalRandomRule:
    """SL101: draw from the process-global ``random`` module."""

    rule_id = "SL101"
    summary = (
        "module-global random.* draw; use RngManager.stream(name) so the "
        "draw is covered by the master seed"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            if target is None or target[0] != "random":
                continue
            attr = target[1]
            if attr in _NON_DRAW_ATTRS:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"random.{attr}() draws from the shared module-global "
                    "generator; route the draw through RngManager.stream()"
                ),
            )


class UnseededRandomRule:
    """SL102: ``random.Random()`` with no seed argument."""

    rule_id = "SL102"
    summary = "unseeded random.Random() seeds itself from OS entropy"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            is_module_random = target == ("random", "Random")
            is_bare_random = (
                isinstance(node.func, ast.Name) and node.func.id == "Random"
            )
            if not (is_module_random or is_bare_random):
                continue
            if node.args or node.keywords:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "random.Random() without a seed draws its state from OS "
                    "entropy; pass an explicit seed or use RngManager.stream()"
                ),
            )


class WallClockEntropyRule:
    """SL103: wall-clock / OS-entropy calls in simulation code."""

    rule_id = "SL103"
    summary = "wall-clock or OS-entropy call leaks host state into the sim"

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _call_target(node)
            if target is None:
                continue
            description = _ENTROPY_CALLS.get(target)
            if description is None:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{target[0]}.{target[1]}() injects {description}; "
                    "simulation state must derive from sim.now_ns and "
                    "RngManager only"
                ),
            )


class FunctionLocalRandomImportRule:
    """SL104: ``import random`` buried inside a function body."""

    rule_id = "SL104"
    summary = (
        "function-local 'import random' hides a randomness dependency "
        "from the seed discipline"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Import):
                continue
            if not any(alias.name == "random" for alias in node.names):
                continue
            if module.enclosing_function(node) is None:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "'import random' inside a function: draws made here are "
                    "invisible to the module's seed audit; import at module "
                    "level and route draws through RngManager"
                ),
            )


RULES = [
    ModuleGlobalRandomRule,
    UnseededRandomRule,
    WallClockEntropyRule,
    FunctionLocalRandomImportRule,
]
