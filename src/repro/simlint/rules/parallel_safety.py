"""SL4xx — parallel safety: no shared mutable class state, picklable work.

The sweep engine runs many simulations in one process (serial path) and
across processes (pool path).  Both break on the same two shapes:

* **SL401** — a mutable object (list/dict/set, ``itertools.count``,
  ``deque``...) assigned at class level is shared by every instance *in
  the process*, so two live simulations contaminate each other.  This
  is exactly PR 2's ``Signal._ids`` bug: a class-level id counter made
  signal ids depend on how many mediums had ever lived in the worker.
* **SL402** — a ``lambda`` or nested function handed to ``run_sweep`` /
  ``pmap`` cannot be pickled to a spawn worker; sweep work must be a
  module-level function (the engine's dotted-path convention).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.simlint.checker import Finding, ParsedModule

#: Constructors whose result is mutable shared state at class level.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "count"}
)

#: Call names exempt from SL401: these produce per-instance descriptors
#: or immutable values even though they are calls.
_CLASS_LEVEL_SAFE_CALLS = frozenset(
    {"field", "property", "staticmethod", "classmethod", "frozenset", "tuple"}
)

#: Sweep entry points whose arguments must be picklable.
_SWEEP_ENTRY_POINTS = frozenset({"run_sweep", "pmap"})


def _is_enum_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else getattr(base, "id", "")
        if "Enum" in name or "Flag" in name:
            return True
    return False


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _mutable_description(value: ast.expr) -> str | None:
    """Why ``value`` is mutable shared state, or None when it is safe."""
    if isinstance(value, (ast.List, ast.ListComp)):
        return "a list"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(value, ast.Call):
        name = _call_name(value)
        if name in _CLASS_LEVEL_SAFE_CALLS:
            return None
        if name in _MUTABLE_CONSTRUCTORS:
            return f"a {name}() object"
    return None


class MutableClassAttributeRule:
    """SL401: mutable object assigned at class level."""

    rule_id = "SL401"
    summary = (
        "mutable class attribute is shared by every instance in the "
        "process (the Signal._ids bug shape); initialise in __init__"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            if _is_enum_class(class_node):
                continue
            for statement in class_node.body:
                target_name, value = self._class_assignment(statement)
                if value is None or target_name is None:
                    continue
                if target_name.startswith("__") and target_name.endswith("__"):
                    continue
                description = _mutable_description(value)
                if description is None:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.relpath,
                    line=statement.lineno,
                    col=statement.col_offset,
                    message=(
                        f"class attribute {target_name!r} holds {description}"
                        f" shared by every {class_node.name} in the process; "
                        "move it to __init__ (or waive with the isolation "
                        "argument spelled out)"
                    ),
                )

    @staticmethod
    def _class_assignment(
        statement: ast.stmt,
    ) -> tuple[str | None, ast.expr | None]:
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
            if isinstance(target, ast.Name):
                return target.id, statement.value
        if isinstance(statement, ast.AnnAssign) and statement.value is not None:
            if isinstance(statement.target, ast.Name):
                return statement.target.id, statement.value
        return None, None


def _nested_function_names(module: ParsedModule, call: ast.Call) -> set[str]:
    """Functions defined inside the function enclosing ``call``."""
    enclosing = module.enclosing_function(call)
    if enclosing is None:
        return set()
    names: set[str] = set()
    for node in ast.walk(enclosing):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not enclosing:
                names.add(node.name)
    return names


class UnpicklableSweepArgumentRule:
    """SL402: lambda / nested function passed to the sweep engine."""

    rule_id = "SL402"
    summary = (
        "lambda or nested function passed to run_sweep/pmap cannot be "
        "pickled to a spawn worker"
    )

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node)
            if name not in _SWEEP_ENTRY_POINTS:
                continue
            nested = _nested_function_names(module, node)
            arguments = list(node.args) + [kw.value for kw in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    detail = "a lambda"
                elif isinstance(argument, ast.Name) and argument.id in nested:
                    detail = f"the nested function {argument.id!r}"
                else:
                    continue
                yield Finding(
                    rule_id=self.rule_id,
                    path=module.relpath,
                    line=argument.lineno,
                    col=argument.col_offset,
                    message=(
                        f"{detail} passed to {name}() cannot be pickled "
                        "under the spawn start method; use a module-level "
                        "function (dotted-path SweepPoint convention)"
                    ),
                )


RULES = [MutableClassAttributeRule, UnpicklableSweepArgumentRule]
