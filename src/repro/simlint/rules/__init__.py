"""Rule registry: one module per rule family.

* ``SL1xx`` :mod:`repro.simlint.rules.determinism`
* ``SL2xx`` :mod:`repro.simlint.rules.ordering`
* ``SL3xx`` :mod:`repro.simlint.rules.simtime`
* ``SL4xx`` :mod:`repro.simlint.rules.parallel_safety`
* ``SL5xx`` :mod:`repro.simlint.rules.spec`
* ``SL6xx`` :mod:`repro.simlint.rules.scenario_layer`

A rule is an object with a ``rule_id``, a one-line ``summary`` and a
``check(module) -> Iterator[Finding]`` method.  New rules register by
appending their class to their family module's ``RULES`` list; the
registry here just concatenates the families.
"""

from __future__ import annotations

from typing import Iterator, Protocol

from repro.simlint.checker import Finding, ParsedModule


class Rule(Protocol):
    """What the checker requires of a rule."""

    rule_id: str
    summary: str

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        ...


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, id order."""
    from repro.simlint.rules import (
        determinism,
        ordering,
        parallel_safety,
        scenario_layer,
        simtime,
        spec,
    )

    rules: list[Rule] = []
    for family in (
        determinism,
        ordering,
        simtime,
        parallel_safety,
        spec,
        scenario_layer,
    ):
        rules.extend(rule_class() for rule_class in family.RULES)
    rules.sort(key=lambda rule: rule.rule_id)
    return rules


def rules_by_id() -> dict[str, Rule]:
    """Mapping of rule id to a fresh rule instance."""
    return {rule.rule_id: rule for rule in all_rules()}


__all__ = ["Rule", "all_rules", "rules_by_id"]
