"""Rule registry: one module per rule family.

* ``SL1xx`` :mod:`repro.simlint.rules.determinism`
* ``SL2xx`` :mod:`repro.simlint.rules.ordering`
* ``SL3xx`` :mod:`repro.simlint.rules.simtime`
* ``SL4xx`` :mod:`repro.simlint.rules.parallel_safety`
* ``SL5xx`` :mod:`repro.simlint.rules.spec`
* ``SL6xx`` :mod:`repro.simlint.rules.scenario_layer`
* ``SL7xx`` :mod:`repro.simlint.rules.units_flow`
* ``SL8xx`` :mod:`repro.simlint.rules.kernel_parity`

Two rule shapes exist since the whole-program layer landed:

* a **module rule** has a ``rule_id``, a one-line ``summary`` and a
  ``check(module) -> Iterator[Finding]`` method, and sees one file;
* a **project rule** has the same identity fields but a
  ``check_project(graph) -> Iterator[Finding]`` method and sees the
  :class:`~repro.simlint.project.ProjectGraph` joining every linted
  file (it only runs from ``Checker.check_paths``).

New rules register by appending their class to their family module's
``RULES`` list; the registry here just concatenates the families.
"""

from __future__ import annotations

from typing import Iterator, Protocol, Union, runtime_checkable

from repro.simlint.checker import Finding, ParsedModule
from repro.simlint.project import ProjectGraph


@runtime_checkable
class Rule(Protocol):
    """A per-file rule."""

    rule_id: str
    summary: str

    def check(self, module: ParsedModule) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""
        ...


@runtime_checkable
class ProjectRule(Protocol):
    """A whole-program rule run once over the project graph."""

    rule_id: str
    summary: str

    def check_project(self, graph: ProjectGraph) -> Iterator[Finding]:
        """Yield every violation visible from the project graph."""
        ...


AnyRule = Union[Rule, ProjectRule]


def all_rules() -> list[AnyRule]:
    """Fresh instances of every registered rule, id order."""
    from repro.simlint.rules import (
        determinism,
        kernel_parity,
        ordering,
        parallel_safety,
        scenario_layer,
        simtime,
        spec,
        units_flow,
    )

    rules: list[AnyRule] = []
    for family in (
        determinism,
        ordering,
        simtime,
        parallel_safety,
        spec,
        scenario_layer,
        units_flow,
        kernel_parity,
    ):
        rules.extend(rule_class() for rule_class in family.RULES)
    rules.sort(key=lambda rule: rule.rule_id)
    return rules


def rules_by_id() -> dict[str, AnyRule]:
    """Mapping of rule id to a fresh rule instance."""
    return {rule.rule_id: rule for rule in all_rules()}


__all__ = ["AnyRule", "ProjectRule", "Rule", "all_rules", "rules_by_id"]
