"""``repro.simlint`` — simulator-specific static analysis.

The simulator's two load-bearing promises — bit-for-bit deterministic
replay and faithful 802.11b timing constants — are conventions a diff
review can easily miss (PR 2's ``Signal._ids`` class-attribute bug got
through one).  This package turns them into machine-checked invariants:

* **SL1xx determinism** — every random draw must flow through
  :class:`repro.sim.rng.RngManager`; no module-global ``random.*``,
  wall-clock entropy or unseeded ``random.Random()``.
* **SL2xx ordering** — no ``id()``-derived keys, no iteration over
  sets feeding simulation state (CPython reuses ids after GC and set
  order varies with hash seeding).
* **SL3xx sim-time hygiene** — 802.11b timing constants live in
  ``core/params.py`` / ``units.py`` / ``phy/plans.py`` only; integer
  nanosecond values stay integers.
* **SL4xx parallel safety** — no mutable class attributes on sim
  classes, no unpicklable lambdas handed to the sweep engine.
* **SL5xx spec conformance** — the MAC/PHY constants the code actually
  declares are diffed against a golden 802.11b table (paper Table 1).
* **SL7xx unit/dimension dataflow** — units inferred from the naming
  contract (``*_ns``/``*_us``/``*_s``/``*_dbm``/``*_mw``/``*_bps``…)
  and from :mod:`repro.units` converters flow through assignments,
  returns and cross-module call arguments; mixing ns with s, adding dB
  to mW, double-converting, or feeding a bare float literal to a
  ``*_ns`` parameter is flagged (see :mod:`repro.simlint.project`).
* **SL8xx kernel/scheduler parity** — order-dependent float
  accumulation over sets, builtin ``sum()`` beside numpy reductions,
  numpy arrays built from unordered iteration, and slot/token API
  misuse (literal tokens, handles reused after ``cancel_slot``).

SL7xx's cross-module rules run on a whole-program import/symbol graph
built from picklable per-module summaries; the same summaries let the
per-file pass fan out over processes (``--jobs``) and be cached on
content hash (:mod:`repro.simlint.cache`).

Run it as ``repro lint [--format text|json|sarif] [--jobs N]``;
findings can be waived inline with ``# simlint: waive[SLnnn] --
justification`` or recorded in a baseline file (see
:mod:`repro.simlint.baseline`).  A justified waiver that suppresses
nothing is itself reported (SL003) so waivers cannot outlive the code
they excused.
"""

from __future__ import annotations

from repro.simlint.baseline import Baseline, fingerprint
from repro.simlint.cache import LintCache, default_cache_dir
from repro.simlint.checker import Checker, Finding, ParsedModule, lint_paths
from repro.simlint.project import ModuleSummary, ProjectGraph, summarize_module
from repro.simlint.report import render_json, render_text
from repro.simlint.sarif import render_sarif

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "LintCache",
    "ModuleSummary",
    "ParsedModule",
    "ProjectGraph",
    "default_cache_dir",
    "fingerprint",
    "lint_paths",
    "render_json",
    "render_sarif",
    "render_text",
    "summarize_module",
]
