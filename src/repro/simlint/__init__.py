"""``repro.simlint`` — simulator-specific static analysis.

The simulator's two load-bearing promises — bit-for-bit deterministic
replay and faithful 802.11b timing constants — are conventions a diff
review can easily miss (PR 2's ``Signal._ids`` class-attribute bug got
through one).  This package turns them into machine-checked invariants:

* **SL1xx determinism** — every random draw must flow through
  :class:`repro.sim.rng.RngManager`; no module-global ``random.*``,
  wall-clock entropy or unseeded ``random.Random()``.
* **SL2xx ordering** — no ``id()``-derived keys, no iteration over
  sets feeding simulation state (CPython reuses ids after GC and set
  order varies with hash seeding).
* **SL3xx sim-time hygiene** — 802.11b timing constants live in
  ``core/params.py`` / ``units.py`` / ``phy/plans.py`` only; integer
  nanosecond values stay integers.
* **SL4xx parallel safety** — no mutable class attributes on sim
  classes, no unpicklable lambdas handed to the sweep engine.
* **SL5xx spec conformance** — the MAC/PHY constants the code actually
  declares are diffed against a golden 802.11b table (paper Table 1).

Run it as ``repro lint [--format text|json]``; findings can be waived
inline with ``# simlint: waive[SLnnn] -- justification`` or recorded in
a baseline file (see :mod:`repro.simlint.baseline`).
"""

from __future__ import annotations

from repro.simlint.baseline import Baseline, fingerprint
from repro.simlint.checker import Checker, Finding, ParsedModule, lint_paths
from repro.simlint.report import render_json, render_text

__all__ = [
    "Baseline",
    "Checker",
    "Finding",
    "ParsedModule",
    "fingerprint",
    "lint_paths",
    "render_json",
    "render_text",
]
