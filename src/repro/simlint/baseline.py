"""Finding baselines: adopt the linter without fixing the world first.

A baseline records a fingerprint per accepted finding.  Fingerprints
hash the rule id, the file, the *text* of the offending line and an
occurrence counter — deliberately **not** the line number, so unrelated
edits above a finding do not invalidate the baseline, while any edit to
the flagged line itself resurfaces it.

Workflow::

    repro lint --write-baseline simlint-baseline.json   # adopt
    repro lint --baseline simlint-baseline.json         # enforce only new

This repo keeps its own baseline empty — every finding is fixed or
carries an inline waiver — but downstream forks growing new scenario
packs need the gradual path.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Sequence

from repro.simlint.checker import Finding


def fingerprint(finding: Finding, line_text: str, occurrence: int) -> str:
    """Stable identity of one finding, independent of line numbers."""
    digest = hashlib.sha256(
        "\x1f".join(
            (finding.rule_id, finding.path, line_text.strip(), str(occurrence))
        ).encode()
    )
    return digest.hexdigest()[:20]


def fingerprint_findings(
    findings: Sequence[Finding], line_text_for: "LineTextLookup"
) -> list[tuple[Finding, str]]:
    """Pair each finding with its fingerprint, counting duplicates.

    Two identical lines with the same violation get distinct occurrence
    counters, so fixing one of them surfaces exactly one finding.
    """
    seen: Counter[tuple[str, str, str]] = Counter()
    pairs: list[tuple[Finding, str]] = []
    for finding in findings:
        text = line_text_for(finding).strip()
        key = (finding.rule_id, finding.path, text)
        occurrence = seen[key]
        seen[key] += 1
        pairs.append((finding, fingerprint(finding, text, occurrence)))
    return pairs


class LineTextLookup:
    """Reads (and caches) the source line a finding points at."""

    def __init__(self, root: Path | None = None):
        self._root = root
        self._files: dict[str, list[str]] = {}

    def __call__(self, finding: Finding) -> str:
        lines = self._files.get(finding.path)
        if lines is None:
            path = Path(finding.path)
            if self._root is not None and not path.is_absolute():
                path = self._root / path
            try:
                lines = path.read_text(encoding="utf-8").splitlines()
            except OSError:
                lines = []
            self._files[finding.path] = lines
        if 1 <= finding.line <= len(lines):
            return lines[finding.line - 1]
        return ""


class Baseline:
    """A set of accepted finding fingerprints."""

    VERSION = 1

    def __init__(self, fingerprints: Iterable[str] = ()):
        self._fingerprints = set(fingerprints)

    def __len__(self) -> int:
        return len(self._fingerprints)

    def __contains__(self, item: str) -> bool:
        return item in self._fingerprints

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file written by :meth:`write`."""
        payload = json.loads(path.read_text(encoding="utf-8"))
        return cls(payload.get("fingerprints", ()))

    def write(self, path: Path) -> None:
        """Persist; sorted for diff-friendly version control."""
        payload = {
            "version": self.VERSION,
            "fingerprints": sorted(self._fingerprints),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    @classmethod
    def from_findings(
        cls, findings: Sequence[Finding], line_text_for: LineTextLookup
    ) -> "Baseline":
        """Adopt every (unwaived) finding as accepted debt."""
        active = [finding for finding in findings if not finding.waived]
        return cls(
            print_ for _, print_ in fingerprint_findings(active, line_text_for)
        )

    def split(
        self, findings: Sequence[Finding], line_text_for: LineTextLookup
    ) -> tuple[list[Finding], list[Finding]]:
        """``(new, baselined)`` partition of the unwaived findings."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        active = [finding for finding in findings if not finding.waived]
        for finding, print_ in fingerprint_findings(active, line_text_for):
            if print_ in self._fingerprints:
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined
