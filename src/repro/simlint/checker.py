"""The AST walker behind ``repro lint``.

A :class:`ParsedModule` bundles one source file with everything a rule
needs to reason about it: the parse tree, a child-to-parent map (the
:mod:`ast` module only links downwards), the raw source lines and the
inline waivers.  The :class:`Checker` parses each file once, hands the
module to every registered rule, and attaches waivers to the findings
they return.

Waivers are inline comments of the form::

    x = risky()  # simlint: waive[SL401] -- shared fallback, see docstring

A waiver covers the line it sits on and, when written on a line of its
own, the first following line that produces a finding.  The
justification after ``--`` is mandatory: a waiver without a reason does
not suppress anything (and is itself reported as ``SL001``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Matches waiver comments: ``simlint: waive[SL101, SL202] -- reason``.
_WAIVER_RE = re.compile(
    r"#\s*simlint:\s*waive\[(?P<rules>[A-Z0-9*,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str | None = None

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Waiver:
    """An inline suppression comment."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str | None
    #: True when the comment is alone on its line and therefore covers
    #: the next finding-producing line below it.
    standalone: bool

    def covers(self, rule_id: str) -> bool:
        """Whether this waiver names ``rule_id`` (or ``*``)."""
        return "*" in self.rule_ids or rule_id in self.rule_ids


@dataclass
class ParsedModule:
    """One source file, parsed and indexed for the rules."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: Sequence[str]
    waivers: tuple[Waiver, ...]
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "ParsedModule":
        """Read and parse ``path``; ``root`` anchors the reported relpath."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relpath = str(path.relative_to(root)) if root is not None else str(path)
        except ValueError:
            relpath = str(path)
        module = cls(
            path=path,
            relpath=relpath.replace("\\", "/"),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            waivers=tuple(_extract_waivers(source)),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                # simlint: waive[SL201] -- keys index live AST nodes the
                # module itself keeps referenced, so ids cannot be reused.
                module._parents[id(child)] = parent
        return module

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        # simlint: waive[SL201] -- lookup key for live AST nodes held by
        # this module; ids are stable while the tree is referenced.
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function containing ``node``, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """The innermost class containing ``node``, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def line_text(self, line: int) -> str:
        """Source text of a 1-based line (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def waiver_for(self, finding: Finding) -> Waiver | None:
        """The waiver covering ``finding``, if one exists.

        Same-line waivers win; otherwise a standalone waiver comment on
        the closest preceding line applies as long as only blank or
        comment lines separate the two.
        """
        for waiver in self.waivers:
            if waiver.line == finding.line and waiver.covers(finding.rule_id):
                return waiver
        best: Waiver | None = None
        for waiver in self.waivers:
            if not waiver.standalone or not waiver.covers(finding.rule_id):
                continue
            if waiver.line >= finding.line:
                continue
            between = range(waiver.line + 1, finding.line)
            if all(_is_blank_or_comment(self.line_text(n)) for n in between):
                if best is None or waiver.line > best.line:
                    best = waiver
        return best


def _is_blank_or_comment(text: str) -> bool:
    stripped = text.strip()
    return not stripped or stripped.startswith("#")


def _extract_waivers(source: str) -> Iterator[Waiver]:
    lines = source.splitlines()
    for line_number, text in enumerate(lines, start=1):
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        rule_ids = tuple(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        reason = match.group("reason")
        standalone = text.strip().startswith("#")
        if reason is not None and standalone:
            # A standalone waiver's justification may wrap onto following
            # comment lines; fold them into the reason.
            for follower in lines[line_number:]:
                stripped = follower.strip()
                if not stripped.startswith("#") or "simlint:" in stripped:
                    break
                reason = f"{reason} {stripped.lstrip('#').strip()}"
        yield Waiver(
            line=line_number,
            rule_ids=rule_ids,
            reason=reason,
            standalone=standalone,
        )


class Checker:
    """Parses files and runs every registered rule over them."""

    def __init__(self, rules: Sequence[object] | None = None):
        if rules is None:
            from repro.simlint.rules import all_rules

            rules = all_rules()
        self._rules = list(rules)

    @property
    def rules(self) -> tuple[object, ...]:
        """The rule instances this checker runs."""
        return tuple(self._rules)

    def check_module(self, module: ParsedModule) -> list[Finding]:
        """All findings for one parsed module, waivers applied."""
        findings: list[Finding] = []
        for waiver in module.waivers:
            if waiver.reason is None:
                findings.append(
                    Finding(
                        rule_id="SL001",
                        path=module.relpath,
                        line=waiver.line,
                        col=0,
                        message=(
                            "waiver without a justification: write "
                            "'# simlint: waive[SLnnn] -- reason'"
                        ),
                    )
                )
        for rule in self._rules:
            for finding in rule.check(module):  # type: ignore[attr-defined]
                waiver = module.waiver_for(finding)
                if waiver is not None and waiver.reason is not None:
                    finding = replace(
                        finding, waived=True, waiver_reason=waiver.reason
                    )
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def check_paths(self, paths: Iterable[Path], root: Path | None = None) -> list[Finding]:
        """Findings for every ``*.py`` file under ``paths``."""
        findings: list[Finding] = []
        for file_path in iter_python_files(paths):
            try:
                module = ParsedModule.parse(file_path, root=root)
            except (SyntaxError, UnicodeDecodeError) as error:
                findings.append(
                    Finding(
                        rule_id="SL002",
                        path=str(file_path),
                        line=getattr(error, "lineno", 1) or 1,
                        col=0,
                        message=f"cannot parse file: {error}",
                    )
                )
                continue
            findings.extend(self.check_module(module))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under the given files/directories, sorted.

    Sorted traversal keeps reports and baselines stable across
    filesystems (``iterdir`` order is platform-dependent).
    """
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path] | None = None, root: Path | None = None
) -> list[Finding]:
    """Convenience one-shot: lint ``paths`` (default: the repro package)."""
    if paths is None:
        package_root = Path(__file__).resolve().parent.parent
        paths = [package_root]
        root = root if root is not None else package_root.parent
    return Checker().check_paths(paths, root=root)
