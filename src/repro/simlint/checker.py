"""The AST walker behind ``repro lint``.

A :class:`ParsedModule` bundles one source file with everything a rule
needs to reason about it: the parse tree, a child-to-parent map (the
:mod:`ast` module only links downwards), the raw source lines and the
inline waivers.  The :class:`Checker` parses each file once, hands the
module to every registered rule, and attaches waivers to the findings
they return.

Waivers are inline comments of the form::

    x = risky()  # simlint: waive[SL401] -- shared fallback, see docstring

A waiver covers the line it sits on and, when written on a line of its
own, the first following line that produces a finding.  The
justification after ``--`` is mandatory: a waiver without a reason does
not suppress anything (and is itself reported as ``SL001``).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (project -> checker)
    from repro.simlint.cache import LintCache
    from repro.simlint.project import ModuleSummary

#: Matches waiver comments: ``simlint: waive[SL101, SL202] -- reason``.
_WAIVER_RE = re.compile(
    r"#\s*simlint:\s*waive\[(?P<rules>[A-Z0-9*,\s]+)\]"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    waived: bool = False
    waiver_reason: str | None = None

    def location(self) -> str:
        """``path:line:col`` — the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"


@dataclass(frozen=True)
class Waiver:
    """An inline suppression comment."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str | None
    #: True when the comment is alone on its line and therefore covers
    #: the next finding-producing line below it.
    standalone: bool

    def covers(self, rule_id: str) -> bool:
        """Whether this waiver names ``rule_id`` (or ``*``)."""
        return "*" in self.rule_ids or rule_id in self.rule_ids


@dataclass
class ParsedModule:
    """One source file, parsed and indexed for the rules."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: Sequence[str]
    waivers: tuple[Waiver, ...]
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, path: Path, root: Path | None = None) -> "ParsedModule":
        """Read and parse ``path``; ``root`` anchors the reported relpath."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        try:
            relpath = str(path.relative_to(root)) if root is not None else str(path)
        except ValueError:
            relpath = str(path)
        module = cls(
            path=path,
            relpath=relpath.replace("\\", "/"),
            source=source,
            tree=tree,
            lines=source.splitlines(),
            waivers=tuple(_extract_waivers(source)),
        )
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                # simlint: waive[SL201] -- keys index live AST nodes the
                # module itself keeps referenced, so ids cannot be reused.
                module._parents[id(child)] = parent
        return module

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        # simlint: waive[SL201] -- lookup key for live AST nodes held by
        # this module; ids are stable while the tree is referenced.
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function containing ``node``, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """The innermost class containing ``node``, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def line_text(self, line: int) -> str:
        """Source text of a 1-based line (empty when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def waiver_for(self, finding: Finding) -> Waiver | None:
        """The waiver covering ``finding``, if one exists.

        Same-line waivers win; otherwise a standalone waiver comment on
        the closest preceding line applies as long as only blank or
        comment lines separate the two.
        """
        for waiver in self.waivers:
            if waiver.line == finding.line and waiver.covers(finding.rule_id):
                return waiver
        best: Waiver | None = None
        for waiver in self.waivers:
            if not waiver.standalone or not waiver.covers(finding.rule_id):
                continue
            if waiver.line >= finding.line:
                continue
            between = range(waiver.line + 1, finding.line)
            if all(_is_blank_or_comment(self.line_text(n)) for n in between):
                if best is None or waiver.line > best.line:
                    best = waiver
        return best


def _is_blank_or_comment(text: str) -> bool:
    stripped = text.strip()
    return not stripped or stripped.startswith("#")


def _comment_lines(source: str) -> dict[int, str]:
    """1-based line number of every *real* comment token in ``source``.

    Tokenizing (rather than regexing raw lines) keeps waiver examples in
    docstrings — this module's own docstring included — from being
    mistaken for live suppressions; that matters now that SL003 reports
    waivers that suppress nothing.
    """
    comments: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    return comments


def _extract_waivers(source: str) -> Iterator[Waiver]:
    lines = source.splitlines()
    comments = _comment_lines(source)
    for line_number, comment in sorted(comments.items()):
        match = _WAIVER_RE.search(comment)
        if match is None:
            continue
        text = lines[line_number - 1] if line_number <= len(lines) else comment
        rule_ids = tuple(
            token.strip() for token in match.group("rules").split(",") if token.strip()
        )
        reason = match.group("reason")
        standalone = text.strip().startswith("#")
        if reason is not None and standalone:
            # A standalone waiver's justification may wrap onto following
            # comment lines; fold them into the reason.
            for follower in lines[line_number:]:
                stripped = follower.strip()
                if not stripped.startswith("#") or "simlint:" in stripped:
                    break
                reason = f"{reason} {stripped.lstrip('#').strip()}"
        yield Waiver(
            line=line_number,
            rule_ids=rule_ids,
            reason=reason,
            standalone=standalone,
        )


@dataclass(frozen=True)
class FileResult:
    """The per-file half of a lint run: picklable, hence poolable/cacheable.

    ``findings`` carries the module-rule findings (waivers applied),
    ``summary`` the project-graph contribution (None when the file did
    not parse), ``used_waiver_lines`` the lines of waivers that
    suppressed at least one module-rule finding — the project pass adds
    its own uses before SL003 reports the leftovers as stale.
    """

    relpath: str
    findings: tuple[Finding, ...]
    summary: "ModuleSummary | None"
    used_waiver_lines: tuple[int, ...]


def _relpath_for(path: Path, root: Path | None) -> str:
    try:
        relpath = str(path.relative_to(root)) if root is not None else str(path)
    except ValueError:
        relpath = str(path)
    return relpath.replace("\\", "/")


def _lint_file_payload(payload: tuple[str, str | None]) -> FileResult:
    """Module-level pool worker: lint one file with the default rules."""
    path_text, root_text = payload
    root = Path(root_text) if root_text is not None else None
    return Checker().check_file(Path(path_text), root=root)


class Checker:
    """Parses files and runs every registered rule over them.

    Module rules run per file (in parallel and through the result cache
    when :meth:`check_paths` is given ``jobs``/``cache``); project rules
    run once afterwards over the :class:`~repro.simlint.project.ProjectGraph`
    joining every file's summary.
    """

    def __init__(self, rules: Sequence[object] | None = None):
        self._default_rules = rules is None
        if rules is None:
            from repro.simlint.rules import all_rules

            rules = all_rules()
        self._module_rules = [rule for rule in rules if hasattr(rule, "check")]
        self._project_rules = [
            rule for rule in rules if hasattr(rule, "check_project")
        ]

    @property
    def rules(self) -> tuple[object, ...]:
        """The rule instances this checker runs."""
        return tuple(
            sorted(
                [*self._module_rules, *self._project_rules],
                key=lambda rule: rule.rule_id,  # type: ignore[attr-defined]
            )
        )

    def check_module(self, module: ParsedModule) -> list[Finding]:
        """Module-rule findings for one parsed module, waivers applied.

        Project rules and SL003 need the whole file set and therefore
        only run from :meth:`check_paths`.
        """
        findings, _ = self._check_module(module)
        return findings

    def _check_module(
        self, module: ParsedModule
    ) -> tuple[list[Finding], set[int]]:
        findings: list[Finding] = []
        used_waiver_lines: set[int] = set()
        for waiver in module.waivers:
            if waiver.reason is None:
                findings.append(
                    Finding(
                        rule_id="SL001",
                        path=module.relpath,
                        line=waiver.line,
                        col=0,
                        message=(
                            "waiver without a justification: write "
                            "'# simlint: waive[SLnnn] -- reason'"
                        ),
                    )
                )
        for rule in self._module_rules:
            for finding in rule.check(module):  # type: ignore[attr-defined]
                waiver = module.waiver_for(finding)
                if waiver is not None and waiver.reason is not None:
                    finding = replace(
                        finding, waived=True, waiver_reason=waiver.reason
                    )
                    used_waiver_lines.add(waiver.line)
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings, used_waiver_lines

    def check_file(self, file_path: Path, root: Path | None = None) -> FileResult:
        """Parse and module-rule-check one file into a :class:`FileResult`."""
        from repro.simlint.project import summarize_module

        try:
            module = ParsedModule.parse(file_path, root=root)
        except (SyntaxError, UnicodeDecodeError) as error:
            finding = Finding(
                rule_id="SL002",
                path=_relpath_for(file_path, root),
                line=getattr(error, "lineno", 1) or 1,
                col=0,
                message=f"cannot parse file: {error}",
            )
            return FileResult(
                relpath=finding.path,
                findings=(finding,),
                summary=None,
                used_waiver_lines=(),
            )
        findings, used = self._check_module(module)
        return FileResult(
            relpath=module.relpath,
            findings=tuple(findings),
            summary=summarize_module(module),
            used_waiver_lines=tuple(sorted(used)),
        )

    def check_paths(
        self,
        paths: Iterable[Path],
        root: Path | None = None,
        jobs: int = 1,
        cache: "LintCache | None" = None,
    ) -> list[Finding]:
        """Findings for every ``*.py`` file under ``paths``.

        The per-file pass fans out over ``jobs`` processes (via
        :func:`repro.parallel.pmap`) and consults ``cache`` (content-hash
        keyed, see :mod:`repro.simlint.cache`) when given; both shortcuts
        require the default rule set, since workers and cache entries
        re-create it by name.  The project pass then joins every file
        summary, runs the project rules, and reports stale waivers
        (SL003) that suppressed nothing anywhere.
        """
        results = self._file_results(
            list(iter_python_files(paths)), root, jobs, cache
        )
        findings = [finding for result in results for finding in result.findings]
        findings.extend(self._project_findings(results))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def _file_results(
        self,
        files: list[Path],
        root: Path | None,
        jobs: int,
        cache: "LintCache | None",
    ) -> list[FileResult]:
        if (jobs > 1 or cache is not None) and not self._default_rules:
            raise ValueError(
                "jobs/cache require the default rule set: pool workers and "
                "cache entries re-create the registered rules by name"
            )
        if cache is None:
            if jobs > 1:
                from repro.parallel import pmap

                payloads = [
                    (str(path), str(root) if root is not None else None)
                    for path in files
                ]
                return list(pmap(_lint_file_payload, payloads, jobs=jobs))
            return [self.check_file(path, root=root) for path in files]

        results: dict[int, FileResult] = {}
        misses: list[tuple[int, Path, str]] = []
        for index, path in enumerate(files):
            try:
                content_hash = cache.content_hash(path)
            except OSError:
                content_hash = ""
            cached = cache.get(content_hash) if content_hash else None
            # A file's relpath depends on the lint root, not its content;
            # reject hits recorded under a different root.
            if cached is not None and cached.relpath == _relpath_for(path, root):
                results[index] = cached
            else:
                misses.append((index, path, content_hash))
        if misses:
            if jobs > 1 and len(misses) > 1:
                from repro.parallel import pmap

                payloads = [
                    (str(path), str(root) if root is not None else None)
                    for _, path, _ in misses
                ]
                fresh = list(pmap(_lint_file_payload, payloads, jobs=jobs))
            else:
                fresh = [
                    self.check_file(path, root=root) for _, path, _ in misses
                ]
            for (index, _, content_hash), result in zip(misses, fresh):
                results[index] = result
                if content_hash:
                    cache.put(content_hash, result)
        return [results[index] for index in range(len(files))]

    def _project_findings(self, results: Sequence[FileResult]) -> list[Finding]:
        from repro.simlint.project import ProjectGraph, waiver_for_summary

        summaries = [
            result.summary for result in results if result.summary is not None
        ]
        by_relpath = {summary.relpath: summary for summary in summaries}
        used: dict[str, set[int]] = {
            result.relpath: set(result.used_waiver_lines) for result in results
        }
        graph = ProjectGraph({summary.module: summary for summary in summaries})
        findings: list[Finding] = []
        for rule in self._project_rules:
            for finding in rule.check_project(graph):  # type: ignore[attr-defined]
                summary = by_relpath.get(finding.path)
                if summary is not None:
                    waiver = waiver_for_summary(summary, finding)
                    if waiver is not None and waiver.reason is not None:
                        finding = replace(
                            finding, waived=True, waiver_reason=waiver.reason
                        )
                        used.setdefault(finding.path, set()).add(waiver.line)
                findings.append(finding)
        if self._default_rules:
            findings.extend(self._stale_waivers(summaries, used))
        return findings

    @staticmethod
    def _stale_waivers(
        summaries: Sequence["ModuleSummary"],
        used: dict[str, set[int]],
    ) -> Iterator[Finding]:
        """SL003: justified waivers that suppressed nothing this run.

        Only meaningful under the full rule set — a partial run (tests
        exercising one rule) would otherwise report every other family's
        waivers as stale.
        """
        for summary in summaries:
            used_lines = used.get(summary.relpath, set())
            for waiver in summary.waivers:
                if waiver.reason is None or waiver.line in used_lines:
                    continue
                rules_text = ", ".join(waiver.rule_ids)
                yield Finding(
                    rule_id="SL003",
                    path=summary.relpath,
                    line=waiver.line,
                    col=0,
                    message=(
                        f"stale waiver [{rules_text}]: it suppresses no "
                        "finding in this run; delete it (rules evolve — "
                        "dead waivers hide real regressions)"
                    ),
                )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``*.py`` file under the given files/directories, sorted.

    Sorted traversal keeps reports and baselines stable across
    filesystems (``iterdir`` order is platform-dependent).
    """
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Sequence[Path] | None = None, root: Path | None = None
) -> list[Finding]:
    """Convenience one-shot: lint ``paths`` (default: the repro package)."""
    if paths is None:
        package_root = Path(__file__).resolve().parent.parent
        paths = [package_root]
        root = root if root is not None else package_root.parent
    return Checker().check_paths(paths, root=root)
