"""The ``repro lint`` command.

Kept separate from :mod:`repro.cli` so the experiment front-end stays a
thin dispatcher; this module owns argument parsing, baseline plumbing
and rendering for the linter.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.simlint.baseline import Baseline, LineTextLookup
from repro.simlint.cache import LintCache, default_cache_dir
from repro.simlint.checker import Checker, Finding, ParsedModule, iter_python_files
from repro.simlint.report import (
    EXIT_CLEAN,
    EXIT_ERROR,
    exit_code,
    render_json,
    render_text,
)
from repro.simlint.rules import all_rules
from repro.simlint.rules.spec import extract_spec_constants
from repro.simlint.sarif import CHECKER_RULES, render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "Static determinism / 802.11b-spec-conformance checks for the "
            "simulator sources."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default text; sarif is SARIF 2.1.0 for CI)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="lint files across N processes (default 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "cache per-file results keyed on content hash "
            "(default: $REPRO_SIMLINT_CACHE_DIR or ~/.cache/repro-simlint)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-file result cache",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="suppress findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        metavar="PATH",
        help="adopt all current findings into PATH and exit 0",
    )
    parser.add_argument(
        "--show-waivers",
        action="store_true",
        help="also list waived findings with their justifications",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and summary, then exit",
    )
    return parser


def _default_scope() -> tuple[list[Path], Path]:
    """Lint the installed ``repro`` package when no paths are given."""
    package_root = Path(__file__).resolve().parent.parent
    return [package_root], package_root.parent


def _list_rules() -> str:
    lines = ["simlint rules:"]
    for rule in all_rules():
        lines.append(f"  {rule.rule_id}  {rule.summary}")
    for rule_id, summary in sorted(CHECKER_RULES.items()):
        lines.append(f"  {rule_id}  {summary}")
    return "\n".join(lines)


def _spec_constants(paths: Sequence[Path], root: Path) -> dict[str, object]:
    """The extracted constant table, for the JSON report."""
    for file_path in iter_python_files(paths):
        if not str(file_path).endswith("params.py"):
            continue
        if "core" not in file_path.parts:
            continue
        try:
            module = ParsedModule.parse(file_path, root=root)
        except (SyntaxError, UnicodeDecodeError):
            return {}
        return dict(extract_spec_constants(module))
    return {}


def run(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``repro lint``; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return EXIT_CLEAN
    if args.paths:
        paths = [path.resolve() for path in args.paths]
        root = Path.cwd()
    else:
        paths, root = _default_scope()
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return EXIT_ERROR

    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return EXIT_ERROR
    cache = None
    if not args.no_cache:
        cache_dir = (
            args.cache_dir if args.cache_dir is not None else default_cache_dir()
        )
        cache = LintCache(cache_dir)

    files_checked = sum(1 for _ in iter_python_files(paths))
    findings = Checker().check_paths(paths, root=root, jobs=args.jobs, cache=cache)
    waived = [finding for finding in findings if finding.waived]
    active = [finding for finding in findings if not finding.waived]
    lookup = LineTextLookup(root=root)

    if args.write_baseline is not None:
        baseline = Baseline.from_findings(findings, lookup)
        baseline.write(args.write_baseline)
        print(
            f"wrote {len(baseline)} fingerprint"
            f"{'s' if len(baseline) != 1 else ''} to {args.write_baseline}"
        )
        return EXIT_CLEAN

    baselined: list[Finding] = []
    if args.baseline is not None:
        try:
            baseline = Baseline.load(args.baseline)
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline: {error}", file=sys.stderr)
            return EXIT_ERROR
        active, baselined = baseline.split(findings, lookup)

    if args.format == "sarif":
        rendered = render_sarif(
            active,
            waived,
            baselined,
            {rule.rule_id: rule.summary for rule in all_rules()},
        )
    elif args.format == "json":
        rendered = render_json(
            active,
            waived,
            baselined,
            files_checked,
            spec_constants=_spec_constants(paths, root),
        )
    else:
        rendered = render_text(
            active,
            waived,
            baselined,
            files_checked,
            verbose_waivers=args.show_waivers,
        )
    try:
        print(rendered)
    except BrokenPipeError:  # pragma: no cover - `repro lint | head`
        pass
    return exit_code(active)
