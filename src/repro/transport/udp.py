"""UDP: connectionless datagram sockets."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ConfigurationError, TransportError
from repro.core.encapsulation import TransportProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.ip import IpLayer

#: UDP header size.
UDP_HEADER_BYTES = 8

ReceiveHandler = Callable[[Any, int, int, int], None]
# (payload, payload_bytes, src_address, src_port)


@dataclass(frozen=True)
class UdpSegment:
    """One UDP datagram's transport header + payload."""

    src_port: int
    dst_port: int
    payload: Any
    payload_bytes: int


class UdpSocket:
    """A bound UDP port."""

    def __init__(self, protocol: "UdpProtocol", port: int):
        self._protocol = protocol
        self._port = port
        self._handler: ReceiveHandler | None = None
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.datagrams_sent = 0
        self.datagrams_received = 0

    @property
    def port(self) -> int:
        """The local port number."""
        return self._port

    def on_receive(self, handler: ReceiveHandler) -> None:
        """``handler(payload, payload_bytes, src, src_port)`` per datagram."""
        self._handler = handler

    def send(self, payload: Any, payload_bytes: int, dst: int, dst_port: int) -> bool:
        """Send one datagram.  Returns False on a local queue drop."""
        if self._closed:
            raise TransportError("socket is closed")
        if payload_bytes <= 0:
            raise ConfigurationError(
                f"payload must be > 0 bytes, got {payload_bytes}"
            )
        segment = UdpSegment(self._port, dst_port, payload, payload_bytes)
        accepted = self._protocol.send_segment(segment, dst)
        if accepted:
            self.bytes_sent += payload_bytes
            self.datagrams_sent += 1
        return accepted

    def close(self) -> None:
        """Release the port."""
        if not self._closed:
            self._closed = True
            self._protocol.release(self._port)

    def _deliver(self, segment: UdpSegment, src: int) -> None:
        self.bytes_received += segment.payload_bytes
        self.datagrams_received += 1
        if self._handler is not None:
            self._handler(segment.payload, segment.payload_bytes, src, segment.src_port)


class UdpProtocol:
    """The per-node UDP endpoint table."""

    def __init__(self, ip: "IpLayer"):
        self._ip = ip
        self._sockets: dict[int, UdpSocket] = {}
        self._next_ephemeral = 49152
        ip.register_protocol(TransportProtocol.UDP.value, self._on_segment)

    def bind(self, port: int | None = None) -> UdpSocket:
        """Open a socket on ``port`` (or an ephemeral one)."""
        if port is None:
            while self._next_ephemeral in self._sockets:
                self._next_ephemeral += 1
            port = self._next_ephemeral
            self._next_ephemeral += 1
        if port in self._sockets:
            raise TransportError(f"udp port {port} already bound")
        socket = UdpSocket(self, port)
        self._sockets[port] = socket
        return socket

    def release(self, port: int) -> None:
        """Free a bound port."""
        self._sockets.pop(port, None)

    def send_segment(self, segment: UdpSegment, dst: int) -> bool:
        """Hand a segment to IP."""
        tracer = self._ip.tracer
        if tracer.audit:
            tracer.emit_audit(
                self._ip.sim.now_ns,
                f"udp.{self._ip.address}",
                "tx",
                dst=dst,
                dst_port=segment.dst_port,
                size_bytes=segment.payload_bytes,
            )
        return self._ip.send(
            segment, segment.payload_bytes + UDP_HEADER_BYTES, dst, TransportProtocol.UDP.value
        )

    def _on_segment(self, segment: UdpSegment, src: int) -> None:
        tracer = self._ip.tracer
        if tracer.audit:
            tracer.emit_audit(
                self._ip.sim.now_ns,
                f"udp.{self._ip.address}",
                "rx",
                src=src,
                dst_port=segment.dst_port,
                size_bytes=segment.payload_bytes,
            )
        socket = self._sockets.get(segment.dst_port)
        if socket is not None:
            socket._deliver(segment, src)
