"""Transport protocols: UDP and TCP Reno.

The paper's measurements use CBR-over-UDP and ftp-over-TCP; both are
implemented here over the IP layer.  TCP is a Reno implementation with
slow start, congestion avoidance, fast retransmit/recovery, Jacobson RTO
estimation and delayed ACKs.
"""

from repro.transport.udp import UDP_HEADER_BYTES, UdpProtocol, UdpSegment, UdpSocket
from repro.transport.tcp import (
    TCP_HEADER_BYTES,
    TcpConfig,
    TcpConnection,
    TcpProtocol,
    TcpSegment,
)

__all__ = [
    "TCP_HEADER_BYTES",
    "TcpConfig",
    "TcpConnection",
    "TcpProtocol",
    "TcpSegment",
    "UDP_HEADER_BYTES",
    "UdpProtocol",
    "UdpSegment",
    "UdpSocket",
]
