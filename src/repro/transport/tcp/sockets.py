"""The per-node TCP protocol object: listeners and demultiplexing."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import TransportError
from repro.core.encapsulation import TransportProtocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.ip import IpLayer
from repro.sim.engine import Simulator
from repro.sim.tracing import Tracer
from repro.transport.tcp.connection import TcpConfig, TcpConnection
from repro.transport.tcp.segment import TcpSegment

AcceptHandler = Callable[[TcpConnection], None]


class TcpProtocol:
    """Connection table + listener table for one node."""

    def __init__(
        self,
        sim: Simulator,
        ip: "IpLayer",
        config: TcpConfig | None = None,
        tracer: Tracer | None = None,
    ):
        self._sim = sim
        self._ip = ip
        self._config = config if config is not None else TcpConfig()
        self._tracer = tracer if tracer is not None else Tracer()
        self._listeners: dict[int, AcceptHandler] = {}
        self._connections: dict[tuple[int, int, int], TcpConnection] = {}
        self._next_ephemeral = 49152
        ip.register_protocol(TransportProtocol.TCP.value, self._on_segment)

    @property
    def config(self) -> TcpConfig:
        """The default configuration for new connections."""
        return self._config

    def listen(self, port: int, on_connection: AcceptHandler) -> None:
        """Accept inbound connections on ``port``."""
        if port in self._listeners:
            raise TransportError(f"tcp port {port} already listening")
        self._listeners[port] = on_connection

    def connect(
        self,
        remote_addr: int,
        remote_port: int,
        local_port: int | None = None,
        config: TcpConfig | None = None,
    ) -> TcpConnection:
        """Active open to ``remote_addr:remote_port``."""
        if local_port is None:
            local_port = self._allocate_port()
        key = (local_port, remote_addr, remote_port)
        if key in self._connections:
            raise TransportError(f"connection {key} already exists")
        connection = TcpConnection(
            self._sim,
            self,
            config if config is not None else self._config,
            local_addr=self._ip.address,
            local_port=local_port,
            remote_addr=remote_addr,
            remote_port=remote_port,
            tracer=self._tracer,
        )
        self._connections[key] = connection
        connection.connect()
        return connection

    def send_segment(self, segment: TcpSegment, dst: int) -> bool:
        """Hand a segment to the IP layer."""
        return self._ip.send(segment, segment.size_bytes, dst, TransportProtocol.TCP.value)

    @property
    def connection_count(self) -> int:
        """Number of live entries in the connection table."""
        return len(self._connections)

    def abort_all(self) -> None:
        """Crash support: drop every connection without a FIN exchange.

        In-flight state is lost exactly as on a real power failure; the
        peer learns of the abort only through its own retransmission
        timeouts.  Listeners survive — a rebooted server accepts new
        connections on the same ports.
        """
        for connection in list(self._connections.values()):
            connection.abort()
        self._connections.clear()

    def _allocate_port(self) -> int:
        while any(key[0] == self._next_ephemeral for key in self._connections):
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def _on_segment(self, segment: TcpSegment, src: int) -> None:
        key = (segment.dst_port, src, segment.src_port)
        connection = self._connections.get(key)
        if connection is not None:
            connection.on_segment(segment)
            return
        if segment.syn and segment.dst_port in self._listeners:
            connection = TcpConnection(
                self._sim,
                self,
                self._config,
                local_addr=self._ip.address,
                local_port=segment.dst_port,
                remote_addr=src,
                remote_port=segment.src_port,
                tracer=self._tracer,
            )
            self._connections[key] = connection
            connection.accept_syn(segment)
            self._listeners[segment.dst_port](connection)
        # Segments for unknown connections are silently dropped (no RST
        # in this simulation).
