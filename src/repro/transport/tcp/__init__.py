"""TCP Reno.

The implementation is split into orthogonal, individually tested pieces:

* :mod:`repro.transport.tcp.segment` — the wire format (header fields and
  byte accounting only; payload contents are abstract).
* :mod:`repro.transport.tcp.rto` — Jacobson/Karels RTO estimation with
  exponential backoff.
* :mod:`repro.transport.tcp.congestion` — Reno window logic: slow start,
  congestion avoidance, fast retransmit / fast recovery.
* :mod:`repro.transport.tcp.buffers` — send-buffer accounting and the
  receive-side reassembly queue.
* :mod:`repro.transport.tcp.connection` — the connection state machine.
* :mod:`repro.transport.tcp.sockets` — the per-node protocol object:
  listeners, connectors, demultiplexing.
"""

from repro.transport.tcp.segment import TCP_HEADER_BYTES, TcpSegment
from repro.transport.tcp.rto import RtoEstimator
from repro.transport.tcp.congestion import RenoCongestionControl
from repro.transport.tcp.buffers import ReceiveReassembly, SendBuffer
from repro.transport.tcp.connection import TcpConfig, TcpConnection, TcpState
from repro.transport.tcp.sockets import TcpProtocol

__all__ = [
    "ReceiveReassembly",
    "RenoCongestionControl",
    "RtoEstimator",
    "SendBuffer",
    "TCP_HEADER_BYTES",
    "TcpConfig",
    "TcpConnection",
    "TcpProtocol",
    "TcpSegment",
    "TcpState",
]
