"""TCP segment wire format (byte accounting, no payload contents)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: TCP header without options.
TCP_HEADER_BYTES = 20


@dataclass(frozen=True)
class TcpSegment:
    """One TCP segment."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    payload_bytes: int = 0
    syn: bool = False
    fin: bool = False
    ack_flag: bool = True
    window: int = 65535

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError(
                f"payload must be >= 0 bytes, got {self.payload_bytes}"
            )
        if self.seq < 0 or self.ack < 0:
            raise ConfigurationError("sequence numbers must be >= 0")

    @property
    def size_bytes(self) -> int:
        """Bytes handed to IP (header + payload)."""
        return TCP_HEADER_BYTES + self.payload_bytes

    @property
    def seq_space(self) -> int:
        """Sequence numbers this segment consumes (SYN/FIN count one)."""
        return self.payload_bytes + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def end_seq(self) -> int:
        """First sequence number after this segment."""
        return self.seq + self.seq_space

    def describe(self) -> str:
        """Short human-readable summary for traces."""
        flags = "".join(
            flag
            for flag, on in (("S", self.syn), ("F", self.fin), (".", self.ack_flag))
            if on
        )
        return f"[{flags}] seq={self.seq} ack={self.ack} len={self.payload_bytes}"
