"""The TCP connection state machine.

Sequence space: the SYN occupies sequence 0, stream byte ``i`` occupies
sequence ``1 + i``, and the FIN occupies one sequence number after the
last stream byte.  Both sides use an initial sequence number of 0 (the
simulation never reuses connections, so randomised ISNs buy nothing).

The machine implements: three-way handshake, cumulative ACKs with
duplicate-ACK counting, Reno fast retransmit / fast recovery, Karn's rule
(no RTT samples across retransmissions, exponential RTO backoff),
delayed ACKs (every second in-order segment or a timeout, immediate on
out-of-order data), zero-copy byte accounting, and a simplified
FIN close (each direction closes once; no TIME_WAIT).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.errors import TransportError
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.sim.tracing import Tracer
from repro.transport.tcp.buffers import ReceiveReassembly, SendBuffer
from repro.transport.tcp.congestion import RenoCongestionControl
from repro.transport.tcp.rto import RtoEstimator
from repro.transport.tcp.segment import TcpSegment


class TcpState(enum.Enum):
    """Simplified connection states."""

    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    SYN_RCVD = "syn-rcvd"
    ESTABLISHED = "established"
    FIN_SENT = "fin-sent"


@dataclass(frozen=True)
class TcpConfig:
    """Tunables for one connection (defaults match the paper's era)."""

    mss_bytes: int = 512
    rwnd_bytes: int = 65535
    initial_cwnd_segments: int = 2
    delayed_ack: bool = True
    delack_timeout_s: float = 0.2
    initial_rto_s: float = 1.0
    min_rto_s: float = 0.2
    max_rto_s: float = 60.0
    max_retransmissions: int = 15
    connect_retries: int = 6


class SegmentTransport(Protocol):
    """What a connection needs from the protocol layer."""

    def send_segment(self, segment: TcpSegment, dst: int) -> bool:
        """Hand a segment to IP; False on local queue rejection."""


class TcpConnection:
    """One end of a TCP connection."""

    def __init__(
        self,
        sim: Simulator,
        transport: SegmentTransport,
        config: TcpConfig,
        local_addr: int,
        local_port: int,
        remote_addr: int,
        remote_port: int,
        tracer: Tracer | None = None,
    ):
        self._sim = sim
        self._transport = transport
        self.config = config
        self.local_addr = local_addr
        self.local_port = local_port
        self.remote_addr = remote_addr
        self.remote_port = remote_port
        self._tracer = tracer if tracer is not None else Tracer()

        self.state = TcpState.CLOSED
        # Sender side.
        self.snd_una = 0
        self.snd_nxt = 0
        self.peer_window = config.rwnd_bytes
        self.send_buffer = SendBuffer()
        self.congestion = RenoCongestionControl(
            config.mss_bytes, config.initial_cwnd_segments
        )
        self.rto = RtoEstimator(
            config.initial_rto_s, config.min_rto_s, config.max_rto_s
        )
        self._rexmit_timer = Timer(sim, self._on_rexmit_timeout, name="tcp-rexmit")
        self._pump_timer = Timer(sim, self._pump, name="tcp-pump")
        self._timing: tuple[int, int] | None = None  # (seq to ack, start ns)
        self._retransmit_count = 0
        self._fin_seq: int | None = None
        # Receiver side.
        self.reassembly = ReceiveReassembly()
        self._delack_timer = Timer(sim, self._send_ack, name="tcp-delack")
        self._unacked_segments = 0
        self._peer_fin_seen = False
        self._pending_fin_seq: int | None = None

        # Statistics.
        self.bytes_delivered = 0
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.acks_sent = 0
        self.timeouts = 0
        self.fast_retransmits = 0

        # Application callbacks.
        self.on_established: Callable[[], None] = lambda: None
        self.on_deliver: Callable[[int], None] = lambda nbytes: None
        self.on_send_space: Callable[[], None] = lambda: None
        self.on_peer_closed: Callable[[], None] = lambda: None
        self.on_closed: Callable[[str], None] = lambda reason: None

    # ----------------------------------------------------------- opening

    def connect(self) -> None:
        """Active open: send the SYN."""
        if self.state is not TcpState.CLOSED:
            raise TransportError(f"connect in state {self.state}")
        self.state = TcpState.SYN_SENT
        if self._tracer.audit:
            self._audit("open", role="active", peer=self.remote_addr)
        self._send_control(syn=True)
        self.snd_nxt = 1
        self._rexmit_timer.start_s(self.rto.rto_s)

    def accept_syn(self, segment: TcpSegment) -> None:
        """Passive open: a listener routed the peer's SYN to us."""
        if self.state is not TcpState.CLOSED:
            raise TransportError(f"accept_syn in state {self.state}")
        self.state = TcpState.SYN_RCVD
        if self._tracer.audit:
            self._audit("open", role="passive", peer=self.remote_addr)
        self.reassembly = ReceiveReassembly(rcv_nxt=segment.seq + 1)
        self.peer_window = segment.window
        self._send_control(syn=True)  # SYN|ACK (ack_flag always set)
        self.snd_nxt = 1
        self._rexmit_timer.start_s(self.rto.rto_s)

    # ----------------------------------------------------------- writing

    def send(self, nbytes: int) -> int:
        """Application write; returns bytes accepted into the buffer."""
        taken = self.send_buffer.write(nbytes)
        self._pump()
        return taken

    @property
    def send_space_bytes(self) -> int:
        """Free space in the send buffer."""
        return self.send_buffer.free_bytes

    def close(self) -> None:
        """No more application data; FIN goes out once drained."""
        if not self.send_buffer.closed:
            self.send_buffer.close()
            self._pump()

    # ------------------------------------------------------ segment input

    def on_segment(self, segment: TcpSegment) -> None:
        """Process one inbound segment."""
        if self.state is TcpState.CLOSED:
            return
        self._trace("rx", desc=segment.describe())
        if self.state is TcpState.SYN_SENT:
            if segment.syn and segment.ack_flag and segment.ack >= 1:
                self.snd_una = 1
                self.reassembly = ReceiveReassembly(rcv_nxt=segment.seq + 1)
                self.peer_window = segment.window
                self.state = TcpState.ESTABLISHED
                self._rexmit_timer.cancel()
                self._retransmit_count = 0
                self._send_ack()
                self.on_established()
                self._pump()
            return
        if segment.syn:
            # Duplicate SYN (our SYN|ACK was lost): answer it again.
            if self.state is TcpState.SYN_RCVD:
                self._send_control(syn=True, consume_seq=False)
            return
        self._process_ack(segment)
        if segment.payload_bytes > 0:
            self._process_payload(segment)
        if segment.fin:
            self._process_fin(segment)
        self._pump()
        if self._tracer.audit and self.state is not TcpState.CLOSED:
            self._audit(
                "state",
                snd_una=self.snd_una,
                snd_nxt=self.snd_nxt,
                rcv_nxt=self.reassembly.rcv_nxt,
            )

    def _process_ack(self, segment: TcpSegment) -> None:
        if not segment.ack_flag:
            return
        self.peer_window = segment.window
        if segment.ack > self.snd_nxt:
            return  # acks data we never sent; ignore
        if segment.ack > self.snd_una:
            newly = segment.ack - self.snd_una
            self.snd_una = segment.ack
            self._retransmit_count = 0
            stream_acked = min(self.snd_una - 1, self.send_buffer.written_total)
            if stream_acked > 0:
                self.send_buffer.acked(stream_acked)
            if self._timing is not None and self.snd_una >= self._timing[0]:
                seq, start_ns = self._timing
                if self._sim.now_ns > start_ns:
                    self.rto.sample((self._sim.now_ns - start_ns) / 1e9)
                self._timing = None
            if self.state is TcpState.SYN_RCVD:
                self.state = TcpState.ESTABLISHED
                self.on_established()
            elif self.state in (TcpState.ESTABLISHED, TcpState.FIN_SENT):
                self.congestion.on_new_ack(newly)
            if self._fin_seq is not None and self.snd_una > self._fin_seq:
                self._shutdown("closed")
                return
            if self.snd_una < self.snd_nxt:
                self._rexmit_timer.start_s(self.rto.rto_s)
            else:
                self._rexmit_timer.cancel()
            self.on_send_space()
        elif (
            segment.ack == self.snd_una
            and self.snd_nxt > self.snd_una
            and segment.payload_bytes == 0
            and not segment.fin
        ):
            if self.congestion.on_duplicate_ack(self._flight_bytes()):
                self._fast_retransmit()

    def _process_payload(self, segment: TcpSegment) -> None:
        newly, in_order = self.reassembly.offer(segment.seq, segment.payload_bytes)
        if newly > 0:
            self.bytes_delivered += newly
            self.on_deliver(newly)
            self._try_consume_fin()
        if in_order and newly > 0:
            self._schedule_ack()
        else:
            # Out-of-order or duplicate data: ACK immediately so the
            # sender sees duplicate ACKs (fast retransmit trigger).
            self._send_ack()

    def _process_fin(self, segment: TcpSegment) -> None:
        if not self._peer_fin_seen:
            self._pending_fin_seq = segment.seq + segment.payload_bytes
            self._try_consume_fin()
        self._send_ack()

    def _try_consume_fin(self) -> None:
        """Advance rcv_nxt over the FIN once all stream data preceded it.

        The FIN's sequence slot must never enter the reassembly buffer
        early: a later gap-filling data segment would merge it into the
        delivered-byte count.
        """
        if (
            self._pending_fin_seq is not None
            and self.reassembly.rcv_nxt == self._pending_fin_seq
        ):
            self.reassembly.offer(self._pending_fin_seq, 1)
            self._pending_fin_seq = None
            self._peer_fin_seen = True
            self.on_peer_closed()

    # ------------------------------------------------------------ output

    def _flight_bytes(self) -> int:
        return self.snd_nxt - self.snd_una

    def _stream_offset(self, seq: int) -> int:
        return seq - 1

    def _pump(self) -> None:
        if self.state is not TcpState.ESTABLISHED:
            return
        while True:
            window = min(self.congestion.cwnd_bytes, self.peer_window)
            budget = window - self._flight_bytes()
            available = self.send_buffer.available_from(
                self._stream_offset(self.snd_nxt)
            )
            length = min(self.config.mss_bytes, budget, available)
            if length <= 0:
                break
            if not self._send_data(self.snd_nxt, length):
                # Local queue full: retry shortly rather than spinning.
                self._pump_timer.start_s(0.01)
                return
            if self._timing is None:
                self._timing = (self.snd_nxt + length, self._sim.now_ns)
            self.snd_nxt += length
            if not self._rexmit_timer.running:
                self._rexmit_timer.start_s(self.rto.rto_s)
        self._maybe_send_fin()

    def _maybe_send_fin(self) -> None:
        if (
            self.send_buffer.closed
            and self._fin_seq is None
            and self._stream_offset(self.snd_nxt) >= self.send_buffer.written_total
        ):
            self._fin_seq = self.snd_nxt
            self._send_control(fin=True)
            self.snd_nxt += 1
            self.state = TcpState.FIN_SENT
            self._rexmit_timer.start_s(self.rto.rto_s)

    def _send_data(self, seq: int, length: int) -> bool:
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self.reassembly.rcv_nxt,
            payload_bytes=length,
            window=self.config.rwnd_bytes,
        )
        accepted = self._transport.send_segment(segment, self.remote_addr)
        if accepted:
            self.segments_sent += 1
            self._ack_piggybacked()
            self._trace("tx", desc=segment.describe())
        return accepted

    def _send_control(self, syn: bool = False, fin: bool = False,
                      consume_seq: bool = True) -> None:
        seq = self.snd_nxt if consume_seq else max(0, self.snd_nxt - 1)
        if syn:
            seq = 0
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self.reassembly.rcv_nxt,
            syn=syn,
            fin=fin,
            window=self.config.rwnd_bytes,
        )
        self._transport.send_segment(segment, self.remote_addr)
        self.segments_sent += 1
        self._trace("tx", desc=segment.describe())

    def _send_ack(self) -> None:
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_nxt,
            ack=self.reassembly.rcv_nxt,
            payload_bytes=0,
            window=self.config.rwnd_bytes,
        )
        self._transport.send_segment(segment, self.remote_addr)
        self.acks_sent += 1
        self._ack_piggybacked()
        self._trace("tx_ack", ack=self.reassembly.rcv_nxt)

    def _ack_piggybacked(self) -> None:
        self._unacked_segments = 0
        self._delack_timer.cancel()

    def _schedule_ack(self) -> None:
        if not self.config.delayed_ack:
            self._send_ack()
            return
        self._unacked_segments += 1
        if self._unacked_segments >= 2:
            self._send_ack()
        elif not self._delack_timer.running:
            self._delack_timer.start_s(self.config.delack_timeout_s)

    # ------------------------------------------------- loss and recovery

    def _fast_retransmit(self) -> None:
        self.fast_retransmits += 1
        self._retransmit_one()
        self._timing = None
        self._rexmit_timer.start_s(self.rto.rto_s)

    def _retransmit_one(self) -> None:
        if self._fin_seq is not None and self.snd_una == self._fin_seq:
            self._send_control(fin=True, consume_seq=False)
            self.segments_retransmitted += 1
            return
        length = min(self.config.mss_bytes, self._flight_bytes())
        if self._fin_seq is not None:
            length = min(length, self._fin_seq - self.snd_una)
        if length <= 0:
            return
        if self._send_data(self.snd_una, length):
            self.segments_retransmitted += 1

    def _on_rexmit_timeout(self) -> None:
        self.timeouts += 1
        self._retransmit_count += 1
        if self.state is TcpState.SYN_SENT or self.state is TcpState.SYN_RCVD:
            if self._retransmit_count > self.config.connect_retries:
                self._shutdown("connect-timeout")
                return
            self._send_control(syn=True, consume_seq=False)
            self.rto.backoff()
            self._rexmit_timer.start_s(self.rto.rto_s)
            return
        if self._retransmit_count > self.config.max_retransmissions:
            self._shutdown("retransmission-limit")
            return
        if self._flight_bytes() <= 0:
            return
        self.congestion.on_timeout(self._flight_bytes())
        self.rto.backoff()
        self._timing = None
        self._retransmit_one()
        self._rexmit_timer.start_s(self.rto.rto_s)

    # ------------------------------------------------------------ closing

    def _shutdown(self, reason: str) -> None:
        if self.state is TcpState.CLOSED:
            return
        self.state = TcpState.CLOSED
        self._rexmit_timer.cancel()
        self._pump_timer.cancel()
        self._delack_timer.cancel()
        self._trace("closed", reason=reason)
        if self._tracer.audit and reason != "closed":
            self._audit("abort", reason=reason)
        self.on_closed(reason)

    def abort(self) -> None:
        """Drop the connection without a FIN exchange."""
        self._shutdown("aborted")

    # --------------------------------------------------------- utilities

    def _trace(self, event: str, **fields: Any) -> None:
        self._tracer.emit(
            self._sim.now_ns,
            f"tcp.{self.local_addr}:{self.local_port}",
            event,
            **fields,
        )

    def _audit(self, event: str, **fields: Any) -> None:
        """Audit-channel event (callers gate on ``tracer.audit``)."""
        self._tracer.emit_audit(
            self._sim.now_ns,
            f"tcp.{self.local_addr}:{self.local_port}",
            event,
            **fields,
        )
