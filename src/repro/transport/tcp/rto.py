"""Jacobson/Karels retransmission-timeout estimation.

SRTT and RTTVAR follow RFC 6298 (alpha = 1/8, beta = 1/4); the RTO is
SRTT + 4 RTTVAR clamped to [min_rto, max_rto], doubling on every
timeout until the next valid sample.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class RtoEstimator:
    """Smoothed RTT tracking and timeout selection."""

    ALPHA = 1.0 / 8.0
    BETA = 1.0 / 4.0

    def __init__(
        self,
        initial_rto_s: float = 1.0,
        min_rto_s: float = 0.2,
        max_rto_s: float = 60.0,
    ):
        if not 0 < min_rto_s <= initial_rto_s <= max_rto_s:
            raise ConfigurationError(
                "RTO bounds must satisfy 0 < min <= initial <= max, got "
                f"min={min_rto_s}, initial={initial_rto_s}, max={max_rto_s}"
            )
        self._min_rto_s = min_rto_s
        self._max_rto_s = max_rto_s
        self._srtt_s: float | None = None
        self._rttvar_s = 0.0
        self._rto_s = initial_rto_s
        self._backoff_multiplier = 1

    @property
    def rto_s(self) -> float:
        """The current retransmission timeout, with backoff applied."""
        return min(self._rto_s * self._backoff_multiplier, self._max_rto_s)

    @property
    def srtt_s(self) -> float | None:
        """Smoothed RTT, None before the first sample."""
        return self._srtt_s

    def sample(self, rtt_s: float) -> None:
        """Feed one RTT measurement (never from a retransmitted segment)."""
        if rtt_s <= 0:
            raise ConfigurationError(f"RTT sample must be > 0 s, got {rtt_s}")
        if self._srtt_s is None:
            self._srtt_s = rtt_s
            self._rttvar_s = rtt_s / 2.0
        else:
            error = rtt_s - self._srtt_s
            self._rttvar_s += self.BETA * (abs(error) - self._rttvar_s)
            self._srtt_s += self.ALPHA * error
        self._rto_s = min(
            max(self._srtt_s + 4.0 * self._rttvar_s, self._min_rto_s),
            self._max_rto_s,
        )
        self._backoff_multiplier = 1

    def backoff(self) -> None:
        """Double the timeout after a retransmission (Karn's algorithm)."""
        self._backoff_multiplier = min(self._backoff_multiplier * 2, 64)
