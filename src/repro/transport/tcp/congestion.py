"""Reno congestion control.

Window arithmetic is in bytes.  The state machine is the classic one:
slow start below ssthresh, AIMD congestion avoidance above it, fast
retransmit on the third duplicate ACK, fast recovery with window
inflation until a new ACK arrives, multiplicative decrease to one MSS on
a retransmission timeout.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class RenoCongestionControl:
    """Reno window logic, independent of timers and wire details."""

    def __init__(
        self,
        mss_bytes: int,
        initial_cwnd_segments: int = 2,
        initial_ssthresh_bytes: int = 65535,
    ):
        if mss_bytes <= 0:
            raise ConfigurationError(f"MSS must be > 0 bytes, got {mss_bytes}")
        if initial_cwnd_segments < 1:
            raise ConfigurationError("initial cwnd must be >= 1 segment")
        self._mss = mss_bytes
        self.cwnd_bytes = initial_cwnd_segments * mss_bytes
        self.ssthresh_bytes = initial_ssthresh_bytes
        self.duplicate_acks = 0
        self.in_fast_recovery = False

    @property
    def mss_bytes(self) -> int:
        """The maximum segment size the windows are counted against."""
        return self._mss

    @property
    def in_slow_start(self) -> bool:
        """True while cwnd grows exponentially."""
        return not self.in_fast_recovery and self.cwnd_bytes < self.ssthresh_bytes

    def on_new_ack(self, acked_bytes: int) -> None:
        """An ACK advanced snd_una by ``acked_bytes``."""
        if acked_bytes <= 0:
            raise ConfigurationError(f"acked bytes must be > 0, got {acked_bytes}")
        self.duplicate_acks = 0
        if self.in_fast_recovery:
            # Leave recovery: deflate to ssthresh.
            self.in_fast_recovery = False
            self.cwnd_bytes = self.ssthresh_bytes
            return
        if self.cwnd_bytes < self.ssthresh_bytes:
            self.cwnd_bytes += min(acked_bytes, self._mss)
        else:
            self.cwnd_bytes += max(1, self._mss * self._mss // self.cwnd_bytes)

    def on_duplicate_ack(self, flight_bytes: int) -> bool:
        """A duplicate ACK arrived; True when fast retransmit must fire."""
        if self.in_fast_recovery:
            # Window inflation: each dup signals a departed segment.
            self.cwnd_bytes += self._mss
            return False
        self.duplicate_acks += 1
        if self.duplicate_acks < 3:
            return False
        self.ssthresh_bytes = max(flight_bytes // 2, 2 * self._mss)
        self.cwnd_bytes = self.ssthresh_bytes + 3 * self._mss
        self.in_fast_recovery = True
        return True

    def on_timeout(self, flight_bytes: int) -> None:
        """Retransmission timeout: collapse to one segment."""
        self.ssthresh_bytes = max(flight_bytes // 2, 2 * self._mss)
        self.cwnd_bytes = self._mss
        self.duplicate_acks = 0
        self.in_fast_recovery = False
