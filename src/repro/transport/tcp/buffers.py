"""Send-buffer accounting and receive-side reassembly.

Payload contents are abstract (the simulation moves byte *counts*), so
the send buffer is a pair of counters and the reassembly queue is an
interval set over sequence space.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, TransportError


class SendBuffer:
    """Bytes the application has written but TCP has not yet acked."""

    def __init__(self, limit_bytes: int = 1 << 22):
        if limit_bytes <= 0:
            raise ConfigurationError("send buffer limit must be > 0 bytes")
        self._limit = limit_bytes
        self._written_total = 0
        self._acked_total = 0
        self._closed = False

    @property
    def written_total(self) -> int:
        """Cumulative bytes the application has written."""
        return self._written_total

    @property
    def buffered_bytes(self) -> int:
        """Bytes written but not yet acknowledged."""
        return self._written_total - self._acked_total

    @property
    def free_bytes(self) -> int:
        """Space the application may still write into."""
        return self._limit - self.buffered_bytes

    @property
    def closed(self) -> bool:
        """True after the application signalled end of stream."""
        return self._closed

    def write(self, nbytes: int) -> int:
        """Accept up to ``nbytes``; returns how many were taken."""
        if self._closed:
            raise TransportError("cannot write after close")
        if nbytes < 0:
            raise ConfigurationError(f"write size must be >= 0, got {nbytes}")
        taken = min(nbytes, self.free_bytes)
        self._written_total += taken
        return taken

    def close(self) -> None:
        """No more application data will be written."""
        self._closed = True

    def acked(self, cumulative_stream_bytes: int) -> None:
        """The peer has acknowledged the stream up to this byte count."""
        if cumulative_stream_bytes > self._written_total:
            raise TransportError(
                f"peer acked {cumulative_stream_bytes} B but only "
                f"{self._written_total} B were written"
            )
        self._acked_total = max(self._acked_total, cumulative_stream_bytes)

    def available_from(self, stream_offset: int) -> int:
        """Unsent bytes at and beyond ``stream_offset``."""
        return max(0, self._written_total - stream_offset)


class ReceiveReassembly:
    """Tracks in-order delivery over sequence space."""

    def __init__(self, rcv_nxt: int = 0):
        self._rcv_nxt = rcv_nxt
        self._segments: list[tuple[int, int]] = []  # disjoint, sorted

    @property
    def rcv_nxt(self) -> int:
        """The next expected sequence number."""
        return self._rcv_nxt

    @property
    def out_of_order_bytes(self) -> int:
        """Bytes buffered beyond the in-order point."""
        return sum(end - start for start, end in self._segments)

    def offer(self, seq: int, length: int) -> tuple[int, bool]:
        """Accept a segment; returns (newly in-order bytes, was in order).

        ``was_in_order`` is False when the segment left a gap (old data or
        out-of-order data) — the caller uses it for immediate-ACK rules.
        """
        if length < 0:
            raise ConfigurationError(f"length must be >= 0, got {length}")
        end = seq + length
        in_order = seq <= self._rcv_nxt and end > self._rcv_nxt
        if end > self._rcv_nxt:
            self._insert(max(seq, self._rcv_nxt), end)
        before = self._rcv_nxt
        self._advance()
        return self._rcv_nxt - before, in_order

    def _insert(self, start: int, end: int) -> None:
        merged = []
        for s, e in self._segments:
            if e < start or s > end:
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        merged.append((start, end))
        merged.sort()
        self._segments = merged

    def _advance(self) -> None:
        while self._segments and self._segments[0][0] <= self._rcv_nxt:
            start, end = self._segments.pop(0)
            self._rcv_nxt = max(self._rcv_nxt, end)
