"""Encapsulation-overhead stack (Figure 1 of the paper).

A stream of ``m`` application bytes is wrapped by the transport protocol
(UDP or TCP), by IP, by the MAC header + FCS and finally by the PLCP
preamble/header.  This module computes the byte counts at each layer; the
airtime module turns them into channel time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: IPv4 header without options.
IP_HEADER_BYTES = 20


class TransportProtocol(enum.Enum):
    """Transport protocol used by the application (paper uses both)."""

    UDP = "udp"
    TCP = "tcp"

    @property
    def header_bytes(self) -> int:
        """Transport header size: 8 bytes for UDP, 20 for TCP."""
        if self is TransportProtocol.UDP:
            return 8
        return 20


def mac_payload_bytes(
    app_payload_bytes: int,
    transport: TransportProtocol = TransportProtocol.UDP,
    ip_header_bytes: int = IP_HEADER_BYTES,
) -> int:
    """Bytes handed to the MAC for ``app_payload_bytes`` application bytes.

    This is the MAC *payload* (MSDU): application data + transport header +
    IP header.  The MAC header/FCS and PLCP are accounted separately.
    """
    if app_payload_bytes < 0:
        raise ConfigurationError(
            f"application payload must be >= 0 bytes, got {app_payload_bytes}"
        )
    return app_payload_bytes + transport.header_bytes + ip_header_bytes


@dataclass(frozen=True)
class LayerOverhead:
    """One row of the Figure-1 stack: a layer and the bytes it carries."""

    layer: str
    header_bytes: int
    payload_bytes: int

    @property
    def total_bytes(self) -> int:
        """Header plus payload at this layer."""
        return self.header_bytes + self.payload_bytes


def encapsulation_report(
    app_payload_bytes: int,
    transport: TransportProtocol = TransportProtocol.UDP,
    mac_header_bytes: int = 34,
) -> list[LayerOverhead]:
    """Figure-1 style report of the encapsulation of ``m`` bytes.

    Returns one :class:`LayerOverhead` per layer from the application down
    to the MAC (the PLCP is time-, not byte-, based and is reported by the
    airtime calculator instead).
    """
    transport_total = app_payload_bytes + transport.header_bytes
    ip_total = transport_total + IP_HEADER_BYTES
    return [
        LayerOverhead("application", 0, app_payload_bytes),
        LayerOverhead(transport.value, transport.header_bytes, app_payload_bytes),
        LayerOverhead("ip", IP_HEADER_BYTES, transport_total),
        LayerOverhead("mac", mac_header_bytes, ip_total),
    ]


def overhead_fraction(
    app_payload_bytes: int,
    transport: TransportProtocol = TransportProtocol.UDP,
    mac_header_bytes: int = 34,
) -> float:
    """Fraction of MAC-frame bytes that are *not* application data."""
    if app_payload_bytes < 0:
        raise ConfigurationError("application payload must be >= 0 bytes")
    total = app_payload_bytes + transport.header_bytes + IP_HEADER_BYTES
    total += mac_header_bytes
    if total == 0:
        return 0.0
    return 1.0 - app_payload_bytes / total
