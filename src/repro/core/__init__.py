"""Analytic core of the paper.

This package implements the paper's own modelling contribution, which needs
no hardware substitution:

* :mod:`repro.core.params` — the IEEE 802.11b protocol parameters of
  Table 1 and the rate set.
* :mod:`repro.core.encapsulation` — the encapsulation-overhead stack of
  Figure 1.
* :mod:`repro.core.airtime` — per-frame channel occupancy at each rate.
* :mod:`repro.core.throughput_model` — the maximum-throughput model of
  Equations (1) and (2), which regenerates Table 2.
* :mod:`repro.core.range_model` — analytic link-budget range estimation
  (transmission / carrier-sense / interference ranges).
"""

from repro.core.params import (
    DEFAULT_MAC_PARAMETERS,
    Dot11bConfig,
    HeaderRatePolicy,
    MacParameters,
    PlcpParameters,
    PlcpPreamble,
    Rate,
)
from repro.core.encapsulation import (
    IP_HEADER_BYTES,
    TransportProtocol,
    encapsulation_report,
    mac_payload_bytes,
)
from repro.core.airtime import AirtimeCalculator
from repro.core.bianchi import BianchiResult, saturation_throughput_bps, solve_fixed_point
from repro.core.throughput_model import (
    ChannelOccupancy,
    RtsCtsOverheadModel,
    ThroughputModel,
    table2,
)
from repro.core.range_model import (
    loss_probability,
    solve_range_m,
)

__all__ = [
    "AirtimeCalculator",
    "BianchiResult",
    "saturation_throughput_bps",
    "solve_fixed_point",
    "ChannelOccupancy",
    "DEFAULT_MAC_PARAMETERS",
    "Dot11bConfig",
    "HeaderRatePolicy",
    "IP_HEADER_BYTES",
    "MacParameters",
    "PlcpParameters",
    "PlcpPreamble",
    "Rate",
    "RtsCtsOverheadModel",
    "ThroughputModel",
    "TransportProtocol",
    "encapsulation_report",
    "loss_probability",
    "mac_payload_bytes",
    "solve_range_m",
    "table2",
]
