"""Bianchi's analytical model of DCF saturation throughput.

G. Bianchi, "Performance Analysis of the IEEE 802.11 Distributed
Coordination Function", IEEE JSAC 18(3), 2000.  The model treats each
saturated station's backoff as a bidimensional Markov chain and solves
the fixed point between

* ``tau`` — the probability a station transmits in a random slot, and
* ``p``  — the probability a transmission collides,

then converts slot statistics into throughput.  It generalises the
paper's Equation (1) (this module reproduces Eq. (1) at n = 1 within a
fraction of a percent) and gives the repository an *independent*
analytic cross-check for the multi-station simulations — the simulator
and this model share only the airtime arithmetic, not the mechanics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.airtime import AirtimeCalculator
from repro.core.encapsulation import TransportProtocol, mac_payload_bytes
from repro.core.params import Dot11bConfig, Rate
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BianchiResult:
    """Solution of the fixed point for one population size."""

    stations: int
    tau: float
    collision_probability: float
    throughput_bps: float


def _backoff_stages(config: Dot11bConfig) -> int:
    """m such that CWmax = CWmin * 2^m."""
    mac = config.mac
    stages = round(math.log2(mac.cw_max_slots / mac.cw_min_slots))
    return max(stages, 0)


def _tau_of_p(p: float, w: int, m: int) -> float:
    """Bianchi Eq. (7): transmission probability given collision prob."""
    if p >= 1.0:
        return 0.0
    numerator = 2.0 * (1.0 - 2.0 * p)
    denominator = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (
        1.0 - (2.0 * p) ** m
    )
    return numerator / denominator


def solve_fixed_point(
    stations: int,
    config: Dot11bConfig | None = None,
    tolerance: float = 1e-10,
) -> tuple[float, float]:
    """(tau, p) for ``stations`` saturated stations, by bisection on p.

    ``p = 1 - (1 - tau(p))^(n-1)`` is monotone, so bisection on p in
    [0, 1) always converges.
    """
    if stations < 1:
        raise ConfigurationError(f"need >= 1 station, got {stations}")
    if config is None:
        config = Dot11bConfig()
    w = config.mac.cw_min_slots
    m = _backoff_stages(config)
    if stations == 1:
        return _tau_of_p(0.0, w, m), 0.0

    def residual(p: float) -> float:
        tau = _tau_of_p(p, w, m)
        return (1.0 - (1.0 - tau) ** (stations - 1)) - p

    lo, hi = 0.0, 0.999999
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if residual(mid) > 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    p = (lo + hi) / 2.0
    return _tau_of_p(p, w, m), p


def saturation_throughput_bps(
    stations: int,
    app_payload_bytes: int = 512,
    data_rate: Rate = Rate.MBPS_11,
    config: Dot11bConfig | None = None,
    transport: TransportProtocol = TransportProtocol.UDP,
) -> BianchiResult:
    """Aggregate saturation throughput for ``stations`` contenders.

    Basic access only (no RTS/CTS).  Success and collision slot
    durations follow Bianchi's Eq. (13) with this library's airtime
    arithmetic, so the result is directly comparable both with the
    paper's Equation (1) (n = 1) and with the simulator.
    """
    if config is None:
        config = Dot11bConfig()
    airtime = AirtimeCalculator(config)
    mac = config.mac
    tau, p = solve_fixed_point(stations, config)

    msdu = mac_payload_bytes(app_payload_bytes, transport)
    t_data_us = airtime.data_frame_us(msdu, data_rate)
    t_ack_us = airtime.ack_us()
    slot_us = mac.slot_time_us
    # Successful exchange and collision slot durations (basic access).
    t_success_us = mac.difs_us + t_data_us + mac.sifs_us + t_ack_us
    t_collision_us = mac.difs_us + t_data_us

    p_tr = 1.0 - (1.0 - tau) ** stations
    if p_tr == 0.0:
        return BianchiResult(stations, tau, p, 0.0)
    p_success = stations * tau * (1.0 - tau) ** (stations - 1) / p_tr

    payload_bits = app_payload_bytes * 8
    expected_slot_us = (
        (1.0 - p_tr) * slot_us
        + p_tr * p_success * t_success_us
        + p_tr * (1.0 - p_success) * t_collision_us
    )
    throughput_bps = p_tr * p_success * payload_bits / (expected_slot_us * 1e-6)
    return BianchiResult(
        stations=stations,
        tau=tau,
        collision_probability=p,
        throughput_bps=throughput_bps,
    )
