"""Per-frame channel occupancy (airtime) at each 802.11b rate.

This calculator is the single source of truth for frame durations: both the
analytic throughput model (Equations 1 and 2) and the discrete-event
simulator derive every transmission time from it, which is what makes the
simulated UDP throughput converge to the analytic bound (Figure 2).

The decomposition follows the paper:

* the PLCP preamble + header (``PHYhdr``) are sent at the PLCP rates
  (1 Mbps for the long format);
* the MAC header + FCS (272 bits) at the header rate chosen by the
  configured :class:`~repro.core.params.HeaderRatePolicy`;
* the MAC payload at the NIC data rate;
* control frames (RTS/CTS/ACK) entirely at the control (basic) rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import Dot11bConfig, Rate
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FrameAirtime:
    """Breakdown of one frame's channel time, in microseconds."""

    plcp_us: float
    header_us: float
    payload_us: float

    @property
    def total_us(self) -> float:
        """Total channel occupancy of the frame."""
        return self.plcp_us + self.header_us + self.payload_us


class AirtimeCalculator:
    """Computes frame durations for one :class:`Dot11bConfig`."""

    def __init__(self, config: Dot11bConfig | None = None):
        self._config = config if config is not None else Dot11bConfig()
        #: Interning table for :mod:`repro.phy.plans`: one frozen
        #: TransmissionPlan per distinct frame shape built against this
        #: calculator.  Keys are ``(msdu_bytes, rate)`` for data frames
        #: and ``(name, body_bits, rate)`` for control frames.
        self.plan_cache: dict[tuple, "object"] = {}

    @property
    def config(self) -> Dot11bConfig:
        """The protocol configuration durations are computed for."""
        return self._config

    def plcp_us(self) -> float:
        """PLCP preamble + header duration (192 µs for the long format)."""
        return self._config.plcp.duration_us

    def data_frame(self, mac_payload_bytes: int, data_rate: Rate) -> FrameAirtime:
        """Airtime of a MAC data frame carrying ``mac_payload_bytes``.

        ``mac_payload_bytes`` is the MSDU (IP datagram) size; the MAC
        header + FCS are added here.
        """
        if mac_payload_bytes < 0:
            raise ConfigurationError(
                f"MAC payload must be >= 0 bytes, got {mac_payload_bytes}"
            )
        cfg = self._config
        header_rate = cfg.header_rate_policy.header_rate(data_rate)
        return FrameAirtime(
            plcp_us=self.plcp_us(),
            header_us=cfg.mac.mac_header_bits / header_rate.mbps,
            payload_us=mac_payload_bytes * 8 / data_rate.mbps,
        )

    def data_frame_us(self, mac_payload_bytes: int, data_rate: Rate) -> float:
        """Total duration of a data frame (``T_DATA`` in the paper)."""
        return self.data_frame(mac_payload_bytes, data_rate).total_us

    def _control_frame_us(self, body_bits: int, rate: Rate | None) -> float:
        if rate is None:
            rate = self._config.control_rate
        return self.plcp_us() + body_bits / rate.mbps

    def ack_us(self, rate: Rate | None = None) -> float:
        """Duration of an ACK frame (``T_ACK``).

        Control frames use the configured control rate regardless of the
        data rate — the paper's Table 2 keeps the ACK at 2 Mbps even for
        1 Mbps data sessions (2 Mbps is in the basic rate set).  Pass
        ``rate`` to override.
        """
        return self._control_frame_us(self._config.mac.ack_bits, rate)

    def rts_us(self, rate: Rate | None = None) -> float:
        """Duration of an RTS frame (``T_RTS``)."""
        return self._control_frame_us(self._config.mac.rts_bits, rate)

    def cts_us(self, rate: Rate | None = None) -> float:
        """Duration of a CTS frame (``T_CTS``)."""
        return self._control_frame_us(self._config.mac.cts_bits, rate)

    def payload_only_us(self, app_payload_bytes: int, data_rate: Rate) -> float:
        """``T_payload``: time for the bare application bytes at the data rate."""
        if app_payload_bytes < 0:
            raise ConfigurationError(
                f"application payload must be >= 0 bytes, got {app_payload_bytes}"
            )
        return app_payload_bytes * 8 / data_rate.mbps
