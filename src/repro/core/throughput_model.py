"""Maximum-throughput model: Equations (1) and (2), Table 2.

For a single saturated sender-receiver pair using the DCF basic access
scheme, the maximum expected throughput is the ratio of the time spent
moving application bytes to the total channel time consumed per frame
exchange::

    Th_noRTS = T_payload / (DIFS + T_DATA + SIFS + T_ACK + E[backoff])

With RTS/CTS the handshake frames and two extra SIFS gaps join the
denominator (Equation 2).

Numerical fidelity notes (validated against the paper's Table 2):

* The no-RTS/CTS column reproduces the paper to the third decimal with
  UDP+IP encapsulation (28 bytes), the MAC header at the basic rate and
  E[backoff] = 15.5 slots.  The paper ignores the propagation delay τ in
  the evaluation, so the default here does too (``include_propagation``
  turns it back on).
* The paper's RTS/CTS column is internally inconsistent: the deltas
  between its columns imply T_RTS + T_CTS ≈ 248 µs — a *single* control
  frame with PLCP at 2 Mbps — rather than the 520 µs that follows from its
  own Table 1.  :class:`RtsCtsOverheadModel` selects between the standard
  interpretation (default) and the paper-implied one so both can be
  tabulated side by side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.airtime import AirtimeCalculator
from repro.core.encapsulation import TransportProtocol, mac_payload_bytes
from repro.core.params import ALL_RATES, Dot11bConfig, Rate
from repro.errors import ConfigurationError
from repro.units import bps_to_mbps


class RtsCtsOverheadModel(enum.Enum):
    """How the RTS/CTS handshake overhead is charged.

    ``STANDARD`` charges T_RTS + T_CTS + 2·SIFS with both control frames
    carrying a full PLCP at the control rate (Equation 2 as written).
    ``PAPER_IMPLIED`` charges the ~268 µs that the paper's own Table 2
    deltas imply (one 112-bit control frame with PLCP at 2 Mbps + 2·SIFS).
    """

    STANDARD = "standard"
    PAPER_IMPLIED = "paper-implied"


@dataclass(frozen=True)
class ChannelOccupancy:
    """Denominator breakdown of Equation (1)/(2), in microseconds."""

    difs_us: float
    data_us: float
    sifs_total_us: float
    ack_us: float
    backoff_us: float
    rts_us: float = 0.0
    cts_us: float = 0.0
    propagation_us: float = 0.0

    @property
    def total_us(self) -> float:
        """Total channel time consumed per frame exchange."""
        return (
            self.difs_us
            + self.data_us
            + self.sifs_total_us
            + self.ack_us
            + self.backoff_us
            + self.rts_us
            + self.cts_us
            + self.propagation_us
        )


@dataclass(frozen=True)
class ThroughputEntry:
    """One cell of Table 2."""

    data_rate: Rate
    payload_bytes: int
    rts_cts: bool
    throughput_bps: float
    occupancy: ChannelOccupancy

    @property
    def throughput_mbps(self) -> float:
        """Throughput in Mbps (the unit Table 2 reports)."""
        return bps_to_mbps(self.throughput_bps)

    @property
    def utilization(self) -> float:
        """Fraction of the nominal bit rate delivered to the application."""
        return self.throughput_bps / self.data_rate.bps


class ThroughputModel:
    """Evaluates the maximum-throughput equations for one configuration."""

    def __init__(
        self,
        config: Dot11bConfig | None = None,
        transport: TransportProtocol = TransportProtocol.UDP,
        rts_overhead: RtsCtsOverheadModel = RtsCtsOverheadModel.STANDARD,
        include_propagation: bool = False,
    ):
        self._config = config if config is not None else Dot11bConfig()
        self._airtime = AirtimeCalculator(self._config)
        self._transport = transport
        self._rts_overhead = rts_overhead
        self._include_propagation = include_propagation

    @property
    def airtime(self) -> AirtimeCalculator:
        """The airtime calculator backing this model."""
        return self._airtime

    def occupancy(
        self, app_payload_bytes: int, data_rate: Rate, rts_cts: bool
    ) -> ChannelOccupancy:
        """Per-exchange channel occupancy (the denominator of Eq. 1/2)."""
        if app_payload_bytes <= 0:
            raise ConfigurationError(
                f"payload must be > 0 bytes, got {app_payload_bytes}"
            )
        mac = self._config.mac
        msdu = mac_payload_bytes(app_payload_bytes, self._transport)
        data_us = self._airtime.data_frame_us(msdu, data_rate)
        ack_us = self._airtime.ack_us()
        rts_us = cts_us = 0.0
        sifs_count = 1
        if rts_cts:
            sifs_count = 3
            if self._rts_overhead is RtsCtsOverheadModel.STANDARD:
                rts_us = self._airtime.rts_us()
                cts_us = self._airtime.cts_us()
            else:
                # The paper-implied overhead: one 112-bit control frame
                # with a full PLCP at 2 Mbps stands in for the pair.
                rts_us = self._airtime.plcp_us() + 112 / Rate.MBPS_2.mbps
                cts_us = 0.0
        propagation_us = 0.0
        if self._include_propagation:
            exchanges = 4 if rts_cts else 2
            propagation_us = exchanges * mac.propagation_delay_us
        return ChannelOccupancy(
            difs_us=mac.difs_us,
            data_us=data_us,
            sifs_total_us=sifs_count * mac.sifs_us,
            ack_us=ack_us,
            backoff_us=mac.mean_initial_backoff_us,
            rts_us=rts_us,
            cts_us=cts_us,
            propagation_us=propagation_us,
        )

    def max_throughput_bps(
        self, app_payload_bytes: int, data_rate: Rate, rts_cts: bool = False
    ) -> float:
        """Maximum expected application throughput, in bits per second."""
        occupancy = self.occupancy(app_payload_bytes, data_rate, rts_cts)
        return app_payload_bytes * 8 / (occupancy.total_us * 1e-6)

    def entry(
        self, app_payload_bytes: int, data_rate: Rate, rts_cts: bool
    ) -> ThroughputEntry:
        """A fully described Table-2 cell."""
        occupancy = self.occupancy(app_payload_bytes, data_rate, rts_cts)
        return ThroughputEntry(
            data_rate=data_rate,
            payload_bytes=app_payload_bytes,
            rts_cts=rts_cts,
            throughput_bps=app_payload_bytes * 8 / (occupancy.total_us * 1e-6),
            occupancy=occupancy,
        )


@dataclass(frozen=True)
class Table2:
    """The full Table 2: rates × payload sizes × RTS on/off."""

    entries: tuple[ThroughputEntry, ...] = field(default_factory=tuple)

    def lookup(
        self, data_rate: Rate, payload_bytes: int, rts_cts: bool
    ) -> ThroughputEntry:
        """Find one cell; raises ``KeyError`` if absent."""
        for entry in self.entries:
            if (
                entry.data_rate is data_rate
                and entry.payload_bytes == payload_bytes
                and entry.rts_cts == rts_cts
            ):
                return entry
        raise KeyError((data_rate, payload_bytes, rts_cts))


def table2(
    config: Dot11bConfig | None = None,
    payload_sizes: tuple[int, ...] = (512, 1024),
    transport: TransportProtocol = TransportProtocol.UDP,
    rts_overhead: RtsCtsOverheadModel = RtsCtsOverheadModel.STANDARD,
) -> Table2:
    """Regenerate Table 2 of the paper."""
    model = ThroughputModel(config, transport=transport, rts_overhead=rts_overhead)
    entries = []
    for rate in reversed(ALL_RATES):  # paper lists 11 Mbps first
        for payload in payload_sizes:
            for rts_cts in (False, True):
                entries.append(model.entry(payload, rate, rts_cts))
    return Table2(entries=tuple(entries))
