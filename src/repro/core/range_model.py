"""Analytic link-budget range estimation.

Given a monotonically increasing path-loss function and a receiver
threshold, the transmission range is the distance at which the received
power falls to the threshold; the carrier-sense and interference ranges are
obtained with the carrier-sense threshold and an SINR requirement
respectively.  Under log-normal shadowing the *probability* of losing a
packet at a given distance has the closed form used here, which the
range-measurement experiments compare against the simulated loss curves
(Figure 3).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import ConfigurationError

#: A path-loss model: distance in metres -> loss in dB.
PathLossFn = Callable[[float], float]


def solve_range_m(
    path_loss_db: PathLossFn,
    tx_power_dbm: float,
    threshold_dbm: float,
    lo_m: float = 0.1,
    hi_m: float = 100_000.0,
    tolerance_m: float = 1e-3,
) -> float:
    """Distance at which the received power equals ``threshold_dbm``.

    Uses bisection, assuming ``path_loss_db`` is non-decreasing in distance.
    Returns ``hi_m`` if the threshold is never reached within the bracket
    and ``lo_m`` if the link is already below threshold at ``lo_m``.
    """
    if lo_m <= 0 or hi_m <= lo_m:
        raise ConfigurationError(
            f"invalid search bracket [{lo_m}, {hi_m}] for range solving"
        )

    def margin(distance: float) -> float:
        return tx_power_dbm - path_loss_db(distance) - threshold_dbm

    if margin(lo_m) <= 0.0:
        return lo_m
    if margin(hi_m) > 0.0:
        return hi_m
    lo, hi = lo_m, hi_m
    while hi - lo > tolerance_m:
        mid = (lo + hi) / 2.0
        if margin(mid) > 0.0:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def loss_probability(
    path_loss_db: PathLossFn,
    tx_power_dbm: float,
    sensitivity_dbm: float,
    distance_m: float,
    shadowing_sigma_db: float,
) -> float:
    """P(received power < sensitivity) under log-normal shadowing.

    With shadowing X ~ N(0, σ²) in dB, the outage probability at distance
    ``d`` is Q(margin/σ) where margin = P_tx − PL(d) − sensitivity.
    With σ = 0 the function degenerates to a hard threshold.
    """
    if distance_m <= 0:
        raise ConfigurationError(f"distance must be > 0 m, got {distance_m}")
    margin_db = tx_power_dbm - path_loss_db(distance_m) - sensitivity_dbm
    if shadowing_sigma_db < 0:
        raise ConfigurationError(
            f"shadowing sigma must be >= 0 dB, got {shadowing_sigma_db}"
        )
    if shadowing_sigma_db == 0.0:
        return 0.0 if margin_db > 0 else 1.0
    return 0.5 * math.erfc(margin_db / (shadowing_sigma_db * math.sqrt(2.0)))


def interference_range_m(
    path_loss_db: PathLossFn,
    tx_power_dbm: float,
    sender_receiver_distance_m: float,
    required_sinr_db: float,
    lo_m: float = 0.1,
    hi_m: float = 100_000.0,
) -> float:
    """Interference range around a receiver (paper §2 definition).

    A transmission from the sender at distance ``d`` is received with power
    ``P_rx``; an interferer closer to the receiver than the returned range
    pushes the SINR below ``required_sinr_db`` and destroys the reception.
    For equal transmit powers the condition is
    ``PL(d_interferer) < PL(d) + required_sinr_db``.
    """
    signal_dbm = tx_power_dbm - path_loss_db(sender_receiver_distance_m)
    # The interferer is harmful while its power exceeds signal − SINR.
    harmful_threshold_dbm = signal_dbm - required_sinr_db
    return solve_range_m(
        path_loss_db, tx_power_dbm, harmful_threshold_dbm, lo_m=lo_m, hi_m=hi_m
    )
