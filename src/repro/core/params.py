"""IEEE 802.11b protocol parameters (Table 1 of the paper).

The values here are the exact constants the paper uses to evaluate its
analytic throughput model, plus the standard constants the simulator needs
(retry limits, EIFS, contention-window semantics).

Two conventions deserve a note:

* **Contention window.**  Table 1 lists ``CWmin = 32 tslot``.  Following the
  standard, a backoff is drawn uniformly from ``{0, 1, ..., CW - 1}`` where
  the initial ``CW`` is 32 slots; the *mean* initial backoff is therefore
  15.5 slots (310 µs).  This is the value that makes the paper's Table 2
  reproduce to the third decimal (the paper prints the mean as
  ``CWmin/2 * Slot_Time`` but evaluates it as 15.5 slots).
* **Header rate.**  The paper's model transmits the PLCP at 1 Mbps, the MAC
  header at the *basic* rate (2 Mbps, capped by the data rate) and only the
  MAC payload at the NIC data rate.  A real 802.11b PSDU is sent at a single
  rate; :class:`HeaderRatePolicy` selects between the two conventions so
  both the paper-faithful model and a standard-faithful one are available.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class Rate(enum.Enum):
    """The four DSSS/CCK bit rates of IEEE 802.11b."""

    MBPS_1 = 1.0
    MBPS_2 = 2.0
    MBPS_5_5 = 5.5
    MBPS_11 = 11.0

    @property
    def mbps(self) -> float:
        """Rate in megabits per second."""
        return self.value

    @property
    def bps(self) -> float:
        """Rate in bits per second."""
        return self.value * 1e6

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:g} Mbps"

    @classmethod
    def from_mbps(cls, mbps: float) -> "Rate":
        """Look up a rate by its Mbps value.

        Raises
        ------
        ConfigurationError
            If ``mbps`` is not one of 1, 2, 5.5, 11.
        """
        for rate in cls:
            if rate.value == mbps:
                return rate
        raise ConfigurationError(f"{mbps} Mbps is not an 802.11b rate")


#: All rates, slowest first.
ALL_RATES: tuple[Rate, ...] = (
    Rate.MBPS_1,
    Rate.MBPS_2,
    Rate.MBPS_5_5,
    Rate.MBPS_11,
)

#: The basic rate set: rates every station can receive.  Control frames
#: (RTS/CTS/ACK) and broadcast frames must use one of these (paper §2).
BASIC_RATE_SET: tuple[Rate, ...] = (Rate.MBPS_1, Rate.MBPS_2)


class PlcpPreamble(enum.Enum):
    """PLCP preamble format (802.11b defines long and short)."""

    LONG = "long"
    SHORT = "short"


@dataclass(frozen=True)
class PlcpParameters:
    """Timing of the physical-layer convergence procedure framing.

    With the long preamble both the 144-bit preamble and the 48-bit header
    are sent at 1 Mbps (192 µs total, the paper's ``PHYhdr``).  With the
    short preamble the 72-bit preamble is sent at 1 Mbps and the 48-bit
    header at 2 Mbps (96 µs total).
    """

    preamble_bits: int
    preamble_rate: Rate
    header_bits: int
    header_rate: Rate

    @property
    def duration_us(self) -> float:
        """Total PLCP airtime in microseconds."""
        return (
            self.preamble_bits / self.preamble_rate.mbps
            + self.header_bits / self.header_rate.mbps
        )

    @classmethod
    def long(cls) -> "PlcpParameters":
        """The long PLCP format assumed by the paper (192 µs)."""
        return cls(
            preamble_bits=144,
            preamble_rate=Rate.MBPS_1,
            header_bits=48,
            header_rate=Rate.MBPS_1,
        )

    @classmethod
    def short(cls) -> "PlcpParameters":
        """The optional short PLCP format (96 µs)."""
        return cls(
            preamble_bits=72,
            preamble_rate=Rate.MBPS_1,
            header_bits=48,
            header_rate=Rate.MBPS_2,
        )

    @classmethod
    def for_preamble(cls, preamble: PlcpPreamble) -> "PlcpParameters":
        """Build the parameter set for a preamble format."""
        if preamble is PlcpPreamble.LONG:
            return cls.long()
        return cls.short()


@dataclass(frozen=True)
class MacParameters:
    """MAC-layer constants (Table 1 plus standard DCF constants)."""

    slot_time_us: float = 20.0
    sifs_us: float = 10.0
    difs_us: float = 50.0
    #: Initial contention window, in slots.  Backoff counts are drawn
    #: uniformly from ``{0, ..., cw_min_slots - 1}``.
    cw_min_slots: int = 32
    #: Maximum contention window, in slots.
    cw_max_slots: int = 1024
    #: MAC data-frame header including the FCS, in bits (34 bytes; the
    #: paper counts the 4-address format).
    mac_header_bits: int = 272
    #: ACK frame body (without PLCP), in bits (14 bytes).
    ack_bits: int = 112
    #: RTS frame body (without PLCP), in bits (20 bytes).
    rts_bits: int = 160
    #: CTS frame body (without PLCP), in bits (14 bytes).
    cts_bits: int = 112
    #: One-way propagation delay τ assumed by Table 1, in microseconds.
    propagation_delay_us: float = 1.0
    #: Retry limit for frames shorter than the RTS threshold.
    short_retry_limit: int = 7
    #: Retry limit for frames at least as long as the RTS threshold.
    long_retry_limit: int = 4

    def __post_init__(self) -> None:
        if self.cw_min_slots < 1 or self.cw_max_slots < self.cw_min_slots:
            raise ConfigurationError(
                "contention window must satisfy 1 <= CWmin <= CWmax, got "
                f"CWmin={self.cw_min_slots}, CWmax={self.cw_max_slots}"
            )
        if self.sifs_us < 0 or self.difs_us < self.sifs_us:
            raise ConfigurationError(
                "interframe spaces must satisfy 0 <= SIFS <= DIFS, got "
                f"SIFS={self.sifs_us}, DIFS={self.difs_us}"
            )

    @property
    def mean_initial_backoff_us(self) -> float:
        """Mean backoff with the initial window: (CWmin−1)/2 slots."""
        return (self.cw_min_slots - 1) / 2.0 * self.slot_time_us

    def eifs_us(self, plcp: PlcpParameters, lowest_rate: Rate = Rate.MBPS_1) -> float:
        """Extended interframe space used after an erroneous reception.

        EIFS = SIFS + DIFS + time to transmit an ACK at the lowest basic
        rate (IEEE 802.11-1999 §9.2.10).
        """
        ack_time = plcp.duration_us + self.ack_bits / lowest_rate.mbps
        return self.sifs_us + self.difs_us + ack_time


class HeaderRatePolicy(enum.Enum):
    """At which rate the MAC header of a data frame is modelled.

    ``PAPER_BASIC_RATE`` reproduces the paper's Table 2 exactly: the MAC
    header is carried at ``min(2 Mbps, data rate)`` while the payload uses
    the data rate.  ``DATA_RATE`` is the standard behaviour (the whole PSDU
    at the data rate).
    """

    PAPER_BASIC_RATE = "paper-basic-rate"
    DATA_RATE = "data-rate"

    def header_rate(self, data_rate: Rate) -> Rate:
        """Rate used for the MAC header of a frame sent at ``data_rate``."""
        if self is HeaderRatePolicy.DATA_RATE:
            return data_rate
        if data_rate.mbps <= Rate.MBPS_2.mbps:
            return data_rate
        return Rate.MBPS_2


@dataclass(frozen=True)
class Dot11bConfig:
    """A complete 802.11b protocol configuration.

    Bundles the MAC constants, PLCP format, control-frame rate and header
    rate policy.  The defaults reproduce the paper's analytic setting.
    """

    mac: MacParameters = field(default_factory=MacParameters)
    plcp: PlcpParameters = field(default_factory=PlcpParameters.long)
    #: Rate for RTS/CTS/ACK frames.  Must belong to the basic rate set.
    control_rate: Rate = Rate.MBPS_2
    header_rate_policy: HeaderRatePolicy = HeaderRatePolicy.PAPER_BASIC_RATE

    def __post_init__(self) -> None:
        if self.control_rate not in BASIC_RATE_SET:
            raise ConfigurationError(
                f"control rate {self.control_rate} is not in the basic rate "
                f"set {[str(r) for r in BASIC_RATE_SET]}"
            )

    def control_rate_for(self, data_rate: Rate) -> Rate:
        """Control rate actually usable with a given data rate.

        A station transmitting data at 1 Mbps cannot use a 2 Mbps control
        rate, so the configured control rate is capped by the data rate.
        """
        if self.control_rate.mbps > data_rate.mbps:
            return data_rate
        return self.control_rate


#: Default parameter singletons used across the library.
DEFAULT_MAC_PARAMETERS = MacParameters()
DEFAULT_CONFIG = Dot11bConfig()
