"""Parallel sweep engine + content-addressed result cache.

Public surface:

* :class:`~repro.parallel.engine.SweepPoint` / :func:`~repro.parallel.engine.run_sweep`
  — describe independent ``(scenario, seed)`` points and fan them
  across a process pool, merging results in deterministic point order.
* :func:`~repro.parallel.engine.pmap` — ordered parallel map for
  picklable callables (the :func:`repro.experiments.replication` path).
* :class:`~repro.parallel.cache.SweepCache` — content-addressed result
  store keyed on canonical parameters + seed + code-version tag.
"""

from repro.parallel.cache import SweepCache, code_version_tag, default_cache_dir
from repro.parallel.engine import SweepPoint, execute_point, pmap, run_sweep

__all__ = [
    "SweepCache",
    "SweepPoint",
    "code_version_tag",
    "default_cache_dir",
    "execute_point",
    "pmap",
    "run_sweep",
]
