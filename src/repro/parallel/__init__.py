"""Parallel sweep engine + supervisor + journal + result cache.

Public surface:

* :class:`~repro.parallel.engine.SweepPoint` / :func:`~repro.parallel.engine.run_sweep`
  — describe independent ``(scenario, seed)`` points and fan them
  across a supervised worker pool, merging results in deterministic
  point order.
* :func:`~repro.parallel.supervisor.supervise_sweep` — the crash-safe
  executor underneath ``run_sweep``: dead/hung-worker detection with
  respawn, journaled outcomes, ``--resume`` and ``on_error`` failure
  policies, graceful SIGINT/SIGTERM shutdown.
* :class:`~repro.parallel.journal.SweepJournal` /
  :func:`~repro.parallel.journal.load_journal` — persistent JSONL
  journal of per-point outcomes enabling bit-identical resume.
* :func:`~repro.parallel.engine.pmap` — ordered parallel map for
  picklable callables (the :func:`repro.experiments.replication`
  path), with serialized worker-error transport.
* :class:`~repro.parallel.cache.SweepCache` — content-addressed result
  store keyed on canonical parameters + seed + code-version tag.
"""

from repro.parallel.cache import (
    SweepCache,
    code_version_tag,
    default_cache_dir,
    point_key,
)
from repro.parallel.engine import (
    SweepPoint,
    backoff_delay_s,
    execute_point,
    pmap,
    run_sweep,
)
from repro.parallel.journal import PointRecord, SweepJournal, load_journal
from repro.parallel.supervisor import (
    PointFailure,
    SweepOutcome,
    SweepReport,
    supervise_sweep,
)

__all__ = [
    "PointFailure",
    "PointRecord",
    "SweepCache",
    "SweepJournal",
    "SweepOutcome",
    "SweepPoint",
    "SweepReport",
    "backoff_delay_s",
    "code_version_tag",
    "default_cache_dir",
    "execute_point",
    "load_journal",
    "pmap",
    "point_key",
    "run_sweep",
    "supervise_sweep",
]
