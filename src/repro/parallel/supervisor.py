"""Supervised sweep executor: crash-safe, journaled, resumable.

The engine's old pool path was all-or-nothing: ``pool.map`` blocked on
every point, one worker failure propagated after the batch, and a hard
crash (``os._exit``, OOM kill) could wedge the pool.  The supervisor
replaces it with per-task dispatch over dedicated pipes:

* each worker owns one duplex pipe; an in-flight task is pinned to its
  worker, so a dead process (pipe EOF) is detected immediately and its
  task — and only its task — is reassigned to a respawned worker;
* a per-point wall-clock **deadline** (``policy.timeout_s``) is
  enforced from the parent by *killing* the overdue worker, which —
  unlike the in-process timed call — actually reclaims the CPU;
* failures eligible for retry (kernel-level
  :class:`~repro.errors.SimulationError`, timeouts, crashes) are
  re-dispatched up to ``policy.max_retries`` times with perturbed seeds
  and deterministic jittered exponential backoff;
* every outcome is appended to the optional persistent
  :class:`~repro.parallel.journal.SweepJournal` and successful values
  are written to the result cache **as they complete**, so an abort at
  point 900/1000 keeps the other 899;
* ``on_error`` picks the failure policy: ``"raise"`` stops dispatching
  and re-raises the first final failure once in-flight work has been
  collected, ``"skip"`` substitutes ``None``, ``"degrade"``
  substitutes a typed :class:`PointFailure` record — both of the
  latter finish the sweep and print a :class:`SweepReport`;
* SIGINT/SIGTERM trigger graceful shutdown: flush journal and cache,
  kill the workers, and raise :class:`~repro.errors.SweepInterrupted`
  naming the resumable state.  A second SIGINT forces the default
  handler (hard exit).

``resume=True`` replays a previous journal: points recorded ``ok``
under the current code-version tag are served from the journal (and
re-warmed into the cache) and only failed or unfinished points
execute, so an interrupted sweep's merged results are bit-identical to
an uninterrupted run.
"""

from __future__ import annotations

import heapq
import signal
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from typing import Any, Mapping, Sequence, TextIO

from repro.errors import (
    ExperimentError,
    SimulationError,
    SweepInterrupted,
    WatchdogTimeout,
)
from repro.parallel import engine as _engine
from repro.parallel.cache import SweepCache, code_version_tag, point_key
from repro.parallel.engine import (
    ErrorRecord,
    SweepPoint,
    backoff_delay_s,
    perturbed_params,
    run_point_once,
    serialize_error,
    worker_error,
)
from repro.parallel.journal import PointRecord, SweepJournal, load_journal

#: Valid ``on_error`` failure policies.
ON_ERROR_POLICIES: tuple[str, ...] = ("raise", "skip", "degrade")

#: Upper bound on one ``connection.wait`` nap, so signal flags and
#: retry ready-times are observed promptly even under quiet workers.
_POLL_INTERVAL_S = 0.2


@dataclass(frozen=True)
class PointFailure:
    """Typed record standing in for a failed point's value.

    Under ``on_error="degrade"`` these appear *in the results list* at
    the failed indices; under every policy they populate
    :attr:`SweepReport.failures`.
    """

    index: int
    fn: str
    key: str
    status: str  # "failed" | "timeout" | "crashed"
    error: str
    error_type: str
    attempts: int

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (report files, journals)."""
        return {
            "index": self.index,
            "fn": self.fn,
            "key": self.key,
            "status": self.status,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
        }


@dataclass
class SweepReport:
    """Outcome tally of one supervised sweep."""

    total: int
    ok: int = 0
    cached: int = 0
    resumed: int = 0
    retried: int = 0
    failures: list[PointFailure] = field(default_factory=list)
    elapsed_s: float = 0.0
    journal_path: str | None = None

    @property
    def failed(self) -> int:
        """Number of points that exhausted their attempts."""
        return len(self.failures)

    def render(self) -> str:
        """Human-readable sweep report (printed on degraded sweeps)."""
        lines = [
            f"sweep report: {self.ok}/{self.total} points ok"
            f" ({self.cached} cached, {self.resumed} resumed,"
            f" {self.retried} retries) in {self.elapsed_s:.1f}s"
        ]
        for failure in self.failures:
            lines.append(
                f"  point[{failure.index}] {failure.fn} {failure.status} "
                f"after {failure.attempts} attempt(s): "
                f"{failure.error_type}: {failure.error}"
            )
        if self.journal_path is not None:
            lines.append(f"  journal: {self.journal_path}")
        return "\n".join(lines)


@dataclass
class SweepOutcome:
    """Results (in point order) plus the report that produced them."""

    results: list[Any]
    report: SweepReport


class _Task:
    """One point's execution state inside the supervisor."""

    __slots__ = ("index", "point", "key", "attempt", "started")

    def __init__(self, index: int, point: SweepPoint, key: str):
        self.index = index
        self.point = point
        self.key = key
        self.attempt = 0
        self.started: float | None = None


class _Worker:
    """A supervised worker process and its dedicated pipe."""

    __slots__ = ("process", "connection", "task", "deadline")

    def __init__(self, process: Any, connection: Connection):
        self.process = process
        self.connection = connection
        self.task: _Task | None = None
        self.deadline: float | None = None


def _worker_main(connection: Connection) -> None:
    """Worker loop: one attempt per message, outcomes over the pipe.

    SIGINT is ignored so a terminal Ctrl-C (delivered to the whole
    foreground process group) leaves shutdown sequencing to the
    supervisor; the supervisor kills workers with SIGTERM/SIGKILL.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic platforms
        pass
    while True:
        try:
            message = connection.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        index, fn, params = message
        try:
            outcome: tuple[int, str, Any] = (
                index,
                "ok",
                run_point_once(fn, params, None),
            )
        except BaseException as error:  # noqa: BLE001 - serialised for parent
            outcome = (index, "err", serialize_error(error))
        try:
            connection.send(outcome)
        except (BrokenPipeError, OSError):
            return
        except Exception:  # noqa: BLE001 - e.g. unpicklable point value
            try:
                connection.send(
                    (
                        index,
                        "err",
                        (
                            "ExperimentError",
                            "point result could not be pickled back "
                            "to the supervisor",
                            "",
                        ),
                    )
                )
            except (BrokenPipeError, OSError):
                return


def _retryable(error_type: str) -> bool:
    """True when a failure type is eligible for a reseeded retry."""
    import repro.errors as errors_module

    exc_class = getattr(errors_module, error_type, None)
    return isinstance(exc_class, type) and issubclass(
        exc_class, SimulationError
    )


class _Supervision:
    """State machine for one supervised sweep (serial or pooled)."""

    def __init__(
        self,
        points: Sequence[SweepPoint],
        jobs: int,
        cache: SweepCache | None,
        policy: Any,
        start_method: str | None,
        journal: SweepJournal | None,
        on_error: str,
        resume: bool,
        report_stream: TextIO | None,
    ):
        self.points = list(points)
        self.jobs = jobs
        self.cache = cache
        self.start_method = start_method
        self.journal = journal
        self.on_error = on_error
        self.resume = resume
        self.report_stream = report_stream
        (
            self.timeout_s,
            self.max_retries,
            self.seed_step,
            self.backoff_base_s,
            self.backoff_max_s,
        ) = _engine._normalise_policy(_engine._policy_tuple(policy))
        self.version = (
            cache.version_tag if cache is not None else code_version_tag()
        )
        self.results: list[Any] = [None] * len(self.points)
        self.report = SweepReport(
            total=len(self.points),
            journal_path=str(journal.path) if journal is not None else None,
        )
        self._interrupted = False
        self._signal_count = 0
        self._abort = False
        self._raise_error: BaseException | None = None
        self._retry_sequence = 0

    # -- signal handling ---------------------------------------------------

    def _on_signal(self, signum: int, frame: Any) -> None:
        self._signal_count += 1
        self._interrupted = True
        if self._signal_count >= 2 and signum == signal.SIGINT:
            # Second Ctrl-C: the user means it — stop being graceful.
            signal.signal(signal.SIGINT, signal.default_int_handler)
            raise KeyboardInterrupt

    def _install_signals(self) -> dict[int, Any]:
        if threading.current_thread() is not threading.main_thread():
            return {}
        previous: dict[int, Any] = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, self._on_signal)
            except (ValueError, OSError):  # pragma: no cover - odd runtime
                pass
        return previous

    @staticmethod
    def _restore_signals(previous: Mapping[int, Any]) -> None:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - odd runtime
                pass

    # -- bookkeeping -------------------------------------------------------

    def _journal_record(self, record: PointRecord) -> None:
        if self.journal is not None:
            self.journal.record(record)

    def _complete_ok(
        self, task: _Task, value: Any, attempts: int, cached: bool = False
    ) -> None:
        self.results[task.index] = value
        self.report.ok += 1
        if cached:
            self.report.cached += 1
        duration = (
            time.monotonic() - task.started if task.started is not None else 0.0
        )
        if self.cache is not None and not cached:
            self.cache.put(task.point.fn, task.point.params, value)
        self._journal_record(
            PointRecord(
                key=task.key,
                fn=task.point.fn,
                index=task.index,
                status="ok",
                attempts=attempts,
                duration_s=duration,
                version=self.version,
                value=value,
                cached=cached,
            )
        )

    def _complete_failure(
        self, task: _Task, status: str, record: ErrorRecord, attempts: int
    ) -> None:
        error_type, message, _ = record
        duration = (
            time.monotonic() - task.started if task.started is not None else 0.0
        )
        self._journal_record(
            PointRecord(
                key=task.key,
                fn=task.point.fn,
                index=task.index,
                status=status,
                attempts=attempts,
                duration_s=duration,
                version=self.version,
                error=message,
                error_type=error_type,
            )
        )
        failure = PointFailure(
            index=task.index,
            fn=task.point.fn,
            key=task.key,
            status=status,
            error=message,
            error_type=error_type,
            attempts=attempts,
        )
        self.report.failures.append(failure)
        if self.on_error == "raise":
            self._abort = True
            if self._raise_error is None:
                self._raise_error = worker_error(task.point.fn, record)
        elif self.on_error == "degrade":
            self.results[task.index] = failure
        else:  # skip
            self.results[task.index] = None

    # -- resume / cache triage ---------------------------------------------

    def _triage(self) -> list[_Task]:
        """Serve resumable and cached points; return what must run."""
        resume_map: dict[str, PointRecord] = {}
        if self.resume and self.journal is not None:
            resume_map = load_journal(self.journal.path)
        tasks: list[_Task] = []
        for index, point in enumerate(self.points):
            key = point_key(point.fn, point.params, self.version)
            task = _Task(index, point, key)
            record = resume_map.get(key)
            if (
                record is not None
                and record.status == "ok"
                and record.version == self.version
            ):
                self.results[index] = record.value
                self.report.ok += 1
                self.report.resumed += 1
                if self.cache is not None:
                    hit, _ = self.cache.lookup(point.fn, point.params)
                    if not hit:
                        self.cache.put(point.fn, point.params, record.value)
                continue
            if self.cache is not None:
                hit, value = self.cache.lookup(point.fn, point.params)
                if hit:
                    task.started = time.monotonic()
                    self._complete_ok(task, value, attempts=0, cached=True)
                    continue
            tasks.append(task)
        return tasks

    # -- serial executor ---------------------------------------------------

    def _run_serial(self, tasks: Sequence[_Task]) -> None:
        for task in tasks:
            if self._interrupted or self._abort:
                return
            self._run_serial_task(task)

    def _run_serial_task(self, task: _Task) -> None:
        task.started = time.monotonic()
        last_record: ErrorRecord | None = None
        last_error: BaseException | None = None
        last_status = "failed"
        attempts = 0
        for attempt in range(self.max_retries + 1):
            if attempt:
                if self._interrupted:
                    return  # unfinished: no record, resume re-runs it
                delay = backoff_delay_s(
                    attempt,
                    self.backoff_base_s,
                    self.backoff_max_s,
                    token=task.key,
                )
                if delay > 0.0:
                    time.sleep(delay)
                self.report.retried += 1
            params = perturbed_params(
                task.point.params, attempt, self.seed_step
            )
            attempts = attempt + 1
            try:
                value = run_point_once(task.point.fn, params, self.timeout_s)
            except KeyboardInterrupt:
                self._interrupted = True
                return
            except WatchdogTimeout as error:
                last_record = serialize_error(error)
                last_error = error
                last_status = "timeout"
                continue
            except SimulationError as error:
                last_record = serialize_error(error)
                last_error = error
                last_status = "failed"
                continue
            except Exception as error:  # noqa: BLE001 - isolation boundary
                self._complete_failure(
                    task, "failed", serialize_error(error), attempts
                )
                if self.on_error == "raise":
                    self._raise_error = error  # original object, serially
                return
            self._complete_ok(task, value, attempts)
            return
        assert last_record is not None
        self._complete_failure(task, last_status, last_record, attempts)
        if self.on_error == "raise" and last_error is not None:
            self._raise_error = last_error

    # -- pooled executor ---------------------------------------------------

    def _spawn_worker(self, context: Any) -> _Worker:
        parent_end, child_end = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main, args=(child_end,), daemon=True
        )
        process.start()
        child_end.close()
        return _Worker(process, parent_end)

    @staticmethod
    def _kill_worker(worker: _Worker) -> None:
        try:
            worker.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
        process = worker.process
        if process.is_alive():
            process.terminate()
            process.join(0.5)
            if process.is_alive():  # pragma: no cover - stubborn worker
                process.kill()
                process.join(0.5)

    def _dispatch(
        self,
        worker: _Worker,
        task: _Task,
        busy: dict[Connection, _Worker],
        idle: list[_Worker],
        context: Any,
        queue: "deque[_Task]",
    ) -> None:
        if task.started is None:
            task.started = time.monotonic()
        params = perturbed_params(
            task.point.params, task.attempt, self.seed_step
        )
        try:
            worker.connection.send((task.index, task.point.fn, params))
        except (BrokenPipeError, OSError):
            # The worker died while idle: replace it, requeue the task.
            self._kill_worker(worker)
            idle.append(self._spawn_worker(context))
            queue.appendleft(task)
            return
        worker.task = task
        worker.deadline = (
            time.monotonic() + self.timeout_s
            if self.timeout_s is not None
            else None
        )
        busy[worker.connection] = worker

    def _after_attempt_failure(
        self,
        task: _Task,
        status: str,
        record: ErrorRecord,
        retryable: bool,
        retries: list[tuple[float, int, _Task]],
    ) -> None:
        if retryable and task.attempt < self.max_retries and not self._abort:
            task.attempt += 1
            self.report.retried += 1
            delay = backoff_delay_s(
                task.attempt,
                self.backoff_base_s,
                self.backoff_max_s,
                token=task.key,
            )
            self._retry_sequence += 1
            heapq.heappush(
                retries,
                (time.monotonic() + delay, self._retry_sequence, task),
            )
        else:
            self._complete_failure(task, status, record, task.attempt + 1)

    def _collect(
        self,
        worker: _Worker,
        busy: dict[Connection, _Worker],
        idle: list[_Worker],
        retries: list[tuple[float, int, _Task]],
        context: Any,
    ) -> None:
        task = worker.task
        assert task is not None
        try:
            _index, status, payload = worker.connection.recv()
        except (EOFError, OSError):
            # Hard crash mid-point (os._exit, OOM kill, segfault).
            del busy[worker.connection]
            self._kill_worker(worker)
            exitcode = worker.process.exitcode
            record: ErrorRecord = (
                "WorkerCrashed",
                f"worker died mid-point (exit code {exitcode})",
                "",
            )
            # Respawn unconditionally (surplus idle workers are cheap
            # and reaped at shutdown); deciding "is a worker still
            # needed" here would race the retry this crash may schedule.
            if not (self._abort or self._interrupted):
                idle.append(self._spawn_worker(context))
            self._after_attempt_failure(
                task, "crashed", record, retryable=True, retries=retries
            )
            return
        del busy[worker.connection]
        worker.task = None
        worker.deadline = None
        idle.append(worker)
        if status == "ok":
            self._complete_ok(task, payload, attempts=task.attempt + 1)
            return
        error_type = payload[0]
        failure_status = "timeout" if error_type == "WatchdogTimeout" else "failed"
        self._after_attempt_failure(
            task,
            failure_status,
            payload,
            retryable=_retryable(error_type),
            retries=retries,
        )

    def _enforce_deadlines(
        self,
        busy: dict[Connection, _Worker],
        idle: list[_Worker],
        retries: list[tuple[float, int, _Task]],
        context: Any,
    ) -> None:
        now = time.monotonic()
        for connection, worker in list(busy.items()):
            if worker.deadline is None or now <= worker.deadline:
                continue
            task = worker.task
            assert task is not None
            del busy[connection]
            self._kill_worker(worker)
            if not (self._abort or self._interrupted):
                idle.append(self._spawn_worker(context))
            record: ErrorRecord = (
                "WatchdogTimeout",
                f"sweep point exceeded its {self.timeout_s:g}s wall-clock "
                "budget; worker killed",
                "",
            )
            self._after_attempt_failure(
                task, "timeout", record, retryable=True, retries=retries
            )

    def _wait_timeout(
        self,
        busy: Mapping[Connection, _Worker],
        retries: Sequence[tuple[float, int, _Task]],
    ) -> float:
        now = time.monotonic()
        timeout = _POLL_INTERVAL_S
        for worker in busy.values():
            if worker.deadline is not None:
                timeout = min(timeout, worker.deadline - now)
        if retries:
            timeout = min(timeout, retries[0][0] - now)
        return max(0.01, timeout)

    def _run_pooled(self, tasks: Sequence[_Task]) -> None:
        context = _engine._mp_context(self.start_method)
        queue: deque[_Task] = deque(tasks)
        retries: list[tuple[float, int, _Task]] = []
        workers = min(self.jobs, len(tasks))
        idle: list[_Worker] = [
            self._spawn_worker(context) for _ in range(workers)
        ]
        busy: dict[Connection, _Worker] = {}
        try:
            while not self._interrupted:
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    _, _, task = heapq.heappop(retries)
                    queue.append(task)
                if not self._abort:
                    while queue and idle:
                        self._dispatch(
                            idle.pop(), queue.popleft(), busy, idle, context,
                            queue,
                        )
                if not busy:
                    if self._abort:
                        return  # raise-mode: drop undispatched work
                    if retries:
                        # Everything left is backing off; nap until the
                        # first retry is due (in small, signal-aware
                        # increments).
                        time.sleep(
                            min(
                                _POLL_INTERVAL_S,
                                max(0.01, retries[0][0] - time.monotonic()),
                            )
                        )
                        continue
                    if queue:  # pragma: no cover - no idle worker survived
                        raise ExperimentError(
                            "supervised pool lost every worker"
                        )
                    return
                ready = connection_wait(
                    list(busy), timeout=self._wait_timeout(busy, retries)
                )
                for connection in ready:
                    worker = busy.get(connection)
                    if worker is not None:
                        self._collect(worker, busy, idle, retries, context)
                self._enforce_deadlines(busy, idle, retries, context)
        finally:
            self._shutdown_workers(list(idle) + list(busy.values()))

    @staticmethod
    def _shutdown_workers(workers: Sequence[_Worker]) -> None:
        for worker in workers:
            if worker.task is None:
                try:
                    worker.connection.send(None)
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + 1.0
        for worker in workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(0.5)
                if worker.process.is_alive():  # pragma: no cover - stubborn
                    worker.process.kill()
                    worker.process.join(0.5)
            try:
                worker.connection.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # -- orchestration -----------------------------------------------------

    def run(self) -> SweepOutcome:
        started = time.monotonic()
        tasks = self._triage()
        if self.journal is not None:
            self.journal.start_sweep(
                total=len(self.points),
                to_run=len(tasks),
                version_tag=self.version,
                policy={
                    "timeout_s": self.timeout_s,
                    "max_retries": self.max_retries,
                    "on_error": self.on_error,
                },
            )
        previous_handlers = self._install_signals()
        try:
            if tasks:
                if self.jobs == 1 or len(tasks) == 1:
                    self._run_serial(tasks)
                else:
                    self._run_pooled(tasks)
        except KeyboardInterrupt:
            # Handler not installed (nested sweep / non-main thread) or
            # a second Ctrl-C landed between points.
            self._interrupted = True
        finally:
            self._restore_signals(previous_handlers)
        self.report.elapsed_s = time.monotonic() - started
        completed = self.report.ok + self.report.failed
        if self._interrupted:
            if self.journal is not None:
                self.journal.interrupted(completed, len(self.points))
            where = (
                f"journal: {self.report.journal_path}"
                if self.report.journal_path is not None
                else "no journal; completed points survive in the cache"
            )
            raise SweepInterrupted(
                f"sweep interrupted after {completed}/{len(self.points)} "
                f"points; {where} — re-run with resume to finish the rest"
            )
        if self.journal is not None:
            self.journal.finish(ok=self.report.ok, failed=self.report.failed)
        if self._raise_error is not None:
            raise self._raise_error
        if self.report.failures and self.report_stream is not None:
            print(self.report.render(), file=self.report_stream, flush=True)
        return SweepOutcome(results=self.results, report=self.report)


def supervise_sweep(
    points: Sequence[SweepPoint],
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy: Any = None,
    start_method: str | None = None,
    journal: SweepJournal | str | None = None,
    on_error: str | None = None,
    resume: bool | None = None,
    report_stream: TextIO | None = None,
) -> SweepOutcome:
    """Run a sweep under supervision; the engine's ``run_sweep`` wraps this.

    ``journal`` / ``on_error`` / ``resume`` left as ``None`` fall back
    to the ``journal_path`` / ``on_error`` / ``resume`` attributes of
    ``policy`` (the :class:`~repro.experiments.runner.RunnerConfig`
    shape), so one policy object travels from the CLI into every sweep
    an experiment makes.  ``report_stream`` defaults to ``sys.stderr``;
    pass a file-like object to capture the degraded-sweep report, or
    rely on the returned :class:`SweepOutcome`'s report.
    """
    if on_error is None:
        on_error = getattr(policy, "on_error", None) or "raise"
    if on_error not in ON_ERROR_POLICIES:
        raise ExperimentError(
            f"on_error must be one of {', '.join(ON_ERROR_POLICIES)}, "
            f"got {on_error!r}"
        )
    if journal is None:
        journal_path = getattr(policy, "journal_path", None)
        journal = SweepJournal(journal_path) if journal_path else None
        owns_journal = journal is not None
    elif isinstance(journal, SweepJournal):
        owns_journal = False
    else:
        journal = SweepJournal(journal)
        owns_journal = True
    if resume is None:
        resume = bool(getattr(policy, "resume", False))
    if resume and journal is None:
        raise ExperimentError(
            "resume needs a journal: pass journal=/--journal with the "
            "path of the interrupted sweep's journal"
        )
    if report_stream is None:
        report_stream = sys.stderr
    supervision = _Supervision(
        points,
        jobs=jobs,
        cache=cache,
        policy=policy,
        start_method=start_method,
        journal=journal,
        on_error=on_error,
        resume=resume,
        report_stream=report_stream,
    )
    try:
        return supervision.run()
    finally:
        if owns_journal and journal is not None:
            journal.close()
