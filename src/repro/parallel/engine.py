"""Process-pool sweep engine for embarrassingly-parallel experiments.

Every paper artefact is a grid of *independent* simulation points —
``(scenario parameters, seed)`` tuples whose results are merged into a
table or figure.  The engine fans those points across worker processes
and merges results **in point order**, so parallel output is
bit-identical to the serial path; ``jobs=1`` never touches
``multiprocessing`` at all.

Points are described, not closed over: a :class:`SweepPoint` names its
function by dotted path (``"repro.experiments.ranges:loss_point"``) and
carries a JSON-serialisable parameter mapping.  That makes points
picklable under any start method (the engine is spawn-safe) and gives
the :class:`~repro.parallel.cache.SweepCache` a canonical content
address for each result.

The hardened runner's per-point policy travels into the workers: a
:class:`~repro.experiments.runner.RunnerConfig`-shaped object (anything
with ``timeout_s`` / ``max_retries`` / ``retry_seed_step``) applies the
same timeout + reseeded-retry semantics to each point, whether it runs
in-process or in a pool worker.
"""

from __future__ import annotations

import importlib
import multiprocessing
import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro import errors as _errors
from repro.errors import ExperimentError, SimulationError, WatchdogTimeout
from repro.parallel.cache import SweepCache

#: ``(timeout_s, max_retries, retry_seed_step)`` — the picklable form a
#: runner policy takes on its way into a worker.
PolicyTuple = tuple[float | None, int, int]

_NO_POLICY: PolicyTuple = (None, 0, 0)


@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of sweep work.

    ``fn`` is a dotted path ``"package.module:function"``; ``params``
    are keyword arguments for it, restricted to JSON-serialisable values
    so the point can be content-addressed and shipped to spawn workers.
    """

    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)


def resolve_point_fn(fn: str) -> Callable[..., Any]:
    """Import and return the function a dotted ``module:name`` path names."""
    module_name, _, attr = fn.partition(":")
    if not module_name or not attr:
        raise ExperimentError(
            f"point function path must look like 'pkg.mod:fn', got {fn!r}"
        )
    try:
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    except (ImportError, AttributeError) as error:
        raise ExperimentError(
            f"cannot resolve point function {fn!r}: {error}"
        ) from error


def _policy_tuple(policy: Any) -> PolicyTuple:
    """Flatten a RunnerConfig-shaped object into a picklable tuple."""
    if policy is None:
        return _NO_POLICY
    return (
        getattr(policy, "timeout_s", None),
        max(0, getattr(policy, "max_retries", 0)),
        getattr(policy, "retry_seed_step", 0),
    )


class _TimedCall:
    """Run a thunk under an optional wall-clock budget (same semantics
    as the runner's ``_Attempt``: an expired call is abandoned, not
    killed — pair with an engine watchdog when the leak matters)."""

    def __init__(self, thunk: Callable[[], Any]):
        self._thunk = thunk
        self._value: Any = None
        self._error: BaseException | None = None

    def _target(self) -> None:
        try:
            self._value = self._thunk()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            self._error = error

    def __call__(self, timeout_s: float | None) -> Any:
        if timeout_s is None:
            self._target()
        else:
            worker = threading.Thread(target=self._target, daemon=True)
            worker.start()
            worker.join(timeout_s)
            if worker.is_alive():
                raise WatchdogTimeout(
                    f"sweep point exceeded its {timeout_s:g}s wall-clock budget"
                )
        if self._error is not None:
            raise self._error
        return self._value


def execute_point(fn: str, params: Mapping[str, Any], policy: PolicyTuple = _NO_POLICY) -> Any:
    """Run one point under the (timeout, reseeded-retry) policy.

    Retries — like the hardened runner — only fire on
    :class:`~repro.errors.SimulationError` (kernel-level failures are
    the seed-sensitive ones) and perturb the point's ``seed`` parameter,
    when it has one, by ``retry_seed_step`` per attempt.  Spec-driven
    points carry their seed inside a ``spec`` document instead; the same
    perturbation applies to ``params["spec"]["seed"]``.
    """
    function = resolve_point_fn(fn)
    timeout_s, max_retries, seed_step = policy
    last_error: BaseException | None = None
    for attempt in range(max_retries + 1):
        kwargs = dict(params)
        if attempt and "seed" in kwargs:
            kwargs["seed"] = kwargs["seed"] + attempt * seed_step
        spec = kwargs.get("spec")
        if attempt and isinstance(spec, Mapping) and "seed" in spec:
            reseeded = dict(spec)
            reseeded["seed"] = reseeded["seed"] + attempt * seed_step
            kwargs["spec"] = reseeded
        try:
            return _TimedCall(lambda: function(**kwargs))(timeout_s)
        except SimulationError as error:
            last_error = error
    assert last_error is not None
    raise last_error


def _pool_worker(task: tuple[str, dict[str, Any], PolicyTuple]) -> tuple[str, Any]:
    """Top-level (hence spawn-picklable) worker: run a point, never raise.

    Exceptions cross the process boundary as structured records so the
    parent can re-raise the right type with the worker's traceback.
    """
    fn, params, policy = task
    try:
        return ("ok", execute_point(fn, params, policy))
    except BaseException as error:  # noqa: BLE001 - serialised for the parent
        return (
            "err",
            (type(error).__name__, str(error), traceback.format_exc()),
        )


def _reraise(fn: str, record: tuple[str, str, str]) -> None:
    """Raise a worker failure in the parent with its original type when
    it is one of ours (so runner retry/timeout semantics still apply)."""
    error_type, message, worker_traceback = record
    exc_class = getattr(_errors, error_type, None)
    detail = f"sweep point {fn} failed: {message}"
    if isinstance(exc_class, type) and issubclass(exc_class, Exception):
        raise exc_class(detail)
    raise ExperimentError(f"{detail}\n--- worker traceback ---\n{worker_traceback}")


def _mp_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Fork where available (cheap workers), spawn otherwise.

    The engine itself is spawn-safe — points are picklable descriptions
    and the worker is a module-level function — so ``start_method`` may
    force ``"spawn"`` (the tests do) at the cost of per-worker
    interpreter start-up.
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def run_sweep(
    points: Sequence[SweepPoint | tuple[str, Mapping[str, Any]]],
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy: Any = None,
    start_method: str | None = None,
) -> list[Any]:
    """Evaluate every point and return the values **in point order**.

    ``jobs=1`` is the in-process serial path (no pool, exceptions
    propagate with their original tracebacks); ``jobs>1`` fans cache
    misses across a process pool.  With a ``cache``, hits are served
    from disk and only misses are executed; either way the returned list
    lines up index-for-index with ``points``, so parallel, serial and
    warm-cache runs are interchangeable.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    normalised = [
        point if isinstance(point, SweepPoint) else SweepPoint(point[0], point[1])
        for point in points
    ]
    results: list[Any] = [None] * len(normalised)
    misses: list[int] = []
    if cache is not None:
        for index, point in enumerate(normalised):
            hit, value = cache.lookup(point.fn, point.params)
            if hit:
                results[index] = value
            else:
                misses.append(index)
    else:
        misses = list(range(len(normalised)))

    policy_tuple = _policy_tuple(policy)
    if misses:
        if jobs == 1 or len(misses) == 1:
            for index in misses:
                point = normalised[index]
                results[index] = execute_point(
                    point.fn, point.params, policy_tuple
                )
        else:
            tasks = [
                (normalised[index].fn, dict(normalised[index].params), policy_tuple)
                for index in misses
            ]
            context = _mp_context(start_method)
            processes = min(jobs, len(tasks))
            chunksize = max(1, len(tasks) // (processes * 4))
            with context.Pool(processes=processes) as pool:
                outcomes = pool.map(_pool_worker, tasks, chunksize=chunksize)
            for index, (status, payload) in zip(misses, outcomes):
                if status != "ok":
                    _reraise(normalised[index].fn, payload)
                results[index] = payload
        if cache is not None:
            for index in misses:
                point = normalised[index]
                cache.put(point.fn, point.params, results[index])
    return results


def pmap(
    function: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    start_method: str | None = None,
) -> list[Any]:
    """Ordered parallel map for picklable callables (no cache layer).

    The generic escape hatch :func:`repro.experiments.replication`
    uses: ``function`` must be a module-level (hence picklable)
    callable when ``jobs > 1``.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    item_list = list(items)
    if jobs == 1 or len(item_list) <= 1:
        return [function(item) for item in item_list]
    context = _mp_context(start_method)
    processes = min(jobs, len(item_list))
    with context.Pool(processes=processes) as pool:
        return pool.map(function, item_list)
