"""Process-pool sweep engine for embarrassingly-parallel experiments.

Every paper artefact is a grid of *independent* simulation points —
``(scenario parameters, seed)`` tuples whose results are merged into a
table or figure.  The engine fans those points across worker processes
and merges results **in point order**, so parallel output is
bit-identical to the serial path; ``jobs=1`` never touches
``multiprocessing`` at all.

Points are described, not closed over: a :class:`SweepPoint` names its
function by dotted path (``"repro.experiments.ranges:loss_point"``) and
carries a JSON-serialisable parameter mapping.  That makes points
picklable under any start method (the engine is spawn-safe) and gives
the :class:`~repro.parallel.cache.SweepCache` a canonical content
address for each result.

Execution is delegated to the supervised executor
(:mod:`repro.parallel.supervisor`): per-point dispatch with wall-clock
deadlines, dead/hung-worker detection with respawn and task
reassignment, bounded retry with jittered exponential backoff and
perturbed seeds, an optional persistent journal
(:mod:`repro.parallel.journal`) with ``resume`` support, and a failure
policy (``on_error = "raise" | "skip" | "degrade"``).  Completed
results are persisted to the cache *as they finish*, so one failing
point never discards the work of the others.

The hardened runner's per-point policy travels into the workers: a
:class:`~repro.experiments.runner.RunnerConfig`-shaped object (anything
with ``timeout_s`` / ``max_retries`` / ``retry_seed_step`` /
``backoff_base_s`` / ``backoff_max_s`` / ``on_error`` /
``journal_path`` / ``resume``) applies the same semantics to each
point, whether it runs in-process or in a pool worker.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro import errors as _errors
from repro.errors import ExperimentError, SimulationError, WatchdogTimeout
from repro.parallel.cache import SweepCache
from repro.parallel.journal import SweepJournal

#: ``(timeout_s, max_retries, retry_seed_step, backoff_base_s,
#: backoff_max_s)`` — the picklable form a runner policy takes on its
#: way into a worker.  Legacy three-element tuples (no backoff) are
#: still accepted everywhere a policy tuple is.
PolicyTuple = tuple[float | None, int, int, float, float]

_NO_POLICY: PolicyTuple = (None, 0, 0, 0.0, 0.0)


@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of sweep work.

    ``fn`` is a dotted path ``"package.module:function"``; ``params``
    are keyword arguments for it, restricted to JSON-serialisable values
    so the point can be content-addressed and shipped to spawn workers.
    """

    fn: str
    params: Mapping[str, Any] = field(default_factory=dict)


def resolve_point_fn(fn: str) -> Callable[..., Any]:
    """Import and return the function a dotted ``module:name`` path names."""
    module_name, _, attr = fn.partition(":")
    if not module_name or not attr:
        raise ExperimentError(
            f"point function path must look like 'pkg.mod:fn', got {fn!r}"
        )
    try:
        module = importlib.import_module(module_name)
        return getattr(module, attr)
    except (ImportError, AttributeError) as error:
        raise ExperimentError(
            f"cannot resolve point function {fn!r}: {error}"
        ) from error


def backoff_delay_s(
    attempt: int, base_s: float, max_s: float, token: str = ""
) -> float:
    """Jittered exponential backoff before retry ``attempt`` (1-based).

    Deterministic: the jitter is derived from a SHA-256 over
    ``token:attempt`` rather than a live RNG, so two runs of the same
    sweep back off identically and reports stay reproducible.  The raw
    delay doubles per attempt up to ``max_s``; jitter scales it into
    ``[0.5, 1.0] * raw`` so a fleet of retrying points never
    synchronises.  ``base_s <= 0`` disables backoff entirely.
    """
    if base_s <= 0.0 or attempt < 1:
        return 0.0
    cap = max(base_s, max_s)
    raw = min(base_s * (2.0 ** (attempt - 1)), cap)
    digest = hashlib.sha256(f"{token}:{attempt}".encode()).digest()
    unit = int.from_bytes(digest[:8], "big") / 2.0**64
    return raw * (0.5 + 0.5 * unit)


def _policy_tuple(policy: Any) -> PolicyTuple:
    """Flatten a RunnerConfig-shaped object into a picklable tuple."""
    if policy is None:
        return _NO_POLICY
    return (
        getattr(policy, "timeout_s", None),
        max(0, getattr(policy, "max_retries", 0)),
        getattr(policy, "retry_seed_step", 0),
        max(0.0, getattr(policy, "backoff_base_s", 0.0)),
        max(0.0, getattr(policy, "backoff_max_s", 0.0)),
    )


def _normalise_policy(policy: Sequence[Any]) -> PolicyTuple:
    """Widen a legacy 3-tuple policy to the 5-element form."""
    timeout_s = policy[0]
    max_retries = max(0, int(policy[1]))
    seed_step = int(policy[2])
    base_s = float(policy[3]) if len(policy) > 3 else 0.0
    max_s = float(policy[4]) if len(policy) > 4 else base_s
    return (timeout_s, max_retries, seed_step, base_s, max_s)


def perturbed_params(
    params: Mapping[str, Any], attempt: int, seed_step: int
) -> dict[str, Any]:
    """The point's kwargs for retry ``attempt`` (0 = first try).

    Retries perturb the point's ``seed`` parameter, when it has one, by
    ``seed_step`` per attempt.  Spec-driven points carry their seed
    inside a ``spec`` document instead; the same perturbation applies to
    ``params["spec"]["seed"]``.
    """
    kwargs = dict(params)
    if attempt and "seed" in kwargs:
        kwargs["seed"] = kwargs["seed"] + attempt * seed_step
    spec = kwargs.get("spec")
    if attempt and isinstance(spec, Mapping) and "seed" in spec:
        reseeded = dict(spec)
        reseeded["seed"] = reseeded["seed"] + attempt * seed_step
        kwargs["spec"] = reseeded
    return kwargs


class _TimedCall:
    """Run a thunk under an optional wall-clock budget (same semantics
    as the runner's ``_Attempt``: an expired call is abandoned, not
    killed — the supervised pool path *kills* overdue workers instead,
    so prefer ``jobs > 1`` when the leak matters)."""

    def __init__(self, thunk: Callable[[], Any]):
        self._thunk = thunk
        self._value: Any = None
        self._error: BaseException | None = None

    def _target(self) -> None:
        try:
            self._value = self._thunk()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            self._error = error

    def __call__(self, timeout_s: float | None) -> Any:
        if timeout_s is None:
            self._target()
        else:
            worker = threading.Thread(target=self._target, daemon=True)
            worker.start()
            worker.join(timeout_s)
            if worker.is_alive():
                raise WatchdogTimeout(
                    f"sweep point exceeded its {timeout_s:g}s wall-clock budget"
                )
        if self._error is not None:
            raise self._error
        return self._value


def run_point_once(
    fn: str, params: Mapping[str, Any], timeout_s: float | None = None
) -> Any:
    """One attempt of one point — no retries, no seed perturbation."""
    function = resolve_point_fn(fn)
    return _TimedCall(lambda: function(**dict(params)))(timeout_s)


def execute_point(
    fn: str, params: Mapping[str, Any], policy: Sequence[Any] = _NO_POLICY
) -> Any:
    """Run one point under the (timeout, backoff, reseeded-retry) policy.

    Retries — like the hardened runner — only fire on
    :class:`~repro.errors.SimulationError` (kernel-level failures are
    the seed-sensitive ones), sleep a deterministic jittered exponential
    backoff between attempts, and perturb the point's seed by
    ``retry_seed_step`` per attempt (see :func:`perturbed_params`).
    """
    timeout_s, max_retries, seed_step, base_s, max_s = _normalise_policy(policy)
    last_error: BaseException | None = None
    for attempt in range(max_retries + 1):
        if attempt:
            delay = backoff_delay_s(attempt, base_s, max_s, token=fn)
            if delay > 0.0:
                time.sleep(delay)
        kwargs = perturbed_params(params, attempt, seed_step)
        try:
            return run_point_once(fn, kwargs, timeout_s)
        except SimulationError as error:
            last_error = error
    assert last_error is not None
    raise last_error


#: The serialised form a worker failure takes across the process
#: boundary: ``(exception type name, message, formatted traceback)``.
ErrorRecord = tuple[str, str, str]


def serialize_error(error: BaseException) -> ErrorRecord:
    """Flatten an exception into a picklable record for the parent."""
    return (type(error).__name__, str(error), traceback.format_exc())


def worker_error(fn: str, record: ErrorRecord) -> Exception:
    """Rebuild a worker failure in the parent.

    The original exception type is preserved when it is one of ours
    (so runner retry/timeout semantics still apply); foreign types
    degrade to :class:`ExperimentError` carrying the worker traceback.
    """
    error_type, message, worker_traceback = record
    exc_class = getattr(_errors, error_type, None)
    detail = f"sweep point {fn} failed: {message}"
    if isinstance(exc_class, type) and issubclass(exc_class, Exception):
        return exc_class(detail)
    return ExperimentError(
        f"{detail}\n--- worker traceback ---\n{worker_traceback}"
    )


def _reraise(fn: str, record: ErrorRecord) -> None:
    """Raise a worker failure in the parent with its original type."""
    raise worker_error(fn, record)


def _mp_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Fork where available (cheap workers), spawn otherwise.

    The engine itself is spawn-safe — points are picklable descriptions
    and the worker is a module-level function — so ``start_method`` may
    force ``"spawn"`` (the tests do) at the cost of per-worker
    interpreter start-up.
    """
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def run_sweep(
    points: Sequence[SweepPoint | tuple[str, Mapping[str, Any]]],
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy: Any = None,
    start_method: str | None = None,
    journal: SweepJournal | str | None = None,
    on_error: str | None = None,
    resume: bool | None = None,
) -> list[Any]:
    """Evaluate every point and return the values **in point order**.

    ``jobs=1`` is the in-process serial path (no pool, exceptions
    propagate with their original tracebacks); ``jobs>1`` fans cache
    misses across a supervised worker pool that detects crashed and
    hung workers, respawns them and retries their points.  With a
    ``cache``, hits are served from disk and only misses are executed;
    either way the returned list lines up index-for-index with
    ``points``, so parallel, serial and warm-cache runs are
    interchangeable.

    Completed results are persisted to the cache and ``journal`` as
    each point finishes — a failure at point 900/1000 never discards
    the other 899.  ``on_error`` selects the failure policy: ``raise``
    (default) re-raises the first final failure, ``skip`` leaves
    ``None`` at the failed index, ``degrade`` leaves a typed
    :class:`~repro.parallel.supervisor.PointFailure` record; both
    non-raising modes print a sweep report to stderr.  ``resume=True``
    (requires a journal) skips points the journal already records as
    ``ok`` under the current code version.  ``journal``/``on_error``/
    ``resume`` left as ``None`` fall back to the same-named attributes
    of ``policy``.

    SIGINT/SIGTERM during the sweep trigger a graceful shutdown —
    journal and cache are flushed and :class:`~repro.errors.\
    SweepInterrupted` names the resumable state.  Note that a single
    outstanding point always runs in-process (no pool start-up cost),
    so crash-grade isolation needs ``jobs >= 2`` *and* at least two
    points left to run.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    normalised = [
        point if isinstance(point, SweepPoint) else SweepPoint(point[0], point[1])
        for point in points
    ]
    from repro.parallel.supervisor import supervise_sweep

    outcome = supervise_sweep(
        normalised,
        jobs=jobs,
        cache=cache,
        policy=policy,
        start_method=start_method,
        journal=journal,
        on_error=on_error,
        resume=resume,
    )
    return outcome.results


def _pmap_worker(task: tuple[Callable[[Any], Any], Any]) -> tuple[str, Any]:
    """Top-level (hence spawn-picklable) worker: run one item, never raise.

    Exceptions cross the process boundary as structured records so the
    parent can re-raise the right type with the worker's traceback.
    """
    function, item = task
    try:
        return ("ok", function(item))
    except BaseException as error:  # noqa: BLE001 - serialised for the parent
        return ("err", serialize_error(error))


def pmap(
    function: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    start_method: str | None = None,
) -> list[Any]:
    """Ordered parallel map for picklable callables (no cache layer).

    The generic escape hatch :func:`repro.experiments.replication`
    uses: ``function`` must be a module-level (hence picklable)
    callable when ``jobs > 1``.

    Failure semantics: worker exceptions are serialised back to the
    parent and re-raised for the **first failing item in item order** —
    with their original type when it is a :mod:`repro.errors` class, or
    wrapped in :class:`ExperimentError` carrying the worker's traceback
    otherwise.  Results of the other items are discarded (``pmap`` has
    no cache; use :func:`run_sweep` with a cache and ``on_error`` when
    partial progress must survive a failure).  On the serial path
    (``jobs=1``) exceptions propagate unwrapped with their original
    tracebacks.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    item_list = list(items)
    if jobs == 1 or len(item_list) <= 1:
        return [function(item) for item in item_list]
    context = _mp_context(start_method)
    processes = min(jobs, len(item_list))
    tasks = [(function, item) for item in item_list]
    with context.Pool(processes=processes) as pool:
        outcomes = pool.map(_pmap_worker, tasks)
    results: list[Any] = []
    for (status, payload), _item in zip(outcomes, item_list):
        if status != "ok":
            _reraise(getattr(function, "__name__", repr(function)), payload)
        results.append(payload)
    return results
