"""Persistent sweep journal: one JSONL record per point outcome.

The journal is the crash-safe companion of the
:class:`~repro.parallel.cache.SweepCache`: while the cache stores
*values*, the journal stores *outcomes* — ``ok`` / ``failed`` /
``timeout`` / ``crashed`` with attempt counts, durations and error
details — appended line by line as the supervised executor finishes
each point.  Every line is flushed as it is written, so an interrupted
or killed sweep leaves a valid prefix on disk; :func:`load_journal`
tolerates a torn final line.

Record types (the ``type`` field of each JSON line):

``sweep-start``
    Header for one :func:`~repro.parallel.engine.run_sweep` call:
    total point count, how many still need to run, the code-version
    tag and the retry policy in force.
``point``
    One per-point outcome (see :class:`PointRecord`).  Successful
    records carry the point's value, so ``--resume`` can rebuild the
    merged result list even without the cache.
``sweep-end``
    Trailer with the final ok/failed tally.
``interrupted``
    Written during graceful SIGINT/SIGTERM shutdown, right before
    :class:`~repro.errors.SweepInterrupted` propagates.

A journal file may accumulate records from several sweeps (an ``all``
batch appends every experiment's sweeps to one file); points are keyed
by :func:`~repro.parallel.cache.point_key`, and on load the *latest*
record per key wins.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Any, Mapping

#: Every status a point record may carry.
POINT_STATUSES: tuple[str, ...] = ("ok", "failed", "timeout", "crashed")


@dataclass
class PointRecord:
    """One per-point outcome line.

    ``key`` is the point's content address (identical to its cache
    key); ``version`` is the code-version tag the point ran under, so
    resume never trusts results produced by different simulation
    semantics.  ``cached`` marks outcomes served from the result cache
    (``attempts == 0``) rather than executed.
    """

    key: str
    fn: str
    index: int
    status: str
    attempts: int
    duration_s: float
    version: str
    value: Any = None
    error: str | None = None
    error_type: str | None = None
    cached: bool = False

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (``value`` only on success)."""
        document: dict[str, Any] = {
            "type": "point",
            "key": self.key,
            "fn": self.fn,
            "index": self.index,
            "status": self.status,
            "attempts": self.attempts,
            "duration_s": round(self.duration_s, 4),
            "version": self.version,
        }
        if self.status == "ok":
            document["value"] = self.value
        if self.error is not None:
            document["error"] = self.error
        if self.error_type is not None:
            document["error_type"] = self.error_type
        if self.cached:
            document["cached"] = True
        return document

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "PointRecord":
        """Parse one journal line back into a record."""
        return cls(
            key=str(document["key"]),
            fn=str(document.get("fn", "")),
            index=int(document.get("index", -1)),
            status=str(document["status"]),
            attempts=int(document.get("attempts", 0)),
            duration_s=float(document.get("duration_s", 0.0)),
            version=str(document.get("version", "")),
            value=document.get("value"),
            error=document.get("error"),
            error_type=document.get("error_type"),
            cached=bool(document.get("cached", False)),
        )


class SweepJournal:
    """Append-only JSONL writer for per-point sweep outcomes.

    Opened lazily on the first write and flushed after every line, so
    the on-disk journal is always a valid prefix of the sweep — the
    property the chaos tests assert after ``kill -INT``.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def _write(self, document: Mapping[str, Any]) -> None:
        try:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            self._handle.write(
                json.dumps(document, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._handle.flush()
        except OSError:  # pragma: no cover - disk full / read-only journal
            pass

    def start_sweep(
        self,
        total: int,
        to_run: int,
        version_tag: str,
        policy: Mapping[str, Any] | None = None,
    ) -> None:
        """Header for one ``run_sweep`` call."""
        document: dict[str, Any] = {
            "type": "sweep-start",
            "total": total,
            "to_run": to_run,
            "version": version_tag,
        }
        if policy:
            document["policy"] = dict(policy)
        self._write(document)

    def record(self, record: PointRecord) -> None:
        """Append one point outcome (flushed immediately)."""
        self._write(record.to_dict())

    def finish(self, ok: int, failed: int) -> None:
        """Trailer after a sweep ran to completion."""
        self._write({"type": "sweep-end", "ok": ok, "failed": failed})

    def interrupted(self, completed: int, total: int) -> None:
        """Mark a graceful shutdown; fsync so the state survives exit."""
        self._write(
            {"type": "interrupted", "completed": completed, "total": total}
        )
        if self._handle is not None:
            try:
                os.fsync(self._handle.fileno())
            except OSError:  # pragma: no cover - non-fsyncable target
                pass

    def close(self) -> None:
        """Close the underlying file (re-opened on the next write)."""
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def load_journal(path: str | Path) -> dict[str, PointRecord]:
    """Latest point record per key from a journal file.

    A missing file is an empty journal.  Corrupt lines — including the
    torn final line a hard kill can leave — are skipped: the journal is
    for recovery, so it must never take a resume down.
    """
    journal_path = Path(path)
    records: dict[str, PointRecord] = {}
    try:
        text = journal_path.read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except ValueError:
            continue
        if not isinstance(document, dict) or document.get("type") != "point":
            continue
        try:
            record = PointRecord.from_dict(document)
        except (KeyError, TypeError, ValueError):
            continue
        if record.status not in POINT_STATUSES:
            continue
        records[record.key] = record
    return records
