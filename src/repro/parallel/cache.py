"""Content-addressed result cache for sweep points.

A sweep point is a pure function of its parameters: the same point
function, parameter set and seed always produce the same value.  That
makes results cacheable by content address — the cache key is a SHA-256
over the canonicalised ``(function, parameters, version-tag)`` triple —
so regenerating a figure is a set of disk reads when nothing relevant
changed.

The **version tag** is a content hash of the simulation-semantics
modules (``sim``, ``channel``, ``phy``, ``mac``, ``net``, ``transport``,
``apps``, ``core``, ``faults``, ``experiments`` …).  Editing any of them
changes the tag and invalidates every entry; editing rendering/analysis
code (``analysis``, ``cli``, ``parallel`` itself) leaves the tag — and
the cache — intact, which is the point: re-rendering a figure after an
unrelated code change is a cache hit.

Entries are small JSON files under ``~/.cache/repro-sweeps`` (overridden
by ``--cache-dir`` / the ``REPRO_SWEEP_CACHE_DIR`` environment
variable), one file per point, written atomically.  Values must be
JSON-serialisable — point functions return plain floats/lists/dicts by
design.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Mapping

#: Subpackages of ``repro`` whose source content defines simulation
#: semantics.  A change to any file below these roots invalidates the
#: cache; everything else (rendering, CLI, the cache itself) does not.
_SEMANTIC_ROOTS: tuple[str, ...] = (
    "sim",
    "channel",
    "phy",
    "mac",
    "net",
    "transport",
    "apps",
    "core",
    "faults",
    "scenario",
    "experiments",
    "units.py",
    "errors.py",
)

_MISS = object()

_version_tag_cache: str | None = None


def default_cache_dir() -> Path:
    """Resolve the cache root: env override, else ``~/.cache/repro-sweeps``."""
    override = os.environ.get("REPRO_SWEEP_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-sweeps"


def code_version_tag() -> str:
    """Content hash of the simulation-semantics source files.

    Computed once per process (the sources cannot change under a running
    interpreter in any way that matters to already-imported code).
    """
    global _version_tag_cache
    if _version_tag_cache is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for root in _SEMANTIC_ROOTS:
            path = package_root / root
            if path.is_file():
                files = [path]
            elif path.is_dir():
                files = sorted(path.rglob("*.py"))
            else:  # pragma: no cover - layout change
                continue
            for file in files:
                digest.update(str(file.relative_to(package_root)).encode())
                digest.update(b"\0")
                digest.update(file.read_bytes())
                digest.update(b"\0")
        _version_tag_cache = digest.hexdigest()[:16]
    return _version_tag_cache


def canonical_params(params: Mapping[str, Any]) -> str:
    """Deterministic JSON rendering of a parameter mapping."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def point_key(fn: str, params: Mapping[str, Any], version_tag: str) -> str:
    """Content address of one sweep point.

    Shared by the cache and the sweep journal, so a journal entry and a
    cache entry for the same point always carry the same key — resume
    can match them up without re-deriving anything.
    """
    body = json.dumps(
        {"fn": fn, "params": params, "version": version_tag},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode()).hexdigest()


class SweepCache:
    """Content-addressed store of sweep-point results.

    Parameters
    ----------
    root:
        Cache directory; created lazily.  Defaults to
        :func:`default_cache_dir`.
    version_tag:
        Overrides :func:`code_version_tag` — tests use this to check
        invalidation semantics without editing source files.
    """

    def __init__(self, root: str | Path | None = None, version_tag: str | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.version_tag = (
            version_tag if version_tag is not None else code_version_tag()
        )
        self.hits = 0
        self.misses = 0

    def key(self, fn: str, params: Mapping[str, Any]) -> str:
        """Content address of one point."""
        return point_key(fn, params, self.version_tag)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, fn: str, params: Mapping[str, Any]) -> Any:
        """The cached value, or the module-private miss sentinel.

        Use :meth:`lookup` for an explicit ``(hit, value)`` pair.
        """
        hit, value = self.lookup(fn, params)
        return value if hit else _MISS

    def lookup(self, fn: str, params: Mapping[str, Any]) -> tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        A corrupt or unreadable entry counts as a miss — the cache never
        takes a sweep down.
        """
        path = self._path(self.key(fn, params))
        try:
            document = json.loads(path.read_text())
            value = document["value"]
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, fn: str, params: Mapping[str, Any], value: Any) -> None:
        """Store one result (atomic write; failures are non-fatal)."""
        path = self._path(self.key(fn, params))
        document = {
            "fn": fn,
            "params": dict(params),
            "version": self.version_tag,
            "value": value,
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, temp_name = tempfile.mkstemp(
                dir=path.parent, suffix=".tmp"
            )
            with os.fdopen(handle, "w", encoding="utf-8") as temp:
                json.dump(document, temp)
            os.replace(temp_name, path)
        except OSError:  # pragma: no cover - disk full / read-only cache
            pass

    def clear(self) -> int:
        """Delete every entry; returns the number of files removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for entry in self.root.rglob("*.json"):
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent clear
                pass
        return removed
