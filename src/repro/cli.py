"""Command-line front-end: ``repro80211 <experiment>``.

Regenerates the paper's tables and figures from the terminal::

    repro80211 list
    repro80211 table2
    repro80211 figure3 --probes 300 --seed 7
    repro80211 fault-blackout --duration 20
    repro80211 all --duration 5 --probes 100 --timeout 120 --report run.json

Every run goes through the hardened experiment runner: a failing or
hung experiment produces a one-line error and a structured failure
record instead of a traceback, and the rest of an ``all`` batch still
completes.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import ExperimentResult, RunnerConfig, run_suite


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro80211",
        description=(
            "Reproduce the tables and figures of 'IEEE 802.11 Ad Hoc "
            "Networks: Performance Measurements' (ICDCS-W 2003)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, or 'all'",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="master random seed (default 1)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="simulated seconds per dynamic run (default 10)",
    )
    parser.add_argument(
        "--probes",
        type=int,
        default=200,
        help="probe frames per distance point in range sweeps (default 200)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per experiment attempt (default: none)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="reseeded retries after a simulation-kernel failure (default 1)",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write a machine-readable JSON report to PATH",
    )
    return parser


def _list_experiments() -> str:
    lines = ["available experiments:"]
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:{width}}  {EXPERIMENTS[name].description}")
    lines.append(f"  {'all':{width}}  run everything above in sequence")
    return "\n".join(lines)


def _print_result(result: ExperimentResult) -> None:
    if result.ok:
        print(result.output)
        retries = f", {result.attempts} attempts" if result.attempts > 1 else ""
        print(f"[{result.name} completed in {result.elapsed_s:.1f}s wall clock{retries}]")
        print()
    else:
        print(
            f"error: {result.name}: {result.error}",
            file=sys.stderr,
        )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        try:
            print(_list_experiments())
        except BrokenPipeError:  # pragma: no cover - `repro list | head`
            pass
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    config = RunnerConfig(timeout_s=args.timeout, max_retries=max(0, args.retries))
    try:
        report = run_suite(
            names,
            seed=args.seed,
            duration_s=args.duration,
            probes=args.probes,
            config=config,
            on_result=_print_result,
        )
        if len(names) > 1:
            print(report.format_summary())
        if args.report is not None:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
    except BrokenPipeError:  # pragma: no cover - output piped to head
        return 0
    except Exception as error:  # pragma: no cover - last-resort CLI surface
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0 if report.all_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
