"""Command-line front-end: ``repro80211 <experiment>``.

Regenerates the paper's tables and figures from the terminal::

    repro80211 list
    repro80211 table2
    repro80211 figure3 --probes 300 --seed 7
    repro80211 table3 --jobs 4                  # fan sweep points across 4 workers
    repro80211 figure3 --no-cache               # force re-simulation
    repro80211 list --clear-cache               # drop every cached sweep point
    repro80211 profile figure3 --probes 100     # cProfile top-N report
    repro80211 profile figure7 --sort tottime --output figure7.pstats
    repro80211 audit figure7 --duration 2       # packet ledger + invariant audit
    repro80211 all --duration 5 --probes 100 --timeout 120 --report run.json
    repro80211 lint --format json               # simulator static analysis
    repro80211 figure2 --set duration_s=1.5     # override a declared parameter
    repro80211 spec scenario.json               # run a ScenarioSpec file
    repro80211 spec scenario.json --set seed=7 --set stack.rts_enabled=true

``--set key=value`` feeds the experiment's declared parameters (or, for
``spec``, any dotted path into the scenario document); values parse as
JSON with a plain-string fallback.  Unknown keys are rejected with the
accepted ones listed — nothing is silently ignored.

Every run goes through the hardened experiment runner: a failing or
hung experiment produces a one-line error and a structured failure
record instead of a traceback, and the rest of an ``all`` batch still
completes.  Sweep-shaped experiments fan their independent points
across ``--jobs`` worker processes and reuse results from the
content-addressed cache under ``~/.cache/repro-sweeps`` (or
``--cache-dir``); output is bit-identical whatever the worker count or
cache temperature.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import SweepInterrupted
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import ExperimentResult, RunnerConfig, run_suite
from repro.parallel import SweepCache


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro80211",
        description=(
            "Reproduce the tables and figures of 'IEEE 802.11 Ad Hoc "
            "Networks: Performance Measurements' (ICDCS-W 2003)."
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment name, 'list' to enumerate, 'all' for everything, "
            "'profile' (with an experiment name) for a cProfile report, "
            "'audit' (with an experiment name) to run it under the "
            "flight-recorder packet ledger and invariant auditors, "
            "'spec' (with a JSON file) to run a declarative scenario, or "
            "'lint' for the simulator static-analysis checks"
        ),
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help=(
            "experiment to profile/audit (with 'profile'/'audit') or "
            "scenario spec file (with 'spec')"
        ),
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        dest="overrides",
        metavar="KEY=VALUE",
        help=(
            "override an experiment parameter (repeatable); with 'spec', a "
            "dotted path into the scenario document, e.g. "
            "stack.rts_enabled=true.  Unknown keys are rejected."
        ),
    )
    parser.add_argument(
        "--extract",
        default="repro.scenario.points:flow_throughputs_kbps",
        metavar="PKG.MOD:FN",
        help=(
            "metric extractor for the 'spec' command (default: per-flow "
            "throughput rows)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="master random seed (default 1)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="simulated seconds per dynamic run (default 10)",
    )
    parser.add_argument(
        "--probes",
        type=int,
        default=200,
        help="probe frames per distance point in range sweeps (default 200)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sweep points (default 1 = in-process "
            "serial; results are identical either way)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "sweep result cache directory (default ~/.cache/repro-sweeps "
            "or $REPRO_SWEEP_CACHE_DIR)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the sweep result cache (neither read nor write)",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete all cached sweep results before running",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget per experiment attempt and per sweep "
            "point (hung pool workers are killed; default: none)"
        ),
    )
    parser.add_argument(
        "--retries",
        "--max-retries",
        dest="retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "reseeded retries after a simulation-kernel failure, "
            "timeout or worker crash, with jittered exponential "
            "backoff between attempts (default 1)"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "append per-sweep-point outcomes (ok/failed/timeout/"
            "crashed) to a JSONL journal at PATH; enables --resume"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted sweep from --journal + cache: "
            "points already completed are not re-executed and the "
            "merged output is bit-identical to an uninterrupted run"
        ),
    )
    parser.add_argument(
        "--on-error",
        choices=("raise", "skip", "degrade"),
        default="raise",
        dest="on_error",
        help=(
            "sweep failure policy once retries are exhausted: raise "
            "aborts (default), skip/degrade complete the sweep with "
            "None/typed failure records at the failed points and "
            "print a sweep report"
        ),
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="also write a machine-readable JSON report to PATH",
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE.pstats",
        help=(
            "(profile) also dump the raw cProfile stats to FILE.pstats "
            "for archiving or snakeviz"
        ),
    )
    parser.add_argument(
        "--sort",
        choices=("both", "cumulative", "tottime"),
        default="both",
        help="(profile) report ordering (default: both sections)",
    )
    return parser


def _list_experiments() -> str:
    lines = ["available experiments:"]
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:{width}}  {EXPERIMENTS[name].description}")
    lines.append(f"  {'all':{width}}  run everything above in sequence")
    return "\n".join(lines)


def _print_result(result: ExperimentResult) -> None:
    if result.ok:
        print(result.output)
        retries = f", {result.attempts} attempts" if result.attempts > 1 else ""
        print(f"[{result.name} completed in {result.elapsed_s:.1f}s wall clock{retries}]")
        print()
    else:
        print(
            f"error: {result.name}: {result.error}",
            file=sys.stderr,
        )


def _parse_overrides(pairs: Sequence[str]) -> dict:
    """``KEY=VALUE`` strings -> override dict (values parse as JSON)."""
    import json

    from repro.errors import ExperimentError

    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ExperimentError(
                f"malformed --set {pair!r}; expected KEY=VALUE"
            )
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _run_spec(args: argparse.Namespace, cache, config: RunnerConfig) -> int:
    """Run one declarative scenario from a JSON spec file."""
    import json

    from repro.scenario import ScenarioSpec, apply_overrides, run_scenarios

    if args.target is None:
        print("error: spec needs a scenario file path", file=sys.stderr)
        return 2
    try:
        with open(args.target, encoding="utf-8") as handle:
            spec = ScenarioSpec.from_json(handle.read())
        overrides = _parse_overrides(args.overrides)
        if overrides:
            spec = apply_overrides(spec, overrides)
        [value] = run_scenarios(
            [spec],
            extract=args.extract,
            jobs=max(1, args.jobs),
            cache=cache,
            policy=config,
        )
    except SweepInterrupted as error:
        print(f"interrupted: {error}", file=sys.stderr)
        return 130
    except Exception as error:  # noqa: BLE001 - one-line CLI surface
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"scenario {spec.name}: {args.extract}")
    print(json.dumps(value, indent=2, sort_keys=True, default=str))
    return 0


def _audit(args: argparse.Namespace) -> int:
    """Run one experiment with the flight recorder on and print the audit."""
    from repro.obs import audit_experiment

    if args.target is None:
        print("error: audit needs an experiment name", file=sys.stderr)
        return 2
    try:
        outcome = audit_experiment(
            args.target,
            overrides=_parse_overrides(args.overrides),
            duration_s=args.duration,
            seed=args.seed,
            probes=args.probes,
        )
    except BrokenPipeError:  # pragma: no cover - output piped to head
        return 0
    except Exception as error:  # noqa: BLE001 - one-line CLI surface
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(outcome.render())
    return 0


def _profile(args: argparse.Namespace) -> int:
    from repro.profiling import profile_experiment

    if args.target is None:
        print("error: profile needs an experiment name", file=sys.stderr)
        return 2
    try:
        print(
            profile_experiment(
                args.target,
                seed=args.seed,
                duration_s=args.duration,
                probes=args.probes,
                sort=args.sort,
                output=args.output,
            )
        )
    except BrokenPipeError:  # pragma: no cover - output piped to head
        pass
    except Exception as error:  # noqa: BLE001 - one-line CLI surface
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        # The linter owns its whole argument surface (paths, --format,
        # baselines), so dispatch before the experiment parser sees it.
        from repro.simlint.cli import run as lint_run

        return lint_run(arguments[1:])
    args = _build_parser().parse_args(arguments)
    if args.resume and not args.journal:
        print(
            "error: --resume needs --journal PATH (the journal of the "
            "interrupted run)",
            file=sys.stderr,
        )
        return 2
    cache = None
    if not args.no_cache:
        cache = SweepCache(root=args.cache_dir)
    if args.clear_cache:
        target_cache = cache if cache is not None else SweepCache(root=args.cache_dir)
        removed = target_cache.clear()
        print(f"cleared {removed} cached sweep points from {target_cache.root}")
    if args.experiment == "list":
        try:
            print(_list_experiments())
        except BrokenPipeError:  # pragma: no cover - `repro list | head`
            pass
        return 0
    if args.experiment == "profile":
        return _profile(args)
    if args.experiment == "audit":
        return _audit(args)
    config = RunnerConfig(
        timeout_s=args.timeout,
        max_retries=max(0, args.retries),
        on_error=args.on_error,
        journal_path=args.journal,
        resume=args.resume,
    )
    if args.experiment == "spec":
        return _run_spec(args, cache, config)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        overrides = _parse_overrides(args.overrides)
        report = run_suite(
            names,
            seed=args.seed,
            duration_s=args.duration,
            probes=args.probes,
            config=config,
            on_result=_print_result,
            jobs=max(1, args.jobs),
            cache=cache,
            overrides=overrides,
        )
        if len(names) > 1:
            print(report.format_summary())
        if args.report is not None:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(report.to_json() + "\n")
    except BrokenPipeError:  # pragma: no cover - output piped to head
        return 0
    except SweepInterrupted as error:
        # Graceful Ctrl-C/SIGTERM: journal + cache are flushed; tell
        # the user how to pick the sweep back up.
        print(f"interrupted: {error}", file=sys.stderr)
        if args.journal:
            print(
                f"resume with: --journal {args.journal} --resume",
                file=sys.stderr,
            )
        return 130
    except Exception as error:  # pragma: no cover - last-resort CLI surface
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0 if report.all_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
