"""Command-line front-end: ``repro80211 <experiment>``.

Regenerates the paper's tables and figures from the terminal::

    repro80211 list
    repro80211 table2
    repro80211 figure3 --probes 300 --seed 7
    repro80211 figure7 --duration 20
    repro80211 all --duration 5 --probes 100
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro.experiments.registry import EXPERIMENTS, get_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro80211",
        description=(
            "Reproduce the tables and figures of 'IEEE 802.11 Ad Hoc "
            "Networks: Performance Measurements' (ICDCS-W 2003)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list' to enumerate, or 'all'",
    )
    parser.add_argument(
        "--seed", type=int, default=1, help="master random seed (default 1)"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=10.0,
        help="simulated seconds per dynamic run (default 10)",
    )
    parser.add_argument(
        "--probes",
        type=int,
        default=200,
        help="probe frames per distance point in range sweeps (default 200)",
    )
    return parser


def _list_experiments() -> str:
    lines = ["available experiments:"]
    for name in sorted(EXPERIMENTS):
        lines.append(f"  {name:10}  {EXPERIMENTS[name].description}")
    lines.append("  all         run everything above in sequence")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.experiment == "list":
        try:
            print(_list_experiments())
        except BrokenPipeError:  # pragma: no cover - `repro list | head`
            pass
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            experiment = get_experiment(name)
            started = time.monotonic()
            output = experiment.run(
                seed=args.seed, duration_s=args.duration, probes=args.probes
            )
            elapsed = time.monotonic() - started
            print(output)
            print(f"[{name} completed in {elapsed:.1f}s wall clock]")
            print()
    except BrokenPipeError:  # pragma: no cover - output piped to head
        return 0
    except Exception as error:  # pragma: no cover - CLI surface
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
