"""repro — a reproduction of *IEEE 802.11 Ad Hoc Networks: Performance
Measurements* (Anastasi, Borgia, Conti, Gregori; ICDCS Workshops 2003).

The package provides, as importable building blocks:

* the paper's **analytic models** (:mod:`repro.core`): the Table-1
  parameter sets, the Figure-1 encapsulation stack, the Equations-(1)/(2)
  maximum-throughput model and link-budget range estimation;
* a **full discrete-event simulator of IEEE 802.11b ad hoc networks**
  that substitutes for the paper's outdoor test-bed: calibrated radio
  channel (:mod:`repro.channel`), multirate PHY (:mod:`repro.phy`), DCF
  MAC (:mod:`repro.mac`), IP/UDP/TCP stack (:mod:`repro.net`,
  :mod:`repro.transport`) and traffic generators (:mod:`repro.apps`);
* an **experiment harness** (:mod:`repro.experiments`) that regenerates
  every table and figure of the paper's evaluation, plus measurement
  utilities (:mod:`repro.analysis`).

Quick start::

    from repro import build_network, CbrSource, UdpSink, Rate

    net = build_network([0, 10], data_rate=Rate.MBPS_11)
    sink = UdpSink(net[1], port=5001)
    CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
    net.run(2.0)
    print(sink.throughput_bps(2.0) / 1e6, "Mbps")
"""

from repro.core.params import (
    ALL_RATES,
    BASIC_RATE_SET,
    Dot11bConfig,
    HeaderRatePolicy,
    MacParameters,
    PlcpParameters,
    PlcpPreamble,
    Rate,
)
from repro.core.throughput_model import (
    RtsCtsOverheadModel,
    ThroughputModel,
    table2,
)
from repro.core.encapsulation import TransportProtocol, mac_payload_bytes
from repro.channel.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    TwoRayGroundPathLoss,
)
from repro.channel.shadowing import ChannelModel
from repro.channel.weather import DayConditions, WeatherProcess
from repro.channel.medium import Medium
from repro.channel.mobility import LinearMobility, walk_away
from repro.phy.radio import RadioParameters
from repro.phy.transceiver import Transceiver
from repro.mac.dcf import AckPolicy, MacConfig, MacStation
from repro.mac.ratecontrol import ArfConfig, ArfRateController, FixedRate
from repro.net.node import Node, NodeStackConfig
from repro.analysis.airtime_audit import AirtimeAuditor
from repro.analysis.tracefile import TraceWriter, read_trace
from repro.apps.onoff import OnOffSource
from repro.experiments.replication import replicate
from repro.transport.tcp import TcpConfig
from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.sim.engine import Simulator
from repro.sim.rng import RngManager
from repro.scenario import (
    FaultSpec,
    FlowHandle,
    FlowSpec,
    MobilitySpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    SweepAxis,
    SweepSpec,
    TopologySpec,
    TrafficSpec,
    WeatherSpec,
    apply_overrides,
    build,
    build_network,
    run_scenarios,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_RATES",
    "AckPolicy",
    "AirtimeAuditor",
    "ArfConfig",
    "ArfRateController",
    "BASIC_RATE_SET",
    "FixedRate",
    "LinearMobility",
    "OnOffSource",
    "TraceWriter",
    "read_trace",
    "replicate",
    "walk_away",
    "BulkTcpReceiver",
    "BulkTcpSender",
    "CbrSource",
    "ChannelModel",
    "DayConditions",
    "Dot11bConfig",
    "FaultSpec",
    "FlowHandle",
    "FlowSpec",
    "FreeSpacePathLoss",
    "HeaderRatePolicy",
    "LogDistancePathLoss",
    "MacConfig",
    "MacParameters",
    "MacStation",
    "Medium",
    "MobilitySpec",
    "Node",
    "NodeStackConfig",
    "PlcpParameters",
    "PlcpPreamble",
    "RadioParameters",
    "Rate",
    "RngManager",
    "RtsCtsOverheadModel",
    "ScenarioNetwork",
    "ScenarioSpec",
    "Simulator",
    "StackSpec",
    "SweepAxis",
    "SweepSpec",
    "TcpConfig",
    "ThroughputModel",
    "TopologySpec",
    "TrafficSpec",
    "Transceiver",
    "TransportProtocol",
    "TwoRayGroundPathLoss",
    "UdpSink",
    "WeatherProcess",
    "WeatherSpec",
    "apply_overrides",
    "build",
    "build_network",
    "mac_payload_bytes",
    "run_scenarios",
    "table2",
]
