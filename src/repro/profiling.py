"""Profiling harness: ``python -m repro.cli profile <experiment>``.

Wraps one experiment run in :mod:`cProfile` and renders a top-N report
(by cumulative and by self time), so every perf PR starts from the same
baseline instead of a hand-rolled one-off script.  The profiled run is
always serial and uncached — a pool would move the work out of the
profiled process, and a cache hit would profile JSON decoding.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.experiments.registry import get_experiment


def profile_experiment(
    name: str,
    seed: int = 1,
    duration_s: float = 10.0,
    probes: int = 200,
    top: int = 25,
) -> str:
    """Run one registered experiment under cProfile; return the report."""
    experiment = get_experiment(name)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        experiment.invoke(
            None, seed=seed, duration_s=duration_s, probes=probes, jobs=1,
            cache=None,
        )
    finally:
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs()
    buffer.write(f"profile: {name} (seed={seed})\n")
    buffer.write(f"\n=== top {top} by cumulative time ===\n")
    stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(top)
    buffer.write(f"\n=== top {top} by self time ===\n")
    stats.sort_stats(pstats.SortKey.TIME).print_stats(top)
    return buffer.getvalue()
