"""Profiling harness: ``python -m repro.cli profile <experiment>``.

Wraps one experiment run in :mod:`cProfile` and renders a top-N report
(by cumulative and by self time), so every perf PR starts from the same
baseline instead of a hand-rolled one-off script.  The profiled run is
always serial and uncached — a pool would move the work out of the
profiled process, and a cache hit would profile JSON decoding.

``output`` dumps the raw stats to a ``.pstats`` file (loadable with
:mod:`pstats` or snakeviz) so profiles can be archived next to bench
artefacts; ``sort`` narrows the rendered report to one ordering.
"""

from __future__ import annotations

import cProfile
import io
import pstats

from repro.errors import ConfigurationError
from repro.experiments.registry import get_experiment

#: Accepted ``sort`` values: pstats sort keys, or ``both`` for the
#: two-section report.
PROFILE_SORTS = ("both", "cumulative", "tottime")


def profile_experiment(
    name: str,
    seed: int = 1,
    duration_s: float = 10.0,
    probes: int = 200,
    top: int = 25,
    sort: str = "both",
    output: str | None = None,
) -> str:
    """Run one registered experiment under cProfile; return the report.

    ``sort`` is one of :data:`PROFILE_SORTS`; ``output`` additionally
    dumps the raw profile to that path (conventionally ``*.pstats``).
    """
    if sort not in PROFILE_SORTS:
        raise ConfigurationError(
            f"unknown profile sort {sort!r}; accepted: {list(PROFILE_SORTS)}"
        )
    experiment = get_experiment(name)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        experiment.invoke(
            None, seed=seed, duration_s=duration_s, probes=probes, jobs=1,
            cache=None,
        )
    finally:
        profiler.disable()
    if output is not None:
        profiler.dump_stats(output)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs()
    buffer.write(f"profile: {name} (seed={seed})\n")
    if output is not None:
        buffer.write(f"raw stats: {output}\n")
    if sort in ("both", "cumulative"):
        buffer.write(f"\n=== top {top} by cumulative time ===\n")
        stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(top)
    if sort in ("both", "tottime"):
        buffer.write(f"\n=== top {top} by self time ===\n")
        stats.sort_stats(pstats.SortKey.TIME).print_stats(top)
    return buffer.getvalue()
