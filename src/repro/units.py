"""Unit conversions used throughout the library.

Simulation time is kept as an integer number of **nanoseconds** so that the
event heap never suffers floating-point drift.  All public APIs accept and
report seconds or microseconds as floats; these helpers convert at the
boundary.

Power is handled in dBm externally (link budgets are naturally additive in
dB) and in milliwatts internally (interference powers are additive in mW).
"""

from __future__ import annotations

import math

#: Nanoseconds per microsecond.
NS_PER_US = 1_000
#: Nanoseconds per millisecond.
NS_PER_MS = 1_000_000
#: Nanoseconds per second.
NS_PER_S = 1_000_000_000


def us_to_ns(microseconds: float) -> int:
    """Convert a duration in microseconds to integer nanoseconds."""
    return round(microseconds * NS_PER_US)


def ms_to_ns(milliseconds: float) -> int:
    """Convert a duration in milliseconds to integer nanoseconds."""
    return round(milliseconds * NS_PER_MS)


def s_to_ns(seconds: float) -> int:
    """Convert a duration in seconds to integer nanoseconds."""
    return round(seconds * NS_PER_S)


def ns_to_us(nanoseconds: int) -> float:
    """Convert integer nanoseconds to microseconds."""
    return nanoseconds / NS_PER_US


def ns_to_s(nanoseconds: int) -> float:
    """Convert integer nanoseconds to seconds."""
    return nanoseconds / NS_PER_S


def dbm_to_mw(dbm: float) -> float:
    """Convert a power level from dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert a power level from milliwatts to dBm.

    Raises
    ------
    ValueError
        If ``mw`` is not strictly positive (zero power has no dBm value).
    """
    if mw <= 0.0:
        raise ValueError(f"power must be > 0 mW to convert to dBm, got {mw}")
    return 10.0 * math.log10(mw)


def db_to_linear(db: float) -> float:
    """Convert a ratio expressed in dB to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear ratio to dB."""
    if ratio <= 0.0:
        raise ValueError(f"ratio must be > 0 to convert to dB, got {ratio}")
    return 10.0 * math.log10(ratio)


def mbps_to_bps(mbps: float) -> float:
    """Convert megabits per second to bits per second."""
    return mbps * 1e6


def bps_to_mbps(bps: float) -> float:
    """Convert bits per second to megabits per second."""
    return bps / 1e6


def bits_duration_us(bits: int, rate_mbps: float) -> float:
    """Time in microseconds to transmit ``bits`` at ``rate_mbps``.

    A rate of R Mbps moves R bits per microsecond, so the duration is simply
    ``bits / rate_mbps``.
    """
    if rate_mbps <= 0.0:
        raise ValueError(f"rate must be > 0 Mbps, got {rate_mbps}")
    return bits / rate_mbps
