"""Counting sinks."""

from __future__ import annotations

from repro.analysis.meters import DelayMeter
from repro.net.node import Node
from repro.units import ns_to_s, s_to_ns


class UdpSink:
    """Receives UDP datagrams on a port and counts them over time."""

    def __init__(self, node: Node, port: int, warmup_s: float = 0.0):
        self._node = node
        self._warmup_ns = s_to_ns(warmup_s)
        self._socket = node.udp.bind(port)
        self._socket.on_receive(self._on_datagram)
        self.packets = 0
        self.bytes = 0
        self.packets_after_warmup = 0
        self.bytes_after_warmup = 0
        self.first_rx_ns: int | None = None
        self.last_rx_ns: int | None = None
        #: Sequence numbers seen (CBR payloads are sequence integers).
        self.sequences: list[int] = []
        #: Arrival time of every datagram, for rate-over-time analysis.
        self.rx_times_ns: list[int] = []
        #: One-way delays of timestamped payloads (CbrSource with
        #: ``timestamped=True`` sends ``(seq, send_time_s)`` tuples).
        self.delays = DelayMeter(warmup_s=warmup_s)

    def _on_datagram(self, payload, payload_bytes, src, src_port) -> None:
        now = self._node.sim.now_ns
        self.packets += 1
        self.bytes += payload_bytes
        tracer = self._node.ip.tracer
        if tracer.audit:
            tracer.emit_audit(
                now,
                f"app.{self._node.address}",
                "rx",
                src=src,
                size_bytes=payload_bytes,
            )
        if isinstance(payload, int):
            self.sequences.append(payload)
        elif isinstance(payload, tuple) and len(payload) == 2:
            sequence, sent_s = payload
            self.sequences.append(sequence)
            self.delays.record(sent_s, ns_to_s(now))
        if self.first_rx_ns is None:
            self.first_rx_ns = now
        self.last_rx_ns = now
        self.rx_times_ns.append(now)
        if now >= self._warmup_ns:
            self.packets_after_warmup += 1
            self.bytes_after_warmup += payload_bytes

    def throughput_bps(self, horizon_s: float, warmup_s: float | None = None) -> float:
        """Application-level goodput over [warmup, horizon]."""
        if warmup_s is None:
            warmup_s = ns_to_s(self._warmup_ns)
        window = horizon_s - warmup_s
        if window <= 0:
            return 0.0
        return self.bytes_after_warmup * 8 / window
