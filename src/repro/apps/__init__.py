"""Traffic generators and sinks.

* :mod:`repro.apps.cbr` — constant-bit-rate (and saturated) UDP sources,
  the paper's CBR workload.
* :mod:`repro.apps.bulk` — FTP-like bulk transfer over TCP, the paper's
  ftp workload.
* :mod:`repro.apps.sink` — counting sinks with optional warm-up trimming.
"""

from repro.apps.cbr import CbrSource
from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
from repro.apps.onoff import OnOffSource
from repro.apps.sink import UdpSink

__all__ = ["BulkTcpReceiver", "BulkTcpSender", "CbrSource", "OnOffSource", "UdpSink"]
