"""On/off (bursty) UDP source.

Alternates exponentially distributed ON periods (CBR at ``rate_bps``)
with OFF silences — the classic bursty-traffic model, useful for
driving the network below saturation with realistic variance.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.sim.timers import Timer
from repro.units import s_to_ns, us_to_ns


class OnOffSource:
    """Bursty UDP traffic generator."""

    def __init__(
        self,
        node: Node,
        dst: int,
        dst_port: int,
        payload_bytes: int = 512,
        rate_bps: float = 1e6,
        mean_on_s: float = 0.5,
        mean_off_s: float = 0.5,
        rng=None,
    ):
        if payload_bytes <= 0 or rate_bps <= 0:
            raise ConfigurationError("payload and rate must be positive")
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ConfigurationError("mean ON/OFF periods must be positive")
        self._node = node
        self._dst = dst
        self._dst_port = dst_port
        self._payload_bytes = payload_bytes
        self._packet_interval_ns = us_to_ns(payload_bytes * 8 / rate_bps * 1e6)
        self._mean_on_s = mean_on_s
        self._mean_off_s = mean_off_s
        self._rng = rng if rng is not None else __import__("random").Random(
            node.address
        )
        self._socket = node.udp.bind()
        self._send_timer = Timer(node.sim, self._send_tick, name="onoff-send")
        self._phase_timer = Timer(node.sim, self._toggle_phase, name="onoff-phase")
        self._on = False
        self._stopped = False
        self.packets_sent = 0
        self.on_periods = 0
        self._sequence = 0
        self._toggle_phase()

    @property
    def is_on(self) -> bool:
        """True while in an ON burst."""
        return self._on

    def stop(self) -> None:
        """Silence the source permanently."""
        self._stopped = True
        self._send_timer.cancel()
        self._phase_timer.cancel()

    def _toggle_phase(self) -> None:
        if self._stopped:
            return
        self._on = not self._on
        if self._on:
            self.on_periods += 1
            self._send_tick()
            duration_s = self._rng.expovariate(1.0 / self._mean_on_s)
        else:
            self._send_timer.cancel()
            duration_s = self._rng.expovariate(1.0 / self._mean_off_s)
        self._phase_timer.start(max(s_to_ns(duration_s), 1))

    def _send_tick(self) -> None:
        if self._stopped or not self._on:
            return
        if self._socket.send(
            self._sequence, self._payload_bytes, self._dst, self._dst_port
        ):
            self.packets_sent += 1
        self._sequence += 1
        self._send_timer.start(self._packet_interval_ns)
