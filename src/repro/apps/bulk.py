"""FTP-like bulk transfer over TCP.

The sender keeps the connection's send buffer topped up (an infinite file
in asymptotic conditions, or a fixed number of bytes); the receiver
counts delivered bytes with warm-up trimming.  The application writes in
MSS-sized chunks, matching the paper's "constant size packets of 512
bytes" ftp workload.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.transport.tcp.connection import TcpConnection
from repro.units import ns_to_s, s_to_ns


class BulkTcpReceiver:
    """Listens on a port and counts delivered stream bytes."""

    def __init__(self, node: Node, port: int, warmup_s: float = 0.0):
        self._node = node
        self._warmup_ns = s_to_ns(warmup_s)
        self.bytes = 0
        self.bytes_after_warmup = 0
        self.rx_times_ns: list[int] = []
        self.rx_bytes: list[int] = []
        self.connections: list[TcpConnection] = []
        self.peer_closed = False
        node.tcp.listen(port, self._on_connection)

    def _on_connection(self, connection: TcpConnection) -> None:
        self.connections.append(connection)
        connection.on_deliver = self._on_deliver
        connection.on_peer_closed = self._on_peer_closed

    def _on_deliver(self, nbytes: int) -> None:
        self.bytes += nbytes
        self.rx_times_ns.append(self._node.sim.now_ns)
        self.rx_bytes.append(nbytes)
        if self._node.sim.now_ns >= self._warmup_ns:
            self.bytes_after_warmup += nbytes

    def _on_peer_closed(self) -> None:
        self.peer_closed = True

    def throughput_bps(self, horizon_s: float, warmup_s: float | None = None) -> float:
        """Application-level goodput over [warmup, horizon]."""
        if warmup_s is None:
            warmup_s = ns_to_s(self._warmup_ns)
        window = horizon_s - warmup_s
        if window <= 0:
            return 0.0
        return self.bytes_after_warmup * 8 / window


class BulkTcpSender:
    """Connects to a receiver and streams data."""

    def __init__(
        self,
        node: Node,
        dst: int,
        dst_port: int,
        total_bytes: int | None = None,
        chunk_bytes: int | None = None,
        start_s: float = 0.0,
    ):
        if total_bytes is not None and total_bytes <= 0:
            raise ConfigurationError(f"total must be > 0 bytes, got {total_bytes}")
        self._node = node
        self._dst = dst
        self._dst_port = dst_port
        self._total_bytes = total_bytes
        self._written = 0
        self.connection: TcpConnection | None = None
        self._chunk_bytes = chunk_bytes
        self.finished = False
        if start_s > 0:
            node.sim.schedule_s(start_s, self.start)
        else:
            self.start()

    def start(self) -> None:
        """Open the connection; data flows once established."""
        self.connection = self._node.tcp.connect(self._dst, self._dst_port)
        if self._chunk_bytes is None:
            self._chunk_bytes = self.connection.config.mss_bytes
        self.connection.on_established = self._fill
        self.connection.on_send_space = self._fill
        self.connection.on_closed = self._on_closed

    def _remaining(self) -> int | None:
        if self._total_bytes is None:
            return None
        return self._total_bytes - self._written

    def _fill(self) -> None:
        connection = self.connection
        if connection is None or self.finished:
            return
        while connection.send_space_bytes >= self._chunk_bytes:
            remaining = self._remaining()
            if remaining is not None and remaining <= 0:
                break
            chunk = self._chunk_bytes
            if remaining is not None:
                chunk = min(chunk, remaining)
            taken = connection.send(chunk)
            self._written += taken
            if taken < chunk:
                break
        remaining = self._remaining()
        if remaining is not None and remaining <= 0 and not self.finished:
            self.finished = True
            connection.close()

    def _on_closed(self, reason: str) -> None:
        self.finished = True
