"""Constant-bit-rate UDP source.

In *saturated* mode (the paper's "asymptotic conditions") the source
offers packets faster than the channel can drain them, keeping the MAC
queue non-empty for the whole run; the receiver-side throughput is then
the channel's saturation throughput.  In rate mode it sends on a fixed
interval.
"""

from __future__ import annotations

from repro.core.airtime import AirtimeCalculator
from repro.core.encapsulation import mac_payload_bytes
from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.sim.timers import Timer
from repro.units import us_to_ns


class CbrSource:
    """UDP packet generator attached to a node."""

    def __init__(
        self,
        node: Node,
        dst: int,
        dst_port: int,
        payload_bytes: int = 512,
        rate_bps: float | None = None,
        start_s: float = 0.0,
        timestamped: bool = False,
    ):
        if payload_bytes <= 0:
            raise ConfigurationError(
                f"payload must be > 0 bytes, got {payload_bytes}"
            )
        self._node = node
        self._dst = dst
        self._dst_port = dst_port
        self._payload_bytes = payload_bytes
        self._timestamped = timestamped
        self._socket = node.udp.bind()
        self._timer = Timer(node.sim, self._tick, name=f"cbr{node.address}")
        self._interval_ns = self._choose_interval_ns(rate_bps)
        self._stopped = False
        self.packets_offered = 0
        self.packets_accepted = 0
        self._sequence = 0
        if start_s > 0:
            node.sim.schedule_s(start_s, self.start)
        else:
            self.start()

    def _choose_interval_ns(self, rate_bps: float | None) -> int:
        if rate_bps is not None:
            if rate_bps <= 0:
                raise ConfigurationError(f"rate must be > 0 bps, got {rate_bps}")
            return us_to_ns(self._payload_bytes * 8 / rate_bps * 1e6)
        # Saturated mode: offer a packet every half frame airtime, so the
        # MAC queue can never drain.
        airtime = AirtimeCalculator(self._node.stack.dot11)
        msdu = mac_payload_bytes(self._payload_bytes)
        frame_us = airtime.data_frame_us(msdu, self._node.stack.data_rate)
        return us_to_ns(frame_us / 2)

    def start(self) -> None:
        """Begin (or resume) generating packets."""
        self._stopped = False
        self._tick()

    def stop(self) -> None:
        """Stop generating packets."""
        self._stopped = True
        self._timer.cancel()

    def _tick(self) -> None:
        if self._stopped:
            return
        self.packets_offered += 1
        payload: object = self._sequence
        if self._timestamped:
            payload = (self._sequence, self._node.sim.now_s)
        tracer = self._node.ip.tracer
        if tracer.audit:
            tracer.emit_audit(
                self._node.sim.now_ns,
                f"app.{self._node.address}",
                "offer",
                seq=self._sequence,
                dst=self._dst,
                size_bytes=self._payload_bytes,
            )
        accepted = self._socket.send(
            payload, self._payload_bytes, self._dst, self._dst_port
        )
        if accepted:
            self.packets_accepted += 1
        self._sequence += 1
        self._timer.start(self._interval_ns)

    @property
    def socket(self):
        """The UDP socket the source transmits from."""
        return self._socket
