"""Deterministic path-loss models.

Three classic models are provided:

* :class:`FreeSpacePathLoss` — Friis free-space propagation.
* :class:`LogDistancePathLoss` — the calibrated default; with the
  parameters in :func:`LogDistancePathLoss.calibrated` it reproduces the
  paper's measured Table-3 transmission ranges (DESIGN.md §2).
* :class:`TwoRayGroundPathLoss` — ns-2's default ground-reflection model,
  kept for the "simulation tools assume 250 m" comparison of paper §3.2.
"""

from __future__ import annotations

import abc
import math

from repro.errors import ConfigurationError

#: Speed of light, m/s.
SPEED_OF_LIGHT_M_S = 299_792_458.0
#: Centre frequency of 802.11b channel 6, Hz.
DEFAULT_FREQUENCY_HZ = 2.437e9


class PropagationModel(abc.ABC):
    """A deterministic mapping from link distance to path loss."""

    @abc.abstractmethod
    def path_loss_db(self, distance_m: float) -> float:
        """Mean path loss in dB at ``distance_m`` metres."""

    def _check_distance(self, distance_m: float) -> float:
        if distance_m < 0:
            raise ConfigurationError(f"distance must be >= 0 m, got {distance_m}")
        # Avoid the singularity at d = 0: clamp to 1 cm.
        return max(distance_m, 0.01)


class FreeSpacePathLoss(PropagationModel):
    """Friis free-space path loss: PL(d) = 20 log10(4 pi d / lambda)."""

    def __init__(self, frequency_hz: float = DEFAULT_FREQUENCY_HZ):
        if frequency_hz <= 0:
            raise ConfigurationError(f"frequency must be > 0 Hz, got {frequency_hz}")
        self._wavelength_m = SPEED_OF_LIGHT_M_S / frequency_hz

    @property
    def wavelength_m(self) -> float:
        """Carrier wavelength in metres."""
        return self._wavelength_m

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._check_distance(distance_m)
        return 20.0 * math.log10(4.0 * math.pi * distance_m / self._wavelength_m)


class LogDistancePathLoss(PropagationModel):
    """Log-distance model: PL(d) = PL(d0) + 10 n log10(d / d0)."""

    def __init__(
        self,
        exponent: float = 3.5,
        reference_loss_db: float = 40.2,
        reference_distance_m: float = 1.0,
    ):
        if exponent <= 0:
            raise ConfigurationError(f"exponent must be > 0, got {exponent}")
        if reference_distance_m <= 0:
            raise ConfigurationError(
                f"reference distance must be > 0 m, got {reference_distance_m}"
            )
        self.exponent = exponent
        self.reference_loss_db = reference_loss_db
        self.reference_distance_m = reference_distance_m

    @classmethod
    def calibrated(cls) -> "LogDistancePathLoss":
        """The parameters calibrated against the paper's Table 3.

        Exponent 3.5 over a 40.2 dB reference loss at 1 m (an open outdoor
        field at 2.4 GHz with antennas near ground level) places the
        per-rate ranges at ~31 / 69 / 92 / 113 m for the radio defaults in
        :mod:`repro.phy.radio`.
        """
        return cls(exponent=3.5, reference_loss_db=40.2, reference_distance_m=1.0)

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._check_distance(distance_m)
        ratio = distance_m / self.reference_distance_m
        return self.reference_loss_db + 10.0 * self.exponent * math.log10(ratio)


class TwoRayGroundPathLoss(PropagationModel):
    """Two-ray ground reflection with a free-space near region.

    Below the crossover distance ``d_c = 4 pi h_t h_r / lambda`` the model
    follows free space; beyond it the received power falls as d^4
    (``PL = 40 log10 d - 10 log10(h_t^2 h_r^2)``).  This is the model (and
    the 1.5 m antenna heights) behind ns-2's classic 250 m range.
    """

    def __init__(
        self,
        tx_antenna_height_m: float = 1.5,
        rx_antenna_height_m: float = 1.5,
        frequency_hz: float = DEFAULT_FREQUENCY_HZ,
    ):
        if tx_antenna_height_m <= 0 or rx_antenna_height_m <= 0:
            raise ConfigurationError("antenna heights must be > 0 m")
        self._ht = tx_antenna_height_m
        self._hr = rx_antenna_height_m
        self._free_space = FreeSpacePathLoss(frequency_hz)
        wavelength = self._free_space.wavelength_m
        self._crossover_m = 4.0 * math.pi * self._ht * self._hr / wavelength

    @property
    def crossover_distance_m(self) -> float:
        """Distance where the d^4 region begins."""
        return self._crossover_m

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._check_distance(distance_m)
        if distance_m <= self._crossover_m:
            return self._free_space.path_loss_db(distance_m)
        return 40.0 * math.log10(distance_m) - 10.0 * math.log10(
            self._ht * self._ht * self._hr * self._hr
        )
