"""Station placements for the paper's topologies.

All the paper's scenarios are colinear: two stations for the throughput
and range experiments, four for the hidden/exposed experiments
(Figures 5, 6, 8 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.shadowing import Position, distance_m
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Placement:
    """Named station positions on a line."""

    name: str
    positions: tuple[Position, ...]

    def __len__(self) -> int:
        return len(self.positions)

    def distance(self, i: int, j: int) -> float:
        """d(i, j) between stations ``i`` and ``j`` (0-based)."""
        return distance_m(self.positions[i], self.positions[j])


def linear_positions(*gaps_m: float) -> tuple[Position, ...]:
    """Positions of ``len(gaps) + 1`` stations separated by the given gaps."""
    if any(gap <= 0 for gap in gaps_m):
        raise ConfigurationError(f"station gaps must be > 0 m, got {gaps_m}")
    positions = [(0.0, 0.0)]
    x = 0.0
    for gap in gaps_m:
        x += gap
        positions.append((x, 0.0))
    return tuple(positions)


def chain_placement(name: str, *gaps_m: float) -> Placement:
    """A named colinear placement (S1, S2, ... left to right)."""
    return Placement(name=name, positions=linear_positions(*gaps_m))


def two_nodes(distance: float = 10.0) -> Placement:
    """Sender and receiver well inside transmission range (Figure 2)."""
    return chain_placement("two-nodes", distance)


def figure6_placement(d23_m: float = 80.0) -> Placement:
    """The asymmetric 11 Mbps scenario: 25 / 80-85 / 25 m (Figure 6)."""
    return chain_placement("figure6-11mbps", 25.0, d23_m, 25.0)


def figure8_placement(d23_m: float = 90.0) -> Placement:
    """The asymmetric 2 Mbps scenario: 25 / 90-95 / 25 m (Figure 8)."""
    return chain_placement("figure8-2mbps", 25.0, d23_m, 25.0)


def figure10_placement(d23_m: float = 60.0) -> Placement:
    """The symmetric scenario: 25 / 60-65 / 25 m (Figure 10)."""
    return chain_placement("figure10-symmetric", 25.0, d23_m, 25.0)
