"""Analytic range tables from a channel model and radio thresholds.

Reproduces the paper's Table 3 structure: for each data rate, the distance
at which the mean received power crosses the receiver sensitivity (the
*transmission range*), plus the control-frame ranges and the physical
carrier-sensing range.  These are the deterministic centres of the
loss-vs-distance curves; the simulation adds the shadowing spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.channel.propagation import PropagationModel
from repro.core.params import Rate
from repro.core.range_model import solve_range_m


@dataclass(frozen=True)
class RangeTable:
    """Analytic ranges, in metres."""

    data_tx_range_m: dict[Rate, float]
    control_tx_range_m: dict[Rate, float]
    carrier_sense_range_m: float

    def describe(self) -> str:
        """A Table-3-like text rendering."""
        lines = ["rate       data TX range   control TX range"]
        for rate in sorted(self.data_tx_range_m, key=lambda r: -r.mbps):
            control = self.control_tx_range_m.get(rate)
            control_text = f"{control:7.1f} m" if control is not None else "      -"
            lines.append(
                f"{str(rate):9}  {self.data_tx_range_m[rate]:7.1f} m      "
                f"{control_text}"
            )
        lines.append(f"carrier-sense range: {self.carrier_sense_range_m:.1f} m")
        return "\n".join(lines)


def compute_range_table(
    propagation: PropagationModel,
    tx_power_dbm: float,
    data_sensitivity_dbm: Mapping[Rate, float],
    cs_threshold_dbm: float,
    control_rates: tuple[Rate, ...] = (Rate.MBPS_1, Rate.MBPS_2),
    extra_loss_db: float = 0.0,
) -> RangeTable:
    """Solve the mean ranges for every rate.

    ``extra_loss_db`` models a day offset (Figure 4): positive values
    shrink every range.
    """

    def loss(distance: float) -> float:
        return propagation.path_loss_db(distance) + extra_loss_db

    data_ranges = {
        rate: solve_range_m(loss, tx_power_dbm, threshold)
        for rate, threshold in data_sensitivity_dbm.items()
    }
    control_ranges = {
        rate: data_ranges[rate] for rate in control_rates if rate in data_ranges
    }
    cs_range = solve_range_m(loss, tx_power_dbm, cs_threshold_dbm)
    return RangeTable(
        data_tx_range_m=data_ranges,
        control_tx_range_m=control_ranges,
        carrier_sense_range_m=cs_range,
    )
