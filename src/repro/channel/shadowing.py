"""The composite channel gain model: path loss + shadowing + weather.

The total loss of a link at time t is::

    loss = PL(d) + S_link + F + W(t)

where ``PL`` is the deterministic path-loss model, ``S_link`` a static
log-normal shadowing term drawn once per (directed) link, ``F`` a fast
log-normal term drawn per frame, and ``W`` the slow weather process.  The
paper's observation that the channel is *asymmetric* is captured by
drawing ``S_link`` independently per direction (``asymmetric=True``).
"""

from __future__ import annotations

import math
import random
from typing import Hashable

from repro.channel.propagation import LogDistancePathLoss, PropagationModel
from repro.channel.weather import WeatherProcess
from repro.errors import ConfigurationError

Position = tuple[float, float]


def distance_m(a: Position, b: Position) -> float:
    """Euclidean distance between two positions in metres."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


class ChannelModel:
    """Computes per-frame link losses for the medium.

    Parameters
    ----------
    propagation:
        Deterministic path-loss model; defaults to the Table-3-calibrated
        log-distance model.
    fast_sigma_db:
        Standard deviation of the per-frame shadowing term.  This is what
        turns the hard range edge into the gradual loss-vs-distance curves
        of Figure 3.
    static_sigma_db:
        Standard deviation of the once-per-link shadowing term.
    asymmetric:
        Draw the static term independently for each direction of a link
        (the paper reports asymmetric propagation).
    rng:
        Random stream for all shadowing draws.
    weather:
        Optional slow variation; see :mod:`repro.channel.weather`.
    """

    def __init__(
        self,
        propagation: PropagationModel | None = None,
        fast_sigma_db: float = 2.5,
        static_sigma_db: float = 0.0,
        asymmetric: bool = True,
        rng: random.Random | None = None,
        weather: WeatherProcess | None = None,
    ):
        if fast_sigma_db < 0 or static_sigma_db < 0:
            raise ConfigurationError("shadowing sigmas must be >= 0 dB")
        self.propagation = (
            propagation if propagation is not None else LogDistancePathLoss.calibrated()
        )
        self.fast_sigma_db = fast_sigma_db
        self.static_sigma_db = static_sigma_db
        self.asymmetric = asymmetric
        self._rng = rng if rng is not None else random.Random(0)
        self.weather = weather
        self._static_db: dict[Hashable, float] = {}

    def mean_loss_db(self, link_distance_m: float) -> float:
        """The deterministic loss component (used for range solving)."""
        return self.propagation.path_loss_db(link_distance_m)

    def _static_link_db(self, tx_key: Hashable, rx_key: Hashable) -> float:
        if self.static_sigma_db == 0.0:
            return 0.0
        if self.asymmetric:
            key: Hashable = (tx_key, rx_key)
        else:
            key = frozenset((tx_key, rx_key))
        if key not in self._static_db:
            self._static_db[key] = self._rng.gauss(0.0, self.static_sigma_db)
        return self._static_db[key]

    def base_loss_db(
        self,
        tx_position: Position,
        rx_position: Position,
        tx_key: Hashable,
        rx_key: Hashable,
    ) -> float:
        """The loss components that are constant while positions hold.

        Path loss is pure geometry and the static shadowing term is
        drawn once per link, so the medium caches this sum per
        (source, receiver) pair and recomputes it only when a position
        tuple is replaced (mobility tick, placement change).
        """
        loss = self.propagation.path_loss_db(distance_m(tx_position, rx_position))
        return loss + self._static_link_db(tx_key, rx_key)

    def variable_loss_db(self, time_ns: int) -> float:
        """The per-frame loss components (fast shadowing + weather)."""
        loss = 0.0
        if self.fast_sigma_db > 0.0:
            loss = self._rng.gauss(0.0, self.fast_sigma_db)
        if self.weather is not None:
            loss += self.weather.offset_db(time_ns)
        return loss

    def loss_db(
        self,
        tx_position: Position,
        rx_position: Position,
        tx_key: Hashable,
        rx_key: Hashable,
        time_ns: int,
    ) -> float:
        """Total link loss for one frame transmitted at ``time_ns``."""
        return self.base_loss_db(
            tx_position, rx_position, tx_key, rx_key
        ) + self.variable_loss_db(time_ns)
