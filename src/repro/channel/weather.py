"""Slow time variation of the channel ("weather").

The paper observed that transmission ranges change between days (Figure 4)
and drift within a single experiment (footnote 4).  We model this with a
per-run constant day offset plus a first-order Gauss-Markov process: an
extra attenuation X(t) with

    X(t2) = a X(t1) + sqrt(1 - a^2) * N(0, sigma),   a = exp(-dt / tau)

which is stationary with standard deviation ``sigma`` and correlation time
``tau``.  The process is sampled lazily at the times the medium asks for,
so it costs nothing when unused.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import NS_PER_S


@dataclass(frozen=True)
class DayConditions:
    """A day's propagation conditions for the Figure-4 experiment.

    ``offset_db`` is added to every link's path loss for the whole run:
    positive values mean worse propagation (shorter ranges).
    """

    name: str
    offset_db: float
    sigma_db: float = 1.5
    correlation_time_s: float = 30.0

    @classmethod
    def good_day(cls) -> "DayConditions":
        """The better of the two measurement days (06/12/2002)."""
        return cls(name="2002-12-06", offset_db=-1.5)

    @classmethod
    def bad_day(cls) -> "DayConditions":
        """The worse day (09/12/2002): ~3 dB extra loss, shorter ranges."""
        return cls(name="2002-12-09", offset_db=1.5)


class WeatherProcess:
    """Lazily sampled Gauss-Markov extra attenuation."""

    def __init__(
        self,
        rng: random.Random,
        conditions: DayConditions | None = None,
    ):
        self._conditions = conditions if conditions is not None else DayConditions(
            name="calm", offset_db=0.0, sigma_db=0.0
        )
        if self._conditions.sigma_db < 0:
            raise ConfigurationError("weather sigma must be >= 0 dB")
        if self._conditions.correlation_time_s <= 0:
            raise ConfigurationError("weather correlation time must be > 0 s")
        self._rng = rng
        # The drift starts at the day's nominal conditions so that runs
        # of the same day are directly comparable (a random start would
        # add a per-run offset on top of the day offset).
        self._state_db = 0.0
        self._state_time_ns = 0

    @property
    def conditions(self) -> DayConditions:
        """The day this process models."""
        return self._conditions

    def offset_db(self, time_ns: int) -> float:
        """Total extra attenuation at ``time_ns`` (day offset + drift)."""
        return self._conditions.offset_db + self._drift_db(time_ns)

    def _drift_db(self, time_ns: int) -> float:
        if self._conditions.sigma_db == 0.0:
            return 0.0
        if time_ns < self._state_time_ns:
            # The medium always asks in non-decreasing time order; querying
            # the past returns the held state rather than rewinding.
            return self._state_db
        if time_ns > self._state_time_ns:
            dt_s = (time_ns - self._state_time_ns) / NS_PER_S
            a = math.exp(-dt_s / self._conditions.correlation_time_s)
            noise = self._rng.gauss(0.0, self._conditions.sigma_db)
            self._state_db = a * self._state_db + math.sqrt(1.0 - a * a) * noise
            self._state_time_ns = time_ns
        return self._state_db
