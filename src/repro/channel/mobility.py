"""Station mobility.

The paper's §3.2 closes with a mobility argument: "the shorter is the
TX_range, the higher is the frequency of route re-calculation when the
network stations are mobile."  These models move stations so that claim
can be quantified (see ``repro.experiments.mobility``).

The medium samples positions at transmission time, so mobility is just
a scheduled sequence of position updates on the transceiver.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.units import ns_to_s, s_to_ns


class LinearMobility:
    """Constant-velocity motion with periodic position updates."""

    def __init__(
        self,
        sim: Simulator,
        device,
        velocity_m_s: tuple[float, float],
        update_interval_s: float = 0.1,
    ):
        if update_interval_s <= 0:
            raise ConfigurationError(
                f"update interval must be > 0 s, got {update_interval_s}"
            )
        self._sim = sim
        self._device = device
        self._velocity = velocity_m_s
        self._interval_ns = s_to_ns(update_interval_s)
        self._last_update_ns = sim.now_ns
        self._timer = Timer(sim, self._tick, name="mobility")
        self._running = False

    @property
    def speed_m_s(self) -> float:
        """Scalar speed."""
        return math.hypot(*self._velocity)

    def start(self) -> None:
        """Begin moving."""
        if not self._running:
            self._running = True
            self._last_update_ns = self._sim.now_ns
            self._timer.start(self._interval_ns)

    def stop(self) -> None:
        """Freeze at the current position."""
        if self._running:
            self._apply_motion()
            self._running = False
            self._timer.cancel()

    def set_velocity(self, velocity_m_s: tuple[float, float]) -> None:
        """Change direction/speed, applying motion accumulated so far."""
        self._apply_motion()
        self._velocity = velocity_m_s

    def _apply_motion(self) -> None:
        elapsed_s = ns_to_s(self._sim.now_ns - self._last_update_ns)
        x, y = self._device.position_m
        self._device.position_m = (
            x + self._velocity[0] * elapsed_s,
            y + self._velocity[1] * elapsed_s,
        )
        self._last_update_ns = self._sim.now_ns

    def _tick(self) -> None:
        if not self._running:
            return
        self._apply_motion()
        self._timer.start(self._interval_ns)


def walk_away(
    sim: Simulator,
    device,
    speed_m_s: float,
    update_interval_s: float = 0.1,
) -> LinearMobility:
    """Move a station along +x at ``speed_m_s`` (the range-walk pattern)."""
    if speed_m_s <= 0:
        raise ConfigurationError(f"speed must be > 0 m/s, got {speed_m_s}")
    mobility = LinearMobility(
        sim, device, (speed_m_s, 0.0), update_interval_s
    )
    mobility.start()
    return mobility
