"""The shared broadcast wireless medium.

The medium connects transceivers.  When one transmits, the medium samples
the channel model once per (transmitter, receiver) pair, converts the loss
into a received power, and — unless the signal is below the delivery
floor — delivers ``signal start`` and ``signal end`` events to the
receiver after the propagation delay.  Receivers decide for themselves
what a signal means (carrier sense, preamble lock, interference).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Protocol

from repro.channel.propagation import SPEED_OF_LIGHT_M_S
from repro.channel.shadowing import ChannelModel, Position, distance_m
from repro.errors import MediumError
from repro.sim.engine import Simulator
from repro.units import NS_PER_S


class Signal:
    """One frame in flight on the medium."""

    __slots__ = ("signal_id", "source", "frame", "tx_power_dbm", "start_ns",
                 "end_ns", "duration_ns")
    #: Fallback id stream for directly constructed signals (tests,
    #: tools).  The medium passes ``signal_id`` explicitly from its own
    #: per-instance counter, so two live mediums in one process — e.g.
    #: a sweep worker running scenarios back to back — never perturb
    #: each other's id sequences.
    # simlint: waive[SL401] -- deliberate shared fallback: only direct
    # Signal() construction (tests, tools) draws from it; every signal a
    # Medium emits carries an explicit per-medium id, so simulations
    # never observe this counter's state.
    _ids = itertools.count(1)

    def __init__(
        self,
        source: "MediumDevice",
        frame: Any,
        tx_power_dbm: float,
        start_ns: int,
        end_ns: int,
        signal_id: int | None = None,
    ):
        self.signal_id = signal_id if signal_id is not None else next(Signal._ids)
        self.source = source
        self.frame = frame
        self.tx_power_dbm = tx_power_dbm
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: Airtime of the signal, cached at construction — overlap and
        #: interference bookkeeping read it once per concurrent signal.
        self.duration_ns = end_ns - start_ns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Signal(id={self.signal_id}, src={getattr(self.source, 'name', '?')}, "
            f"{self.start_ns}-{self.end_ns}ns)"
        )


class MediumDevice(Protocol):
    """What the medium requires of an attached transceiver."""

    position_m: Position

    def on_signal_start(self, signal: Signal, rx_power_dbm: float) -> None:
        """A signal's first energy reaches this device."""

    def on_signal_end(self, signal: Signal) -> None:
        """A previously started signal fades out at this device."""


#: Extra loss (dB) injected on one directed (source, receiver) pair at a
#: given time — the fault layer's hook into the medium.
LossHook = Callable[["MediumDevice", "MediumDevice", int], float]


class Medium:
    """Broadcast medium over one channel model.

    ``delivery_floor_dbm`` suppresses events for signals so weak they can
    affect neither carrier sensing nor interference, keeping the event
    count linear in *relevant* links.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: ChannelModel,
        delivery_floor_dbm: float = -110.0,
    ):
        self._sim = sim
        self._channel = channel
        self._delivery_floor_dbm = delivery_floor_dbm
        self._devices: list[MediumDevice] = []
        # Device identity is a per-medium, monotonically assigned index
        # (the device's position in ``_devices``).  The dict holds a
        # strong reference to every attached device and hashes it by
        # object identity, so — unlike the ``id()`` keys this replaces —
        # a detached-and-collected device can never alias a newly
        # created one after CPython reuses its id.  The indices are also
        # stable run to run, which id() values never were, so anything
        # keyed on them (the pair cache, static shadowing draws) is
        # reproducible by construction.
        self._device_indices: dict[MediumDevice, int] = {}
        self._loss_hooks: list[LossHook] = []
        # Per-medium id stream: signal ids restart at 1 for every medium,
        # so runs of the same scenario produce bit-identical traces even
        # with several mediums alive in one process (parallel workers,
        # test suites).  Mutating ``Signal._ids`` here instead would let
        # two live mediums corrupt each other's sequences.
        self._signal_ids = itertools.count(1)
        #: (source_index, receiver_index) -> (tx_pos, rx_pos,
        #: base_loss_db, delay_ns).  Positions are immutable tuples
        #: replaced on every move, so an identity check on the stored
        #: tuples detects mobility without any explicit invalidation
        #: protocol.
        self._pair_cache: dict[
            tuple[int, int], tuple[Position, Position, float, int]
        ] = {}

    @property
    def channel(self) -> ChannelModel:
        """The channel model the medium samples."""
        return self._channel

    @property
    def devices(self) -> tuple[MediumDevice, ...]:
        """All attached devices."""
        return tuple(self._devices)

    def attach(self, device: MediumDevice) -> None:
        """Connect a transceiver to this medium.

        The device is assigned the next per-medium index; indices are
        never reused, so caches keyed on them cannot alias devices.
        """
        if device in self._device_indices:
            raise MediumError(f"device {device!r} is already attached")
        self._device_indices[device] = len(self._devices)
        self._devices.append(device)

    def add_loss_hook(self, hook: LossHook) -> None:
        """Register extra per-link loss (fault injection: fades, blackouts).

        ``hook(source, receiver, time_ns)`` returns the additional loss
        in dB for that directed pair; hooks are summed on top of the
        channel model's own loss.
        """
        if hook in self._loss_hooks:
            raise MediumError("loss hook is already installed")
        self._loss_hooks.append(hook)

    def remove_loss_hook(self, hook: LossHook) -> None:
        """Unregister a loss hook.  Safe to call if never installed."""
        if hook in self._loss_hooks:
            self._loss_hooks.remove(hook)

    def propagation_delay_ns(self, from_pos: Position, to_pos: Position) -> int:
        """Signal propagation delay between two positions."""
        seconds = distance_m(from_pos, to_pos) / SPEED_OF_LIGHT_M_S
        return max(1, round(seconds * NS_PER_S))

    def transmit(
        self,
        source: MediumDevice,
        frame: Any,
        duration_ns: int,
        tx_power_dbm: float,
    ) -> Signal:
        """Put a frame on the air and schedule its arrival everywhere.

        Returns the :class:`Signal`, whose ``end_ns`` tells the caller when
        its own transmission completes.
        """
        source_index = self._device_indices.get(source)
        if source_index is None:
            raise MediumError("transmitting device is not attached to the medium")
        if duration_ns <= 0:
            raise MediumError(f"signal duration must be > 0 ns, got {duration_ns}")
        now = self._sim.now_ns
        signal = Signal(
            source,
            frame,
            tx_power_dbm,
            now,
            now + duration_ns,
            signal_id=next(self._signal_ids),
        )
        # Hot path: one pass per attached receiver per frame.  The
        # geometry (path loss + static shadowing + propagation delay) is
        # cached per directed pair and revalidated by position-tuple
        # identity; only the per-frame terms are computed fresh.
        channel = self._channel
        hooks = self._loss_hooks
        pair_cache = self._pair_cache
        floor_dbm = self._delivery_floor_dbm
        # Arrival events are fire-and-forget (the medium never cancels
        # them), so the slot API skips the per-event handle allocation.
        schedule = self._sim.schedule_slot
        source_pos = source.position_m
        for device_index, device in enumerate(self._devices):
            if device is source:
                continue
            device_pos = device.position_m
            pair_key = (source_index, device_index)
            entry = pair_cache.get(pair_key)
            if (
                entry is None
                or entry[0] is not source_pos
                or entry[1] is not device_pos
            ):
                base_db = channel.base_loss_db(
                    source_pos, device_pos, source_index, device_index
                )
                delay_ns = self.propagation_delay_ns(source_pos, device_pos)
                entry = (source_pos, device_pos, base_db, delay_ns)
                pair_cache[pair_key] = entry
            loss_db = entry[2] + channel.variable_loss_db(now)
            if hooks:
                for hook in hooks:
                    loss_db += hook(source, device, now)
            rx_power_dbm = tx_power_dbm - loss_db
            if rx_power_dbm < floor_dbm:
                continue
            delay_ns = entry[3]
            schedule(delay_ns, device.on_signal_start, signal, rx_power_dbm)
            schedule(delay_ns + duration_ns, device.on_signal_end, signal)
        return signal
