"""The shared broadcast wireless medium.

The medium connects transceivers.  When one transmits, the medium samples
the channel model once per (transmitter, receiver) pair, converts the loss
into a received power, and — unless the signal is below the delivery
floor — delivers ``signal start`` and ``signal end`` events to the
receiver after the propagation delay.  Receivers decide for themselves
what a signal means (carrier sense, preamble lock, interference).

Two reception-event generation paths exist, selected by
:func:`resolve_medium` (the ``REPRO_MEDIUM`` environment variable, or a
``TopologySpec.medium`` spec pin):

* ``dense`` — the reference path: one pass over every attached device
  per frame, O(N) per transmission and O(N²) pair-cache growth.
* ``spatial`` — a :class:`GridIndex` buckets devices into cells sized by
  a conservative *cull radius* (the distance at which the strongest
  possible arrival falls below the delivery floor, solved from the tx
  power, the floor and the propagation model).  Devices provably below
  the floor are culled without touching their pair-cache entries or the
  scheduler, so per-frame work and cache growth track the *neighbour*
  count instead of N.

The spatial path is bit-identical to the dense path by construction:

* with per-frame fast shadowing active, the dense path consumes one RNG
  draw per receiver, so the spatial path walks all devices in the same
  index order drawing identically and uses the cull radius only to skip
  the heavy geometry/schedule work for provably-dead links;
* with fast shadowing off, one frame-level variable-loss sample decides
  whether culling is safe for the whole frame (the true O(neighbours)
  path) or the frame degrades to an exact full pass;
* static shadowing or installed loss hooks disable culling outright —
  both are sampled per pair, so skipping pairs would change draw order.

``auto`` (the default) uses the spatial path once the device count
reaches :data:`AUTO_SPATIAL_CUTOFF`; below that, the dense pass is
cheaper than maintaining the index.  Because both paths produce the same
events, the knob is purely a performance choice.
"""

from __future__ import annotations

import itertools
import math
import os
from bisect import insort
from typing import Any, Callable, Protocol

from repro.channel.propagation import SPEED_OF_LIGHT_M_S
from repro.channel.shadowing import ChannelModel, Position, distance_m
from repro.core.range_model import solve_range_m
from repro.errors import ConfigurationError, MediumError
from repro.sim.engine import Simulator
from repro.units import NS_PER_S

#: Environment variable selecting the reception-event generation path.
MEDIUM_ENV = "REPRO_MEDIUM"

#: Medium modes accepted by :func:`resolve_medium` (besides ``auto``).
MEDIUMS = ("dense", "spatial")

#: Device count at which ``auto`` switches to the spatial index.  Below
#: this the dense pass beats the index bookkeeping; at or above it the
#: culling win dominates.  Purely a performance threshold: both paths
#: emit identical events.
AUTO_SPATIAL_CUTOFF = 16

#: Margin added to the cull-radius link budget.  A frame is only culled
#: at a given radius when its actual variable loss keeps the bound valid,
#: so the guard does not affect correctness — it keeps common small
#: channel *gains* (weather good days, shallow fast-shadowing draws)
#: from forcing the exact full pass.  Candidate count grows with the
#: guarded radius *squared*, so the margin stays modest.
CULL_GUARD_DB = 3.0

#: Cull radii beyond this are useless (every plausible field fits inside
#: one cell) — the medium reports "no finite radius" and stays dense.
MAX_CULL_RADIUS_M = 20_000.0


def resolve_medium(preference: str | None = None) -> str:
    """Pick the medium mode: explicit preference, else environment.

    ``preference`` (e.g. from a scenario spec) wins over the
    ``REPRO_MEDIUM`` environment variable.  Unlike the reception-kernel
    knob, ``auto`` resolves to itself: the profitable choice depends on
    the attached device count, which the medium only knows at transmit
    time (see :data:`AUTO_SPATIAL_CUTOFF`).  An explicit unknown name is
    a configuration error, never a silent fallback.
    """
    name = preference if preference is not None else os.environ.get(MEDIUM_ENV, "auto")
    name = name.strip().lower() or "auto"
    if name != "auto" and name not in MEDIUMS:
        raise ConfigurationError(
            f"unknown medium mode {name!r}; expected one of "
            f"{', '.join(MEDIUMS)} or auto"
        )
    return name


class Signal:
    """One frame in flight on the medium."""

    __slots__ = ("signal_id", "source", "frame", "tx_power_dbm", "start_ns",
                 "end_ns", "duration_ns")
    #: Fallback id stream for directly constructed signals (tests,
    #: tools).  The medium passes ``signal_id`` explicitly from its own
    #: per-instance counter, so two live mediums in one process — e.g.
    #: a sweep worker running scenarios back to back — never perturb
    #: each other's id sequences.
    # simlint: waive[SL401] -- deliberate shared fallback: only direct
    # Signal() construction (tests, tools) draws from it; every signal a
    # Medium emits carries an explicit per-medium id, so simulations
    # never observe this counter's state.
    _ids = itertools.count(1)

    def __init__(
        self,
        source: "MediumDevice",
        frame: Any,
        tx_power_dbm: float,
        start_ns: int,
        end_ns: int,
        signal_id: int | None = None,
    ):
        self.signal_id = signal_id if signal_id is not None else next(Signal._ids)
        self.source = source
        self.frame = frame
        self.tx_power_dbm = tx_power_dbm
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: Airtime of the signal, cached at construction — overlap and
        #: interference bookkeeping read it once per concurrent signal.
        self.duration_ns = end_ns - start_ns

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Signal(id={self.signal_id}, src={getattr(self.source, 'name', '?')}, "
            f"{self.start_ns}-{self.end_ns}ns)"
        )


class MediumDevice(Protocol):
    """What the medium requires of an attached transceiver.

    Position changes should be reported via :meth:`Medium.notify_moved`
    (the :class:`~repro.phy.transceiver.Transceiver` position setter does
    this automatically); the spatial index self-heals unreported moves
    with a per-frame identity sweep, but eviction of stale pair-cache
    rows only happens on notification.
    """

    position_m: Position

    def on_signal_start(self, signal: Signal, rx_power_dbm: float) -> None:
        """A signal's first energy reaches this device."""

    def on_signal_end(self, signal: Signal) -> None:
        """A previously started signal fades out at this device."""


#: Extra loss (dB) injected on one directed (source, receiver) pair at a
#: given time — the fault layer's hook into the medium.
LossHook = Callable[["MediumDevice", "MediumDevice", int], float]


class GridIndex:
    """Uniform-grid spatial index over attached-device positions.

    Cells are squares of ``cell_m`` metres keyed by their integer grid
    coordinates; each bucket is a **list** of device indices kept in
    ascending order, so every query result has a reproducible order by
    construction (grid buckets must never feed the scheduler from set
    iteration).  The index stores the exact position tuple each device
    was bucketed under, so a cheap identity sweep detects moves that
    bypassed :meth:`Medium.notify_moved`.
    """

    __slots__ = ("cell_m", "_buckets", "_cells", "_positions")

    def __init__(self, cell_m: float):
        if cell_m <= 0:
            raise ConfigurationError(f"grid cell size must be > 0 m, got {cell_m}")
        self.cell_m = cell_m
        self._buckets: dict[tuple[int, int], list[int]] = {}
        self._cells: list[tuple[int, int]] = []
        self._positions: list[Position] = []

    def __len__(self) -> int:
        return len(self._cells)

    def _cell_of(self, position: Position) -> tuple[int, int]:
        cell = self.cell_m
        return (int(position[0] // cell), int(position[1] // cell))

    def add(self, index: int, position: Position) -> None:
        """Bucket a newly attached device (indices arrive in order)."""
        if index != len(self._cells):
            raise MediumError(
                f"grid index expected device index {len(self._cells)}, got {index}"
            )
        cell = self._cell_of(position)
        insort(self._buckets.setdefault(cell, []), index)
        self._cells.append(cell)
        self._positions.append(position)

    def move(self, index: int, position: Position) -> None:
        """Re-bucket one device after a position change."""
        self._positions[index] = position
        cell = self._cell_of(position)
        old = self._cells[index]
        if cell == old:
            return
        bucket = self._buckets[old]
        bucket.remove(index)
        if not bucket:
            del self._buckets[old]
        insort(self._buckets.setdefault(cell, []), index)
        self._cells[index] = cell

    def repair(self, devices: list["MediumDevice"]) -> None:
        """Re-bucket any device whose position no longer matches.

        Not part of the hot path: every supported mover notifies the
        medium (:attr:`Transceiver.position_m` is a notifying property,
        and :class:`MediumDevice` makes the contract explicit), so the
        grid stays fresh without per-frame sweeps.  This O(N) identity
        sweep exists for test harnesses and diagnostics that mutate
        positions behind the medium's back.
        """
        positions = self._positions
        for index, device in enumerate(devices):
            position = device.position_m
            if position is not positions[index]:
                self.move(index, position)

    def near(self, position: Position, radius_m: float) -> list[int]:
        """Device indices possibly within ``radius_m``, ascending.

        Every device within the radius is guaranteed present (cells
        farther than ``reach`` are separated by more than
        ``reach * cell_m >= radius_m`` on an axis); devices slightly
        beyond may be included — callers re-check exactly.
        """
        cell = self.cell_m
        reach = max(1, int(math.ceil(radius_m / cell)))
        cx, cy = self._cell_of(position)
        buckets = self._buckets
        out: list[int] = []
        for gx in range(cx - reach, cx + reach + 1):
            for gy in range(cy - reach, cy + reach + 1):
                bucket = buckets.get((gx, gy))
                if bucket:
                    out.extend(bucket)
        out.sort()
        return out


class Medium:
    """Broadcast medium over one channel model.

    ``delivery_floor_dbm`` suppresses events for signals so weak they can
    affect neither carrier sensing nor interference, keeping the event
    count linear in *relevant* links.  ``mode`` picks the event
    generation path (see the module docstring); ``None`` defers to the
    ``REPRO_MEDIUM`` environment variable.
    """

    def __init__(
        self,
        sim: Simulator,
        channel: ChannelModel,
        delivery_floor_dbm: float = -110.0,
        mode: str | None = None,
    ):
        self._sim = sim
        self._channel = channel
        self._delivery_floor_dbm = delivery_floor_dbm
        self._mode = resolve_medium(mode)
        self._devices: list[MediumDevice] = []
        # Device identity is a per-medium, monotonically assigned index
        # (the device's position in ``_devices``).  The dict holds a
        # strong reference to every attached device and hashes it by
        # object identity, so — unlike the ``id()`` keys this replaces —
        # a detached-and-collected device can never alias a newly
        # created one after CPython reuses its id.  The indices are also
        # stable run to run, which id() values never were, so anything
        # keyed on them (the pair cache, static shadowing draws) is
        # reproducible by construction.
        self._device_indices: dict[MediumDevice, int] = {}
        self._loss_hooks: list[LossHook] = []
        # Per-medium id stream: signal ids restart at 1 for every medium,
        # so runs of the same scenario produce bit-identical traces even
        # with several mediums alive in one process (parallel workers,
        # test suites).  Mutating ``Signal._ids`` here instead would let
        # two live mediums corrupt each other's sequences.
        self._signal_ids = itertools.count(1)
        #: (source_index, receiver_index) -> (tx_pos, rx_pos,
        #: base_loss_db, delay_ns).  Positions are immutable tuples
        #: replaced on every move, so an identity check on the stored
        #: tuples detects mobility without any explicit invalidation
        #: protocol; rows are additionally *evicted* when a move is
        #: reported via :meth:`notify_moved`, so long mobile runs never
        #: accumulate stale geometry (and the spatial path never pays
        #: for pairs that stopped being neighbours).
        self._pair_cache: dict[
            tuple[int, int], tuple[Position, Position, float, int]
        ] = {}
        #: index -> indices it shares a pair-cache row with (either
        #: direction) — the reverse map that makes eviction O(degree).
        self._pair_partners: dict[int, set[int]] = {}
        self._grid: GridIndex | None = None
        #: tx power -> (cull radius, strongest possible arrival at that
        #: radius before variable loss), or None when no useful radius
        #: exists for that power.
        self._cull_cache: dict[float, tuple[float, float] | None] = {}

    @property
    def channel(self) -> ChannelModel:
        """The channel model the medium samples."""
        return self._channel

    @property
    def mode(self) -> str:
        """The resolved medium mode: ``dense``, ``spatial`` or ``auto``."""
        return self._mode

    @property
    def devices(self) -> tuple[MediumDevice, ...]:
        """All attached devices."""
        return tuple(self._devices)

    def attach(self, device: MediumDevice) -> None:
        """Connect a transceiver to this medium.

        The device is assigned the next per-medium index; indices are
        never reused, so caches keyed on them cannot alias devices.
        """
        if device in self._device_indices:
            raise MediumError(f"device {device!r} is already attached")
        index = len(self._devices)
        self._device_indices[device] = index
        self._devices.append(device)
        if self._grid is not None:
            self._grid.add(index, device.position_m)

    def notify_moved(self, device: MediumDevice) -> None:
        """Report a position change: evict stale pairs, re-bucket.

        Safe to call for devices not (yet) attached — the transceiver's
        position setter fires during construction, before ``attach``.
        """
        index = self._device_indices.get(device)
        if index is None:
            return
        self._evict_pairs(index)
        if self._grid is not None:
            self._grid.move(index, device.position_m)

    def _evict_pairs(self, index: int) -> None:
        """Drop every pair-cache row touching ``index`` (O(degree))."""
        partners = self._pair_partners.pop(index, None)
        if not partners:
            return
        pair_cache = self._pair_cache
        all_partners = self._pair_partners
        for other in sorted(partners):
            pair_cache.pop((index, other), None)
            pair_cache.pop((other, index), None)
            reverse = all_partners.get(other)
            if reverse is not None:
                reverse.discard(index)
                if not reverse:
                    del all_partners[other]

    def add_loss_hook(self, hook: LossHook) -> None:
        """Register extra per-link loss (fault injection: fades, blackouts).

        ``hook(source, receiver, time_ns)`` returns the additional loss
        in dB for that directed pair; hooks are summed on top of the
        channel model's own loss.  While any hook is installed the
        medium stays on the dense path: hooks are sampled per pair, so
        culling pairs would change what they observe.
        """
        if hook in self._loss_hooks:
            raise MediumError("loss hook is already installed")
        self._loss_hooks.append(hook)

    def remove_loss_hook(self, hook: LossHook) -> None:
        """Unregister a loss hook.  Safe to call if never installed."""
        if hook in self._loss_hooks:
            self._loss_hooks.remove(hook)

    def propagation_delay_ns(self, from_pos: Position, to_pos: Position) -> int:
        """Signal propagation delay between two positions."""
        seconds = distance_m(from_pos, to_pos) / SPEED_OF_LIGHT_M_S
        return max(1, round(seconds * NS_PER_S))

    # ------------------------------------------------------------ culling

    def cull_radius_m(self, tx_power_dbm: float) -> float | None:
        """Conservative interference radius for one tx power, or None.

        The distance at which the *mean* received power falls
        :data:`CULL_GUARD_DB` below the delivery floor, solved from the
        propagation model by bisection.  Beyond this distance a frame
        can only be heard if the variable loss is a gain exceeding the
        guard — which the transmit path re-checks exactly, frame by
        frame, before trusting the radius.
        """
        entry = self._cull_entry(tx_power_dbm)
        return entry[0] if entry is not None else None

    def _cull_entry(self, tx_power_dbm: float) -> tuple[float, float] | None:
        try:
            return self._cull_cache[tx_power_dbm]
        except KeyError:
            pass
        radius = solve_range_m(
            self._channel.mean_loss_db,
            tx_power_dbm,
            self._delivery_floor_dbm - CULL_GUARD_DB,
            lo_m=0.1,
            hi_m=MAX_CULL_RADIUS_M,
        )
        entry: tuple[float, float] | None
        if radius >= MAX_CULL_RADIUS_M:
            entry = None
        else:
            # The bound below is what correctness rests on: any device
            # beyond ``radius`` receives at most this power before the
            # variable term, whatever distance the solver converged to.
            entry = (radius, tx_power_dbm - self._channel.mean_loss_db(radius))
        self._cull_cache[tx_power_dbm] = entry
        return entry

    def _spatial_entry(self, tx_power_dbm: float) -> tuple[float, float] | None:
        """The cull entry when the spatial path may run, else None.

        Static shadowing and loss hooks are per-pair samples: skipping
        pairs would change RNG draw order / hook observations, so either
        one pins the medium to the dense reference path.
        """
        mode = self._mode
        if mode == "dense":
            return None
        if mode == "auto" and len(self._devices) < AUTO_SPATIAL_CUTOFF:
            return None
        if self._loss_hooks or self._channel.static_sigma_db != 0.0:
            return None
        return self._cull_entry(tx_power_dbm)

    # ----------------------------------------------------------- transmit

    def transmit(
        self,
        source: MediumDevice,
        frame: Any,
        duration_ns: int,
        tx_power_dbm: float,
    ) -> Signal:
        """Put a frame on the air and schedule its arrival everywhere.

        Returns the :class:`Signal`, whose ``end_ns`` tells the caller when
        its own transmission completes.
        """
        source_index = self._device_indices.get(source)
        if source_index is None:
            raise MediumError("transmitting device is not attached to the medium")
        if duration_ns <= 0:
            raise MediumError(f"signal duration must be > 0 ns, got {duration_ns}")
        now = self._sim.now_ns
        signal = Signal(
            source,
            frame,
            tx_power_dbm,
            now,
            now + duration_ns,
            signal_id=next(self._signal_ids),
        )
        cull = self._spatial_entry(tx_power_dbm)
        if cull is not None:
            self._transmit_spatial(signal, source, source_index, cull)
        else:
            self._transmit_dense(signal, source, source_index)
        return signal

    def _transmit_dense(
        self, signal: Signal, source: MediumDevice, source_index: int
    ) -> None:
        """Reference path: one pass per attached receiver per frame.

        The geometry (path loss + static shadowing + propagation delay)
        is cached per directed pair and revalidated by position-tuple
        identity; only the per-frame terms are computed fresh.
        """
        now = signal.start_ns
        duration_ns = signal.duration_ns
        tx_power_dbm = signal.tx_power_dbm
        channel = self._channel
        hooks = self._loss_hooks
        pair_cache = self._pair_cache
        pair_partners = self._pair_partners
        floor_dbm = self._delivery_floor_dbm
        # Arrival events are fire-and-forget (the medium never cancels
        # them), so the slot API skips the per-event handle allocation.
        schedule = self._sim.schedule_slot
        source_pos = source.position_m
        for device_index, device in enumerate(self._devices):
            if device is source:
                continue
            device_pos = device.position_m
            pair_key = (source_index, device_index)
            entry = pair_cache.get(pair_key)
            if (
                entry is None
                or entry[0] is not source_pos
                or entry[1] is not device_pos
            ):
                base_db = channel.base_loss_db(
                    source_pos, device_pos, source_index, device_index
                )
                delay_ns = self.propagation_delay_ns(source_pos, device_pos)
                entry = (source_pos, device_pos, base_db, delay_ns)
                pair_cache[pair_key] = entry
                pair_partners.setdefault(source_index, set()).add(device_index)
                pair_partners.setdefault(device_index, set()).add(source_index)
            loss_db = entry[2] + channel.variable_loss_db(now)
            if hooks:
                for hook in hooks:
                    loss_db += hook(source, device, now)
            rx_power_dbm = tx_power_dbm - loss_db
            if rx_power_dbm < floor_dbm:
                continue
            delay_ns = entry[3]
            schedule(delay_ns, device.on_signal_start, signal, rx_power_dbm)
            schedule(delay_ns + duration_ns, device.on_signal_end, signal)

    def _transmit_spatial(
        self,
        signal: Signal,
        source: MediumDevice,
        source_index: int,
        cull: tuple[float, float],
    ) -> None:
        """Spatial path: cull receivers provably below the floor.

        Emits the exact event sequence of :meth:`_transmit_dense` — same
        receivers, same powers, same schedule-call order, same RNG draw
        sequence — while skipping geometry, pair-cache and scheduler
        work for devices beyond the cull radius.
        """
        devices = self._devices
        if len(devices) <= 1:
            return
        radius_m, cull_power_dbm = cull
        grid = self._grid
        if grid is None:
            # First spatial frame: build with cells at half this radius —
            # a (2.5r)^2 candidate square instead of (3r)^2 for whole-
            # radius cells.  Later radii need no rebuild — ``near``
            # scales its reach to any radius against any cell size.
            grid = GridIndex(max(radius_m / 2.0, 1.0))
            for index, device in enumerate(devices):
                grid.add(index, device.position_m)
            self._grid = grid
        now = signal.start_ns
        duration_ns = signal.duration_ns
        tx_power_dbm = signal.tx_power_dbm
        channel = self._channel
        pair_cache = self._pair_cache
        pair_partners = self._pair_partners
        floor_dbm = self._delivery_floor_dbm
        schedule = self._sim.schedule_slot
        source_pos = source.position_m

        if channel.fast_sigma_db > 0.0:
            # The dense path draws one fast-shadowing sample per
            # receiver, so the draw sequence is part of the contract:
            # walk every device in index order consuming draws
            # identically, and use the radius only to skip the heavy
            # per-pair work when the draw cannot rescue a dead link.
            near_flags = bytearray(len(devices))
            for index in grid.near(source_pos, radius_m):
                near_flags[index] = 1
            for device_index, device in enumerate(devices):
                if device is source:
                    continue
                variable_db = channel.variable_loss_db(now)
                if (
                    not near_flags[device_index]
                    and cull_power_dbm - variable_db < floor_dbm
                ):
                    continue
                device_pos = device.position_m
                pair_key = (source_index, device_index)
                entry = pair_cache.get(pair_key)
                if (
                    entry is None
                    or entry[0] is not source_pos
                    or entry[1] is not device_pos
                ):
                    base_db = channel.base_loss_db(
                        source_pos, device_pos, source_index, device_index
                    )
                    delay_ns = self.propagation_delay_ns(source_pos, device_pos)
                    entry = (source_pos, device_pos, base_db, delay_ns)
                    pair_cache[pair_key] = entry
                    pair_partners.setdefault(source_index, set()).add(device_index)
                    pair_partners.setdefault(device_index, set()).add(source_index)
                # Same expression tree as the dense path — bit-identical
                # floats require identical rounding order.
                loss_db = entry[2] + variable_db
                rx_power_dbm = tx_power_dbm - loss_db
                if rx_power_dbm < floor_dbm:
                    continue
                delay_ns = entry[3]
                schedule(delay_ns, device.on_signal_start, signal, rx_power_dbm)
                schedule(delay_ns + duration_ns, device.on_signal_end, signal)
            return

        # No fast shadowing: the variable term is frame-wide (weather
        # only; the dense path's first variable_loss_db call per frame
        # performs any weather update, repeats return held state), so one
        # sample decides culling for the whole frame.  This is the true
        # O(neighbours) path.
        variable_db = channel.variable_loss_db(now)
        if cull_power_dbm - variable_db < floor_dbm:
            candidates = grid.near(source_pos, radius_m)
        else:
            # The variable term is a gain larger than the guard: the
            # radius cannot be trusted this frame — exact full pass.
            candidates = range(len(devices))
        for device_index in candidates:
            device = devices[device_index]
            if device is source:
                continue
            device_pos = device.position_m
            pair_key = (source_index, device_index)
            entry = pair_cache.get(pair_key)
            if (
                entry is None
                or entry[0] is not source_pos
                or entry[1] is not device_pos
            ):
                base_db = channel.base_loss_db(
                    source_pos, device_pos, source_index, device_index
                )
                delay_ns = self.propagation_delay_ns(source_pos, device_pos)
                entry = (source_pos, device_pos, base_db, delay_ns)
                pair_cache[pair_key] = entry
                pair_partners.setdefault(source_index, set()).add(device_index)
                pair_partners.setdefault(device_index, set()).add(source_index)
            loss_db = entry[2] + variable_db
            rx_power_dbm = tx_power_dbm - loss_db
            if rx_power_dbm < floor_dbm:
                continue
            delay_ns = entry[3]
            schedule(delay_ns, device.on_signal_start, signal, rx_power_dbm)
            schedule(delay_ns + duration_ns, device.on_signal_end, signal)
