"""Radio channel models and the broadcast wireless medium.

The channel stack replaces the paper's outdoor field: a deterministic
path-loss model plus log-normal shadowing (static per-link and fast
per-frame components) plus a slow Gauss-Markov "weather" process.  The
default parameters are calibrated so the per-rate transmission ranges
match the paper's Table 3 measurements (see DESIGN.md §2).
"""

from repro.channel.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PropagationModel,
    TwoRayGroundPathLoss,
)
from repro.channel.shadowing import ChannelModel
from repro.channel.weather import DayConditions, WeatherProcess
from repro.channel.medium import Medium, Signal
from repro.channel.ranges import RangeTable, compute_range_table
from repro.channel.placement import (
    Placement,
    chain_placement,
    linear_positions,
)

__all__ = [
    "ChannelModel",
    "DayConditions",
    "FreeSpacePathLoss",
    "LogDistancePathLoss",
    "Medium",
    "Placement",
    "PropagationModel",
    "RangeTable",
    "Signal",
    "TwoRayGroundPathLoss",
    "WeatherProcess",
    "chain_placement",
    "compute_range_table",
    "linear_positions",
]
