"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so applications can catch library failures with a
single ``except`` clause while still letting programming errors
(``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigurationError(ReproError):
    """A parameter set or scenario description is invalid."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistent internal state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class WatchdogTimeout(SimulationError):
    """A watchdog budget (event count or wall clock) was exhausted.

    Raised by the engine's :class:`~repro.sim.engine.Watchdog` when a run
    spins past its event or wall-clock budget, and by the hardened
    experiment runner when one experiment exceeds its per-attempt
    timeout.  Deriving from :class:`SimulationError` makes it eligible
    for the runner's retry-with-perturbed-seed policy.
    """


class AuditError(SimulationError):
    """An online invariant auditor or the packet ledger found a violation.

    Raised by :mod:`repro.obs` components while the simulation runs
    (airtime over-occupancy, NAV going negative, TCP sequence numbers
    moving backwards) or at finalisation when the packet-conservation
    ledger does not balance.  The message always carries the simulated
    time of the violation.
    """


class FaultError(ReproError):
    """A fault schedule is invalid or targets an incompatible network."""


class MediumError(SimulationError):
    """The wireless medium's signal bookkeeping was violated."""


class MacError(SimulationError):
    """The DCF state machine reached an impossible transition."""


class TransportError(ReproError):
    """A transport-layer protocol violation (bad segment, closed socket)."""


class ExperimentError(ReproError):
    """An experiment could not be built or produced no usable output."""


class SweepInterrupted(ReproError):
    """A supervised sweep was stopped by SIGINT/SIGTERM before finishing.

    Raised by :mod:`repro.parallel.supervisor` after a graceful shutdown:
    the journal and result cache have been flushed, so the message names
    a resumable state (``--resume`` re-executes only the unfinished
    points).  Deliberately *not* a :class:`SimulationError` — an
    interrupt must never trigger the retry-with-perturbed-seed policy or
    degrade into a failure record; it propagates to the CLI, which exits
    with code 130.
    """
