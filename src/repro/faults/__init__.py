"""Fault injection: timed impairments for robustness experiments.

The paper's core observation is that real 802.11b links are unreliable
and time-varying; this package makes that a first-class simulation
input.  Build a :class:`FaultSchedule` from the fault models and install
it on a scenario before running.
"""

from repro.faults.models import (
    BLACKOUT_LOSS_DB,
    ClockJitter,
    Fault,
    InterferenceBurst,
    LinkFade,
    NodeCrash,
    link_blackout,
)
from repro.faults.schedule import FaultSchedule

__all__ = [
    "BLACKOUT_LOSS_DB",
    "ClockJitter",
    "Fault",
    "FaultSchedule",
    "InterferenceBurst",
    "LinkFade",
    "NodeCrash",
    "link_blackout",
]
