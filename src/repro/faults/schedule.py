"""The fault schedule: timed application of faults to one scenario.

A :class:`FaultSchedule` collects :class:`~repro.faults.models.Fault`
objects, validates them against a network, and installs apply/revert
events on the scenario's simulator.  Every transition is traced under
the ``fault`` category, so analysis code (and the determinism tests) can
see exactly when each impairment held.

Typical use::

    net = build_network([0, 10], seed=7)
    schedule = FaultSchedule([
        link_blackout(start_s=5.0, duration_s=5.0, node_a=0, node_b=1),
        NodeCrash(start_s=12.0, duration_s=3.0, node=1),
    ])
    schedule.install(net)
    net.run(20.0)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.errors import FaultError
from repro.faults.models import Fault, InterferenceBurst
from repro.sim.engine import EventHandle
from repro.units import s_to_ns

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.scenario.network import ScenarioNetwork


class FaultSchedule:
    """An ordered set of faults bound to one network at install time."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self._faults: list[Fault] = []
        self._handles: list[EventHandle] = []
        self._installed_on: "ScenarioNetwork | None" = None
        for fault in faults:
            self.add(fault)

    @classmethod
    def from_specs(
        cls, specs: Iterable[Any], flows: Sequence[Any] | None = None
    ) -> "FaultSchedule":
        """A schedule built from declarative fault specs.

        Each spec must expose ``to_fault(flows)`` (the
        :class:`repro.scenario.specs.FaultSpec` contract — duck-typed
        here to keep the faults layer free of a scenario import);
        ``flows`` are the scenario's flow handles for crash-restart
        wiring.
        """
        schedule = cls()
        for spec in specs:
            to_fault = getattr(spec, "to_fault", None)
            if to_fault is None:
                raise FaultError(
                    f"fault specs must expose to_fault(); got "
                    f"{type(spec).__name__}"
                )
            schedule.add(to_fault(flows))
        return schedule

    def add(self, fault: Fault) -> "FaultSchedule":
        """Append a fault; returns self for chaining."""
        if self._installed_on is not None:
            raise FaultError("cannot add faults to an installed schedule")
        if not isinstance(fault, Fault):
            raise FaultError(f"expected a Fault, got {type(fault).__name__}")
        self._faults.append(fault)
        return self

    @property
    def faults(self) -> tuple[Fault, ...]:
        """The faults, in insertion order."""
        return tuple(self._faults)

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def describe(self) -> str:
        """One line per fault, in time order."""
        ordered = sorted(self._faults, key=lambda fault: fault.start_s)
        return "\n".join(fault.describe() for fault in ordered)

    def _check_burst_overlaps(self) -> None:
        """Noise rises don't stack; reject overlapping bursts per node."""
        bursts = [f for f in self._faults if isinstance(f, InterferenceBurst)]
        for i, first in enumerate(bursts):
            for second in bursts[i + 1 :]:
                shared = (
                    first.nodes is None
                    or second.nodes is None
                    or set(first.nodes) & set(second.nodes)
                )
                overlap = (
                    first.end_s is None or second.start_s < first.end_s
                ) and (second.end_s is None or first.start_s < second.end_s)
                if shared and overlap:
                    raise FaultError(
                        f"overlapping interference bursts on a shared node: "
                        f"{first.describe()} vs {second.describe()}"
                    )

    def install(self, net: "ScenarioNetwork") -> None:
        """Validate every fault and schedule its transitions on ``net``.

        Must be called before the simulation reaches the earliest fault
        start; a schedule installs on exactly one network.
        """
        if self._installed_on is not None:
            raise FaultError("schedule is already installed")
        now_s = net.sim.now_s
        for fault in self._faults:
            if fault.start_s < now_s:
                raise FaultError(
                    f"{fault.describe()} starts before the current "
                    f"simulation time ({now_s:g} s)"
                )
            fault.validate(net)
        self._check_burst_overlaps()
        self._installed_on = net
        for fault in self._faults:
            self._handles.append(
                net.sim.schedule_at(
                    s_to_ns(fault.start_s), self._apply, fault, net
                )
            )
            if fault.end_s is not None:
                self._handles.append(
                    net.sim.schedule_at(
                        s_to_ns(fault.end_s), self._revert, fault, net
                    )
                )

    def cancel(self) -> None:
        """Drop all not-yet-fired transitions (active faults stay applied)."""
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    def _apply(self, fault: Fault, net: "ScenarioNetwork") -> None:
        net.tracer.emit(net.sim.now_ns, "fault", "apply", kind=fault.kind)
        fault.apply(net)

    def _revert(self, fault: Fault, net: "ScenarioNetwork") -> None:
        net.tracer.emit(net.sim.now_ns, "fault", "revert", kind=fault.kind)
        fault.revert(net)
