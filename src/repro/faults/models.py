"""Fault models: timed impairments injected into a running scenario.

Each fault is a window ``[start_s, start_s + duration_s)`` during which
one impairment holds; :meth:`Fault.apply` installs it on a
:class:`~repro.experiments.common.ScenarioNetwork` and :meth:`Fault.revert`
removes it.  Faults are declarative data — a
:class:`~repro.faults.schedule.FaultSchedule` owns the timing.

The catalogue mirrors what the paper measured on real 802.11b hardware:
ranges that collapse for minutes at a time (deep fades, Figure 4),
external interference raising the noise floor, stations disappearing and
returning, and clocks that drift.  All randomness is drawn from the
scenario's :class:`~repro.sim.rng.RngManager`, so a seeded run with a
fault schedule is exactly as reproducible as one without.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import FaultError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.common import ScenarioNetwork
    from repro.net.node import Node

#: Extra loss that puts any calibrated link far below the delivery
#: floor: a blackout, not just a fade.
BLACKOUT_LOSS_DB = 400.0


@dataclass
class Fault(abc.ABC):
    """One timed impairment.

    ``duration_s`` of ``None`` means the fault is never reverted (e.g. a
    node that crashes and stays down).
    """

    start_s: float
    duration_s: float | None

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise FaultError(f"fault start must be >= 0 s, got {self.start_s}")
        if self.duration_s is not None and (
            self.duration_s <= 0 or math.isinf(self.duration_s)
        ):
            raise FaultError(
                f"fault duration must be > 0 s and finite (or None for "
                f"permanent), got {self.duration_s}"
            )

    @property
    def end_s(self) -> float | None:
        """When the fault lifts, or ``None`` if permanent."""
        if self.duration_s is None:
            return None
        return self.start_s + self.duration_s

    @property
    def kind(self) -> str:
        """Short trace label, e.g. ``link-fade``."""
        return type(self).__name__.lower()

    def describe(self) -> str:
        """One-line human-readable summary."""
        window = (
            f"[{self.start_s:g}s, permanent)"
            if self.end_s is None
            else f"[{self.start_s:g}s, {self.end_s:g}s)"
        )
        return f"{self.kind} {window}"

    def validate(self, net: "ScenarioNetwork") -> None:
        """Check the fault targets nodes the network actually has."""

    @abc.abstractmethod
    def apply(self, net: "ScenarioNetwork") -> None:
        """Install the impairment (called at ``start_s``)."""

    @abc.abstractmethod
    def revert(self, net: "ScenarioNetwork") -> None:
        """Remove the impairment (called at ``end_s``)."""


def _check_node_index(net: "ScenarioNetwork", index: int, what: str) -> None:
    if not 0 <= index < len(net.nodes):
        raise FaultError(
            f"{what} targets node index {index}, but the network has "
            f"{len(net.nodes)} nodes"
        )


@dataclass
class LinkFade(Fault):
    """Extra path loss on one node pair — a deep-fade window.

    With the default :data:`BLACKOUT_LOSS_DB` the pair is completely
    disconnected (frames are not even delivered as interference); a
    smaller ``extra_loss_db`` leaves a lossy, marginal link like the
    outer edge of Figure 3's curves.
    """

    node_a: int = 0
    node_b: int = 1
    extra_loss_db: float = BLACKOUT_LOSS_DB
    #: Impair both directions; one-way fades model the asymmetric links
    #: the paper measured.
    bidirectional: bool = True
    _hook: Callable | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.node_a == self.node_b:
            raise FaultError("link fade needs two distinct nodes")
        if self.extra_loss_db <= 0:
            raise FaultError(
                f"extra loss must be > 0 dB, got {self.extra_loss_db}"
            )

    def validate(self, net: "ScenarioNetwork") -> None:
        _check_node_index(net, self.node_a, self.kind)
        _check_node_index(net, self.node_b, self.kind)

    def apply(self, net: "ScenarioNetwork") -> None:
        phy_a = net.nodes[self.node_a].phy
        phy_b = net.nodes[self.node_b].phy
        extra = self.extra_loss_db
        both = self.bidirectional

        def hook(source, receiver, time_ns: int) -> float:
            if source is phy_a and receiver is phy_b:
                return extra
            if both and source is phy_b and receiver is phy_a:
                return extra
            return 0.0

        self._hook = hook
        net.medium.add_loss_hook(hook)

    def revert(self, net: "ScenarioNetwork") -> None:
        if self._hook is not None:
            net.medium.remove_loss_hook(self._hook)
            self._hook = None


def link_blackout(
    start_s: float, duration_s: float | None, node_a: int, node_b: int
) -> LinkFade:
    """A total link outage between two nodes (both directions)."""
    return LinkFade(
        start_s=start_s,
        duration_s=duration_s,
        node_a=node_a,
        node_b=node_b,
        extra_loss_db=BLACKOUT_LOSS_DB,
    )


@dataclass
class InterferenceBurst(Fault):
    """Noise-floor elevation at selected receivers.

    Models wide-band external interference (the paper ran its testbed in
    the 2.4 GHz ISM band, shared with everything from microwave ovens to
    other networks).  The burst degrades SINR at the victim's receiver —
    it is not carrier-sensable and never decodes.  Bursts on one node do
    not stack; the schedule rejects overlapping bursts on a shared node.
    """

    #: Victim node indices; ``None`` hits every node.
    nodes: tuple[int, ...] | None = None
    noise_rise_db: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.noise_rise_db <= 0:
            raise FaultError(
                f"noise rise must be > 0 dB, got {self.noise_rise_db}"
            )

    def validate(self, net: "ScenarioNetwork") -> None:
        for index in self.nodes or ():
            _check_node_index(net, index, self.kind)

    def _victims(self, net: "ScenarioNetwork") -> list["Node"]:
        if self.nodes is None:
            return list(net.nodes)
        return [net.nodes[index] for index in self.nodes]

    def apply(self, net: "ScenarioNetwork") -> None:
        for node in self._victims(net):
            node.phy.set_noise_rise_db(self.noise_rise_db)

    def revert(self, net: "ScenarioNetwork") -> None:
        for node in self._victims(net):
            node.phy.set_noise_rise_db(0.0)


@dataclass
class NodeCrash(Fault):
    """A station loses power, then (optionally) reboots.

    On crash the node's radio goes deaf, the MAC queue and timers are
    flushed and every TCP connection is dropped mid-flight (see
    :meth:`repro.net.node.Node.crash`).  ``duration_s=None`` leaves it
    down for good.  ``on_reboot`` runs right after the node comes back —
    the place to restart applications (e.g. reopen a TCP connection).
    """

    node: int = 0
    on_reboot: Callable[["Node"], None] | None = None

    def validate(self, net: "ScenarioNetwork") -> None:
        _check_node_index(net, self.node, self.kind)

    def apply(self, net: "ScenarioNetwork") -> None:
        node = net.nodes[self.node]
        tracer = net.tracer
        if tracer.audit:
            # The crash context event precedes the MAC queue flush, so the
            # ledger can attribute the flood of fault-crash drops.
            tracer.emit_audit(
                net.sim.now_ns, "fault", "crash", node=node.address
            )
        node.crash()

    def revert(self, net: "ScenarioNetwork") -> None:
        node = net.nodes[self.node]
        tracer = net.tracer
        if tracer.audit:
            tracer.emit_audit(
                net.sim.now_ns, "fault", "reboot", node=node.address
            )
        node.reboot()
        if self.on_reboot is not None:
            self.on_reboot(node)


@dataclass
class ClockJitter(Fault):
    """Gaussian perturbation of one station's MAC timer delays.

    Models a cheap oscillator: every timer the MAC arms during the
    window fires ``N(0, sigma_ns)`` early or late (clamped so delays
    stay non-negative).  Draws come from the scenario's seeded RNG
    manager, so jittered runs remain bit-for-bit reproducible.
    """

    node: int = 0
    sigma_ns: float = 2000.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.sigma_ns <= 0:
            raise FaultError(f"jitter sigma must be > 0 ns, got {self.sigma_ns}")

    def validate(self, net: "ScenarioNetwork") -> None:
        _check_node_index(net, self.node, self.kind)

    def apply(self, net: "ScenarioNetwork") -> None:
        rng = net.rngs.stream(f"fault.jitter.{self.node}")
        sigma = self.sigma_ns

        def jitter(delay_ns: int) -> int:
            return max(0, delay_ns + round(rng.gauss(0.0, sigma)))

        net.nodes[self.node].mac.set_clock_jitter(jitter)

    def revert(self, net: "ScenarioNetwork") -> None:
        net.nodes[self.node].mac.set_clock_jitter(None)
