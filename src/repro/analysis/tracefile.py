"""Persisting trace records to JSON-lines files.

Attach a :class:`TraceWriter` to any :class:`~repro.sim.tracing.Tracer`
to get a replayable, grep-able record of a run — the simulator's
equivalent of the tcpdump traces the paper's authors worked from.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.sim.tracing import TraceRecord, Tracer


def encode_record(record: TraceRecord) -> str:
    """The canonical one-line JSON encoding of a trace record.

    Shared by :class:`TraceWriter` and the :mod:`repro.obs` exporters so
    a streamed digest of a run's event stream matches a digest computed
    over the written file line by line.
    """
    return json.dumps(
        {
            "t_ns": record.time_ns,
            "category": record.category,
            "event": record.event,
            **record.fields,
        }
    )


class TraceWriter:
    """Streams trace records to a ``.jsonl`` file.

    Use as a context manager so the file is flushed and closed::

        with TraceWriter(net.tracer, "run.jsonl", prefix="mac.") as writer:
            net.run(10.0)
        print(writer.records_written)
    """

    def __init__(self, tracer: Tracer, path: str | Path, prefix: str = ""):
        self._tracer = tracer
        self._path = Path(path)
        self._prefix = prefix
        self._handle = None
        self.records_written = 0

    def __enter__(self) -> "TraceWriter":
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self._path.open("w")
        self._tracer.subscribe(self._on_record, prefix=self._prefix)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.unsubscribe(self._on_record)
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _on_record(self, record: TraceRecord) -> None:
        self._handle.write(encode_record(record))
        self._handle.write("\n")
        self.records_written += 1


def read_trace(path: str | Path) -> list[dict]:
    """Load a ``.jsonl`` trace back into dictionaries."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
