"""Throughput, loss and delay meters with warm-up trimming.

The simulation clock is integer nanoseconds; the meters historically
took float seconds, which loses integer precision exactly at the warmup
boundary (a packet at ``t == warmup`` must count).  The ``record_ns``
entry points are the native API; the float paths remain for analysis of
wall-clock data but are deprecated at simulation call sites.
"""

from __future__ import annotations

import warnings

from repro.analysis.stats import RunningStats
from repro.errors import ConfigurationError
from repro.units import ns_to_s, s_to_ns


class ThroughputMeter:
    """Counts bytes in a measurement window."""

    def __init__(self, warmup_s: float = 0.0):
        if warmup_s < 0:
            raise ConfigurationError(f"warmup must be >= 0 s, got {warmup_s}")
        # Kept as the float the caller gave us so the window arithmetic
        # in throughput_bps is bit-identical to the historical API.
        self._warmup_s = warmup_s
        self._warmup_ns = s_to_ns(warmup_s)
        self._bytes = 0
        self._last_time_ns = 0

    @property
    def bytes(self) -> int:
        """Bytes counted after the warm-up."""
        return self._bytes

    @property
    def warmup_ns(self) -> int:
        """The warmup boundary on the simulation clock."""
        return self._warmup_ns

    def record_ns(self, nbytes: int, time_ns: int) -> None:
        """Count ``nbytes`` delivered at integer sim time ``time_ns``.

        The boundary is inclusive: a delivery at exactly the warmup
        instant counts (matching every sink's ``now >= warmup`` gate).
        """
        self._last_time_ns = max(self._last_time_ns, time_ns)
        if time_ns >= self._warmup_ns:
            self._bytes += nbytes

    def record(self, nbytes: int, time_s: float) -> None:
        """Float-seconds entry point.

        .. deprecated:: use :meth:`record_ns` from simulation code — a
           float timestamp can land on the wrong side of the warmup
           boundary after rounding.
        """
        warnings.warn(
            "ThroughputMeter.record(time_s) is deprecated in simulation "
            "code; use record_ns(time_ns)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.record_ns(nbytes, s_to_ns(time_s))

    def throughput_bps(self, horizon_s: float | None = None) -> float:
        """Bits per second over [warmup, horizon]."""
        end = horizon_s if horizon_s is not None else ns_to_s(self._last_time_ns)
        window = end - self._warmup_s
        if window <= 0:
            return 0.0
        return self._bytes * 8 / window


class LossMeter:
    """Sent-vs-received packet accounting.

    The optional ns-native entry points additionally pin the window the
    packets fell in, so loss over a measurement window can be checked
    against the ledger's accounting.
    """

    def __init__(self) -> None:
        self.sent = 0
        self.received = 0
        self.first_sent_ns: int | None = None
        self.last_received_ns: int | None = None

    def record_sent(self, count: int = 1) -> None:
        """Count offered packets."""
        self.sent += count

    def record_received(self, count: int = 1) -> None:
        """Count delivered packets."""
        self.received += count

    def record_sent_ns(self, time_ns: int, count: int = 1) -> None:
        """Count offered packets at integer sim time ``time_ns``."""
        if self.first_sent_ns is None or time_ns < self.first_sent_ns:
            self.first_sent_ns = time_ns
        self.sent += count

    def record_received_ns(self, time_ns: int, count: int = 1) -> None:
        """Count delivered packets at integer sim time ``time_ns``."""
        if self.last_received_ns is None or time_ns > self.last_received_ns:
            self.last_received_ns = time_ns
        self.received += count

    @property
    def loss_rate(self) -> float:
        """Fraction of offered packets that never arrived."""
        if self.sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.sent)


class DelayMeter:
    """One-way delay statistics."""

    def __init__(self, warmup_s: float = 0.0):
        self._warmup_s = warmup_s
        self._stats = RunningStats()
        self._samples: list[float] = []

    def record(self, sent_s: float, received_s: float) -> None:
        """Feed one packet's (send time, receive time)."""
        if received_s < sent_s:
            raise ConfigurationError(
                f"packet received at {received_s} s before sent at {sent_s} s"
            )
        if received_s >= self._warmup_s:
            delay = received_s - sent_s
            self._stats.add(delay)
            self._samples.append(delay)

    @property
    def count(self) -> int:
        """Delay samples recorded."""
        return self._stats.count

    @property
    def mean_s(self) -> float:
        """Mean one-way delay."""
        return self._stats.mean

    @property
    def max_s(self) -> float:
        """Worst delay seen."""
        return self._stats.maximum

    def percentile_s(self, fraction: float) -> float:
        """Delay percentile (e.g. 0.99)."""
        if not 0 <= fraction <= 1:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
        return ordered[index]
