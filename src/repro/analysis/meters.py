"""Throughput, loss and delay meters with warm-up trimming."""

from __future__ import annotations

from repro.analysis.stats import RunningStats
from repro.errors import ConfigurationError


class ThroughputMeter:
    """Counts bytes in a measurement window."""

    def __init__(self, warmup_s: float = 0.0):
        if warmup_s < 0:
            raise ConfigurationError(f"warmup must be >= 0 s, got {warmup_s}")
        self._warmup_s = warmup_s
        self._bytes = 0
        self._last_time_s = 0.0

    @property
    def bytes(self) -> int:
        """Bytes counted after the warm-up."""
        return self._bytes

    def record(self, nbytes: int, time_s: float) -> None:
        """Count ``nbytes`` delivered at ``time_s``."""
        self._last_time_s = max(self._last_time_s, time_s)
        if time_s >= self._warmup_s:
            self._bytes += nbytes

    def throughput_bps(self, horizon_s: float | None = None) -> float:
        """Bits per second over [warmup, horizon]."""
        end = horizon_s if horizon_s is not None else self._last_time_s
        window = end - self._warmup_s
        if window <= 0:
            return 0.0
        return self._bytes * 8 / window


class LossMeter:
    """Sent-vs-received packet accounting."""

    def __init__(self) -> None:
        self.sent = 0
        self.received = 0

    def record_sent(self, count: int = 1) -> None:
        """Count offered packets."""
        self.sent += count

    def record_received(self, count: int = 1) -> None:
        """Count delivered packets."""
        self.received += count

    @property
    def loss_rate(self) -> float:
        """Fraction of offered packets that never arrived."""
        if self.sent == 0:
            return 0.0
        return max(0.0, 1.0 - self.received / self.sent)


class DelayMeter:
    """One-way delay statistics."""

    def __init__(self, warmup_s: float = 0.0):
        self._warmup_s = warmup_s
        self._stats = RunningStats()
        self._samples: list[float] = []

    def record(self, sent_s: float, received_s: float) -> None:
        """Feed one packet's (send time, receive time)."""
        if received_s < sent_s:
            raise ConfigurationError(
                f"packet received at {received_s} s before sent at {sent_s} s"
            )
        if received_s >= self._warmup_s:
            delay = received_s - sent_s
            self._stats.add(delay)
            self._samples.append(delay)

    @property
    def count(self) -> int:
        """Delay samples recorded."""
        return self._stats.count

    @property
    def mean_s(self) -> float:
        """Mean one-way delay."""
        return self._stats.mean

    @property
    def max_s(self) -> float:
        """Worst delay seen."""
        return self._stats.maximum

    def percentile_s(self, fraction: float) -> float:
        """Delay percentile (e.g. 0.99)."""
        if not 0 <= fraction <= 1:
            raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
        return ordered[index]
