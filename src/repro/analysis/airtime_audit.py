"""Channel airtime accounting from PHY traces.

Subscribes to ``phy.*.tx_start``/``tx_end`` trace events and attributes
every microsecond of transmission time to its station.  For the
four-station experiments this turns "session 1 starves" into a
mechanism: one can see S3 occupying the channel and S1 spending its
life retrying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.tables import render_table
from repro.sim.tracing import TraceRecord, Tracer


@dataclass
class StationAirtime:
    """Accumulated airtime of one station."""

    name: str
    transmissions: int = 0
    airtime_ns: int = 0
    _tx_started_ns: int | None = field(default=None, repr=False)


class AirtimeAuditor:
    """Attach to a tracer before the run; read shares afterwards."""

    def __init__(self, tracer: Tracer):
        self._stations: dict[str, StationAirtime] = {}
        self._first_event_ns: int | None = None
        self._last_event_ns = 0
        tracer.subscribe(self._on_record, prefix="phy.")

    def _station(self, category: str) -> StationAirtime:
        name = category.split(".", 1)[1]
        if name not in self._stations:
            self._stations[name] = StationAirtime(name=name)
        return self._stations[name]

    def _on_record(self, record: TraceRecord) -> None:
        if record.event == "tx_start":
            station = self._station(record.category)
            station._tx_started_ns = record.time_ns
            station.transmissions += 1
            if self._first_event_ns is None:
                self._first_event_ns = record.time_ns
        elif record.event == "tx_end":
            station = self._station(record.category)
            if station._tx_started_ns is not None:
                station.airtime_ns += record.time_ns - station._tx_started_ns
                station._tx_started_ns = None
            self._last_event_ns = record.time_ns

    @property
    def observed_span_ns(self) -> int:
        """Time between the first TX start and the last TX end."""
        if self._first_event_ns is None:
            return 0
        return self._last_event_ns - self._first_event_ns

    def airtime_share(self, name: str) -> float:
        """Fraction of the observed span a station spent transmitting."""
        span_ns = self.observed_span_ns
        if span_ns <= 0 or name not in self._stations:
            return 0.0
        return self._stations[name].airtime_ns / span_ns

    def busy_fraction(self) -> float:
        """Fraction of the span *somebody* was transmitting.

        Upper-bounded by 1 in a single collision domain; values above 1
        reveal concurrent (potentially colliding) transmissions.
        """
        span_ns = self.observed_span_ns
        if span_ns <= 0:
            return 0.0
        return sum(s.airtime_ns for s in self._stations.values()) / span_ns

    def report(self) -> str:
        """Per-station airtime table."""
        rows = [
            (
                station.name,
                station.transmissions,
                round(station.airtime_ns / 1e6, 1),
                round(self.airtime_share(station.name), 3),
            )
            for station in sorted(
                self._stations.values(), key=lambda s: s.name
            )
        ]
        return render_table(
            ["station", "transmissions", "airtime (ms)", "share"],
            rows,
            title="Channel airtime audit",
        )
