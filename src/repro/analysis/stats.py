"""Running statistics and confidence intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from scipy import stats as scipy_stats

from repro.errors import ConfigurationError


class RunningStats:
    """Welford's online mean/variance."""

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    @property
    def count(self) -> int:
        """Number of samples seen."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        if self._n < 2:
            return 0.0
        return self._m2 / (self._n - 1)

    @property
    def stdev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        """Smallest sample (inf when empty)."""
        return self._min

    @property
    def maximum(self) -> float:
        """Largest sample (-inf when empty)."""
        return self._max

    def add(self, value: float) -> None:
        """Feed one sample."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def extend(self, values: Iterable[float]) -> None:
        """Feed many samples."""
        for value in values:
            self.add(value)


def confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """(mean, half-width) of a Student-t confidence interval."""
    if not 0 < confidence < 1:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if len(values) == 0:
        raise ConfigurationError("cannot build a CI from zero samples")
    stats = RunningStats()
    stats.extend(values)
    if stats.count == 1:
        return stats.mean, 0.0
    t = scipy_stats.t.ppf((1 + confidence) / 2, df=stats.count - 1)
    half_width = t * stats.stdev / math.sqrt(stats.count)
    return stats.mean, half_width


@dataclass(frozen=True)
class Summary:
    """Replication summary of one metric."""

    mean: float
    half_width: float
    minimum: float
    maximum: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.count})"


def summarize(values: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean, CI half-width and extremes of replication results."""
    mean, half_width = confidence_interval(values, confidence)
    return Summary(
        mean=mean,
        half_width=half_width,
        minimum=min(values),
        maximum=max(values),
        count=len(values),
    )
