"""CSV export of experiment results."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigurationError


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> Path:
    """Write rows to ``path``; returns the resolved path."""
    if not headers:
        raise ConfigurationError("CSV needs at least one column")
    resolved = Path(path)
    resolved.parent.mkdir(parents=True, exist_ok=True)
    with resolved.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ConfigurationError(
                    f"row {row} has {len(row)} cells for {len(headers)} columns"
                )
            writer.writerow(row)
    return resolved
