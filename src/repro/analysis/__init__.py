"""Measurement and statistics utilities.

* :mod:`repro.analysis.stats` — running statistics, Student-t confidence
  intervals, replication summaries.
* :mod:`repro.analysis.meters` — throughput / loss / delay meters with
  warm-up trimming.
* :mod:`repro.analysis.tables` — aligned plain-text tables for CLI and
  bench output.
* :mod:`repro.analysis.ascii_plot` — terminal line plots for the
  loss-vs-distance curves.
* :mod:`repro.analysis.csvio` — CSV export of experiment results.
* :mod:`repro.analysis.analytic` — closed-form DCF saturation model
  (retry-limited Bianchi) and per-rate overhead accounting, the
  reference side of the conformance harness.
"""

from repro.analysis.analytic import (
    DcfPrediction,
    jain_index,
    max_throughput_by_rate,
    predict_scenario,
    saturation_throughput,
)
from repro.analysis.stats import RunningStats, confidence_interval, summarize
from repro.analysis.meters import DelayMeter, LossMeter, ThroughputMeter
from repro.analysis.tables import render_table
from repro.analysis.ascii_plot import line_plot
from repro.analysis.csvio import write_csv

__all__ = [
    "DcfPrediction",
    "DelayMeter",
    "LossMeter",
    "RunningStats",
    "ThroughputMeter",
    "confidence_interval",
    "jain_index",
    "line_plot",
    "max_throughput_by_rate",
    "predict_scenario",
    "render_table",
    "saturation_throughput",
    "summarize",
    "write_csv",
]
