"""Terminal line plots (no plotting library is available offline).

Good enough to eyeball the Figure-3/4 loss curves from the CLI: one
character column per x sample, multiple series overlaid with distinct
glyphs.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError

_GLYPHS = "ox+*#@%&"


def line_plot(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    height: int = 12,
    y_min: float | None = None,
    y_max: float | None = None,
    title: str | None = None,
) -> str:
    """Render ``series`` (name -> y values over ``x``) as ASCII art."""
    if not series:
        raise ConfigurationError("need at least one series to plot")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(x)} x values"
            )
    if height < 2:
        raise ConfigurationError(f"height must be >= 2, got {height}")
    all_values = [v for ys in series.values() for v in ys]
    lo = y_min if y_min is not None else min(all_values)
    hi = y_max if y_max is not None else max(all_values)
    if hi <= lo:
        hi = lo + 1.0
    width = len(x)
    grid = [[" "] * width for _ in range(height)]
    for (name, ys), glyph in zip(series.items(), _GLYPHS):
        for column, value in enumerate(ys):
            fraction = (value - lo) / (hi - lo)
            row = height - 1 - round(fraction * (height - 1))
            row = min(max(row, 0), height - 1)
            grid[row][column] = glyph
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        y_value = hi - (hi - lo) * index / (height - 1)
        lines.append(f"{y_value:8.2f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9} x: {x[0]:g} .. {x[-1]:g}")
    legend = "  ".join(
        f"{glyph}={name}" for (name, _), glyph in zip(series.items(), _GLYPHS)
    )
    lines.append(f"{'':9} {legend}")
    return "\n".join(lines)
