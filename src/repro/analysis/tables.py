"""Aligned plain-text tables for CLI and bench output."""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A simple fixed-width table.

    Cells are stringified; floats get three decimals.  Columns are padded
    to the widest cell.
    """
    if not headers:
        raise ConfigurationError("a table needs at least one column")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    for row in text_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row {row} has {len(row)} cells for {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
