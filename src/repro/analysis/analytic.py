"""Closed-form DCF model: the analytic half of the conformance harness.

Two complementary predictions live here, both computed from the *same*
:class:`~repro.core.params.MacParameters` constants the simulator's
stations consume (via :meth:`repro.scenario.specs.StackSpec.
dot11_config`), so a swept scenario and its prediction can never drift
apart on the constants:

* **Retry-limited saturation throughput** — Bianchi's bidimensional
  Markov chain ("Performance Analysis of the IEEE 802.11 Distributed
  Coordination Function", JSAC 2000) extended with a finite frame-retry
  limit in the style of Wu et al.: a station that exhausts its retries
  drops the frame and resets to stage 0, so the transmission
  probability responds to the retry-limit axis — exactly what the
  ``mac-surface`` sweeps vary.  With the retry limit at infinity the
  expression reduces to Bianchi's Eq. (7); at n = 1 it reduces to the
  paper's Equation (1) plus the mean initial backoff.

* **Per-rate maximum-throughput / overhead accounting** — the
  zero-contention upper bound of "Throughput Limits of IEEE 802.11 and
  IEEE 802.15.3" (PAPERS.md): one station, no collisions, every
  exchange paying DIFS + PLCP/headers + SIFS + ACK + mean backoff.
  This wraps :class:`repro.core.throughput_model.ThroughputModel` at
  each 802.11b rate and exposes the per-component overhead breakdown.

The collision-slot duration is *simulator-faithful* rather than
textbook: after a collision the transmitters run the ACK-await timeout
(SIFS + PLCP + 2 slots) followed by DIFS, while every bystander that
decoded garbage defers EIFS from the moment the medium went idle.  The
next contention round starts when the slowest of the two is ready, so

    T_c = T_data + max(EIFS, ACK_timeout + DIFS)

which with the Table 1 defaults is dominated by EIFS (364 µs > 292 µs).
``collision_model="difs"`` selects Bianchi's classic ``T_data + DIFS``
instead, for comparison against the literature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.airtime import AirtimeCalculator
from repro.core.encapsulation import TransportProtocol, mac_payload_bytes
from repro.core.params import ALL_RATES, Dot11bConfig, Rate
from repro.core.throughput_model import ChannelOccupancy, ThroughputModel
from repro.errors import ConfigurationError

#: Collision-cost accounting modes (see module docstring).
COLLISION_MODELS = ("sim", "difs")


def contention_windows(
    cw_min_slots: int, cw_max_slots: int, retry_limit: int
) -> tuple[int, ...]:
    """Window sizes W_0..W_R of the binary exponential schedule.

    Stage ``i`` is reached after ``i`` consecutive failures;
    ``retry_limit`` is the number of *retries* (attempts - 1), matching
    :class:`repro.mac.dcf.MacStation`'s drop rule and
    :class:`repro.mac.backoff.ContentionWindow`'s doubling/clamping.
    """
    if cw_min_slots < 1 or cw_max_slots < cw_min_slots:
        raise ConfigurationError(
            "contention window must satisfy 1 <= CWmin <= CWmax, got "
            f"CWmin={cw_min_slots}, CWmax={cw_max_slots}"
        )
    if retry_limit < 0:
        raise ConfigurationError(f"retry limit must be >= 0, got {retry_limit}")
    return tuple(
        min(cw_min_slots * 2**stage, cw_max_slots)
        for stage in range(retry_limit + 1)
    )


def retry_limited_tau(
    p: float, cw_min_slots: int, cw_max_slots: int, retry_limit: int
) -> float:
    """Transmission probability for collision probability ``p``.

    Finite-retry Bianchi chain: ``b(i,0) = p^i b(0,0)`` for stages
    ``0..R``, a failure at stage R drops the frame and resets to stage
    0, and normalisation over the uniform backoff residuals gives

        tau = 2 * sum_i p^i / sum_i p^i (W_i + 1).

    For ``p = 0`` this is ``2 / (CWmin + 1)``; as R grows it converges
    to Bianchi's Eq. (7).
    """
    if not 0.0 <= p < 1.0:
        raise ConfigurationError(f"collision probability must be in [0, 1), got {p}")
    windows = contention_windows(cw_min_slots, cw_max_slots, retry_limit)
    attempts = 0.0
    residency = 0.0
    weight = 1.0
    for window in windows:
        attempts += weight
        residency += weight * (window + 1)
        weight *= p
    return 2.0 * attempts / residency


def solve_fixed_point(
    stations: int,
    cw_min_slots: int,
    cw_max_slots: int,
    retry_limit: int,
    tolerance: float = 1e-12,
) -> tuple[float, float]:
    """(tau, p) solving ``p = 1 - (1 - tau(p))^(n-1)`` by bisection.

    The residual is strictly decreasing in p (tau falls as p rises), so
    bisection on [0, 1) always converges.
    """
    if stations < 1:
        raise ConfigurationError(f"need >= 1 station, got {stations}")

    def tau_of(p: float) -> float:
        return retry_limited_tau(p, cw_min_slots, cw_max_slots, retry_limit)

    if stations == 1:
        return tau_of(0.0), 0.0
    lo, hi = 0.0, 0.999999
    for _ in range(200):
        mid = (lo + hi) / 2.0
        residual = (1.0 - (1.0 - tau_of(mid)) ** (stations - 1)) - mid
        if residual > 0.0:
            lo = mid
        else:
            hi = mid
        if hi - lo < tolerance:
            break
    p = (lo + hi) / 2.0
    return tau_of(p), p


@dataclass(frozen=True)
class DcfPrediction:
    """One closed-form saturation point, with its slot accounting."""

    stations: int
    #: Per-station transmission probability in a random slot.
    tau: float
    #: Conditional collision probability seen by a transmission.
    collision_probability: float
    #: Aggregate application-payload throughput, bits per second.
    throughput_bps: float
    #: Probability a frame is dropped after exhausting its retries.
    drop_probability: float
    #: Duration of a successful exchange / a collision, microseconds.
    t_success_us: float
    t_collision_us: float
    #: Mean duration of one contention slot, microseconds.
    expected_slot_us: float
    #: Zero-contention upper bound at the same rate/payload (Eq. 1/2).
    max_throughput_bps: float

    @property
    def efficiency(self) -> float:
        """Throughput as a fraction of the zero-contention bound."""
        return self.throughput_bps / self.max_throughput_bps


def collision_overhead_us(config: Dot11bConfig, model: str = "sim") -> float:
    """Post-collision dead time before slots tick again (see module doc)."""
    if model not in COLLISION_MODELS:
        raise ConfigurationError(
            f"unknown collision model {model!r}; accepted: {list(COLLISION_MODELS)}"
        )
    mac = config.mac
    if model == "difs":
        return mac.difs_us
    plcp_us = config.plcp.duration_us
    await_timeout_us = mac.sifs_us + plcp_us + 2 * mac.slot_time_us
    return max(mac.eifs_us(config.plcp), await_timeout_us + mac.difs_us)


def saturation_throughput(
    stations: int,
    app_payload_bytes: int = 512,
    data_rate: Rate = Rate.MBPS_11,
    config: Dot11bConfig | None = None,
    retry_limit: int | None = None,
    transport: TransportProtocol = TransportProtocol.UDP,
    collision_model: str = "sim",
) -> DcfPrediction:
    """Closed-form aggregate saturation throughput (basic access).

    ``retry_limit`` defaults to the config's short retry limit — the
    one a basic-access (no RTS) data frame consumes in the simulator.
    """
    if config is None:
        config = Dot11bConfig()
    mac = config.mac
    if retry_limit is None:
        retry_limit = mac.short_retry_limit
    tau, p = solve_fixed_point(
        stations, mac.cw_min_slots, mac.cw_max_slots, retry_limit
    )
    airtime = AirtimeCalculator(config)
    msdu = mac_payload_bytes(app_payload_bytes, transport)
    t_data_us = airtime.data_frame_us(msdu, data_rate)
    t_ack_us = airtime.ack_us()
    t_success_us = mac.difs_us + t_data_us + mac.sifs_us + t_ack_us
    t_collision_us = t_data_us + collision_overhead_us(config, collision_model)

    p_tr = 1.0 - (1.0 - tau) ** stations
    if p_tr == 0.0:
        expected_slot_us = mac.slot_time_us
        throughput_bps = 0.0
    else:
        p_success = (
            stations * tau * (1.0 - tau) ** (stations - 1) / p_tr
        )
        expected_slot_us = (
            (1.0 - p_tr) * mac.slot_time_us
            + p_tr * p_success * t_success_us
            + p_tr * (1.0 - p_success) * t_collision_us
        )
        throughput_bps = (
            p_tr * p_success * app_payload_bytes * 8 / (expected_slot_us * 1e-6)
        )
    bound = ThroughputModel(config=config, transport=transport)
    return DcfPrediction(
        stations=stations,
        tau=tau,
        collision_probability=p,
        throughput_bps=throughput_bps,
        drop_probability=p ** (retry_limit + 1),
        t_success_us=t_success_us,
        t_collision_us=t_collision_us,
        expected_slot_us=expected_slot_us,
        max_throughput_bps=bound.max_throughput_bps(app_payload_bytes, data_rate),
    )


@dataclass(frozen=True)
class RateEfficiency:
    """Overhead accounting for one 802.11b rate (802.15.3-paper style)."""

    data_rate: Rate
    payload_bytes: int
    max_throughput_bps: float
    occupancy: ChannelOccupancy

    @property
    def efficiency(self) -> float:
        """Delivered fraction of the nominal PHY rate."""
        return self.max_throughput_bps / self.data_rate.bps

    @property
    def overhead_fraction(self) -> float:
        """Share of each exchange spent on anything but the payload."""
        return 1.0 - self.payload_us / self.occupancy.total_us

    @property
    def payload_us(self) -> float:
        """Airtime of the application payload bits alone."""
        return self.payload_bytes * 8 / self.data_rate.mbps


def max_throughput_by_rate(
    app_payload_bytes: int = 512,
    config: Dot11bConfig | None = None,
    transport: TransportProtocol = TransportProtocol.UDP,
    rts_cts: bool = False,
) -> tuple[RateEfficiency, ...]:
    """The per-rate maximum-throughput table with overhead breakdowns.

    The asymptotic-efficiency story of the 802.15.3 comparison paper:
    as the PHY rate grows the fixed per-exchange overhead (PLCP at
    1 Mbps, DIFS, SIFS, ACK, mean backoff) caps the delivered fraction
    well below 1 — the reason 11 Mbps delivers ~3 Mbps in Table 2.
    """
    if config is None:
        config = Dot11bConfig()
    model = ThroughputModel(config=config, transport=transport)
    return tuple(
        RateEfficiency(
            data_rate=rate,
            payload_bytes=app_payload_bytes,
            max_throughput_bps=model.max_throughput_bps(
                app_payload_bytes, rate, rts_cts
            ),
            occupancy=model.occupancy(app_payload_bytes, rate, rts_cts),
        )
        for rate in ALL_RATES
    )


def predict_scenario(spec) -> DcfPrediction:
    """The saturation prediction for one mac-surface scenario spec.

    The spec must be a saturated-contender scenario: every flow a
    saturated CBR with the same payload size (the shape
    :func:`repro.experiments.mac_surface.saturation_spec` builds).  The
    protocol constants come from ``spec.stack.dot11_config()`` — the
    identical object :func:`repro.scenario.build` hands every station.
    """
    flows = spec.traffic.flows
    if not flows:
        raise ConfigurationError("spec has no flows to predict")
    payloads = {flow.payload_bytes for flow in flows}
    if len(payloads) != 1 or any(flow.rate_bps is not None for flow in flows):
        raise ConfigurationError(
            "predict_scenario needs saturated CBR flows with one payload size"
        )
    config = spec.stack.dot11_config() or Dot11bConfig()
    return saturation_throughput(
        stations=len(flows),
        app_payload_bytes=payloads.pop(),
        data_rate=Rate.from_mbps(spec.stack.data_rate_mbps),
        config=config,
    )


def jain_index(values) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), 1 = perfectly fair."""
    xs = [float(v) for v in values]
    if not xs:
        raise ConfigurationError("Jain index needs at least one value")
    if any(x < 0 for x in xs):
        raise ConfigurationError("Jain index needs non-negative values")
    square_sum = math.fsum(x * x for x in xs)
    if square_sum == 0.0:
        return 1.0
    return math.fsum(xs) ** 2 / (len(xs) * square_sum)
