"""Declarative scenarios: specs in, running networks out.

The paper's whole experimental vocabulary — stations on a line, a NIC
rate, RTS on/off, CBR / on-off / bulk-TCP traffic, fault windows, a
seed — is expressed as frozen dataclasses with a canonical, versioned
JSON form.  :func:`build` turns a :class:`ScenarioSpec` into a fully
wired :class:`ScenarioNetwork`; :func:`run_scenarios` sweeps batches of
specs through the parallel engine with results content-addressed by the
spec serialisation.
"""

from repro.scenario.builder import build, build_network
from repro.scenario.network import FlowHandle, ScenarioNetwork
from repro.scenario.points import (
    SCENARIO_POINT_FN,
    run_scenarios,
    scenario_point,
    scenario_sweep_points,
)
from repro.scenario.specs import (
    DEFAULT_FAST_SIGMA_DB,
    SPEC_VERSION,
    FaultSpec,
    FlowSpec,
    MacParamsSpec,
    MobilitySpec,
    ObservabilitySpec,
    ScenarioSpec,
    StackSpec,
    SweepAxis,
    SweepSpec,
    TopologySpec,
    TrafficSpec,
    WeatherSpec,
    apply_overrides,
)

__all__ = [
    "DEFAULT_FAST_SIGMA_DB",
    "SCENARIO_POINT_FN",
    "SPEC_VERSION",
    "FaultSpec",
    "FlowHandle",
    "FlowSpec",
    "MacParamsSpec",
    "MobilitySpec",
    "ObservabilitySpec",
    "ScenarioNetwork",
    "ScenarioSpec",
    "StackSpec",
    "SweepAxis",
    "SweepSpec",
    "TopologySpec",
    "TrafficSpec",
    "WeatherSpec",
    "apply_overrides",
    "build",
    "build_network",
    "run_scenarios",
    "scenario_point",
    "scenario_sweep_points",
]
