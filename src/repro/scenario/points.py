"""Spec-driven sweep points: the one cacheable entry into a scenario.

:func:`scenario_point` is the *single* function every experiment sweep
now routes through: its parameters are the scenario's canonical
``to_dict`` document plus the dotted path of a metric extractor.  The
:class:`~repro.parallel.cache.SweepCache` therefore keys results on the
canonical spec serialisation (plus the sim-source version tag) — a cache
hit survives any refactor of experiment plumbing, and two experiments
asking for the same physical scenario share the entry.

Extractors are module-level functions ``extract(net, **extract_params)``
resolved by dotted path (like sweep point functions), so points stay
picklable and content-addressable.  They run after the scenario's
``duration_s`` has elapsed and may advance the simulation further
(e.g. draining in-flight probes) before reading their metric.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.parallel.engine import SweepPoint, resolve_point_fn, run_sweep
from repro.scenario.builder import build
from repro.scenario.network import ScenarioNetwork
from repro.scenario.specs import ScenarioSpec

#: Dotted path of :func:`scenario_point` — the ``fn`` of every
#: spec-driven :class:`~repro.parallel.engine.SweepPoint`.
SCENARIO_POINT_FN = "repro.scenario.points:scenario_point"


def scenario_point(
    spec: Mapping[str, Any],
    extract: str,
    extract_params: Mapping[str, Any] | None = None,
    seed: int | None = None,
) -> Any:
    """Build, run and measure the scenario ``spec`` describes.

    ``spec`` is a :meth:`ScenarioSpec.to_dict` document (plain JSON so
    the point is picklable and cacheable); ``extract`` names the metric
    function ``"pkg.mod:fn"`` called as ``fn(net, **extract_params)``
    once the scenario's ``duration_s`` has run.

    ``seed``, when given, overrides the spec's seed — this is how the
    retry-with-perturbed-seed policy reaches spec points.
    """
    scenario = ScenarioSpec.from_dict(spec)
    if seed is not None:
        scenario = ScenarioSpec.from_dict({**scenario.to_dict(), "seed": seed})
    net = build(scenario)
    net.run(scenario.duration_s)
    extractor = resolve_point_fn(extract)
    result = extractor(net, **dict(extract_params or {}))
    if net.recorder is not None:
        # Balance the books once the extractor (which may advance the
        # simulation further) is done; strict recorders raise here.
        net.recorder.finalize()
    return result


def scenario_sweep_points(
    specs: Iterable[ScenarioSpec],
    extract: str,
    extract_params: Mapping[str, Any] | None = None,
) -> list[SweepPoint]:
    """The :class:`SweepPoint` list for a batch of scenarios."""
    points = []
    for spec in specs:
        if not isinstance(spec, ScenarioSpec):
            raise ConfigurationError(
                f"scenario sweeps take ScenarioSpec values, got "
                f"{type(spec).__name__}"
            )
        params: dict[str, Any] = {"spec": spec.to_dict(), "extract": extract}
        if extract_params:
            params["extract_params"] = dict(extract_params)
        points.append(SweepPoint(fn=SCENARIO_POINT_FN, params=params))
    return points


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    extract: str,
    extract_params: Mapping[str, Any] | None = None,
    jobs: int = 1,
    cache: Any = None,
    policy: Any = None,
    journal: Any = None,
    on_error: str | None = None,
    resume: bool | None = None,
) -> list[Any]:
    """Sweep a batch of scenarios through the parallel engine.

    Results come back in spec order; serial (``jobs=1``), pooled and
    warm-cache runs are interchangeable.  ``journal``/``on_error``/
    ``resume`` (or the same-named attributes of ``policy``) flow into
    the supervised executor — see :func:`repro.parallel.run_sweep`.
    """
    return run_sweep(
        scenario_sweep_points(specs, extract, extract_params),
        jobs=jobs,
        cache=cache,
        policy=policy,
        journal=journal,
        on_error=on_error,
        resume=resume,
    )


# ---------------------------------------------------------------------------
# Generic extractors (experiment modules define richer ones).


def flow_throughput_bps(
    net: ScenarioNetwork, flow: int = 0, horizon_s: float | None = None
) -> float:
    """Goodput of one flow over the scenario's measurement window."""
    if horizon_s is None:
        assert net.spec is not None
        horizon_s = net.spec.duration_s
    return net.flow(flow).throughput_bps(horizon_s)


def flow_throughputs_kbps(net: ScenarioNetwork) -> list[list[Any]]:
    """``[label, kbps]`` rows for every flow (session-table shape)."""
    assert net.spec is not None
    horizon_s = net.spec.duration_s
    return [
        [handle.label, handle.throughput_bps(horizon_s) / 1e3]
        for handle in net.flows
    ]


def sink_packets(net: ScenarioNetwork, flow: int = 0) -> int:
    """Packets the flow's sink delivered (including warmup)."""
    return int(net.flow(flow).sink.packets)


def trace_counters(net: ScenarioNetwork) -> dict[str, int]:
    """The tracer's counter map — the scenario's event-level fingerprint."""
    return dict(net.tracer.counters())
