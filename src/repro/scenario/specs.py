"""Declarative scenario specs: topology + stack + traffic + faults as data.

Every experiment in the paper is a combination of one small vocabulary —
stations on a line, a NIC rate, RTS on/off, a traffic pattern, a seed.
The frozen dataclasses here capture that vocabulary as *data* with a
canonical, versioned JSON serialisation, so a complete scenario can live
in a file, be content-addressed by the sweep cache, and be rebuilt
bit-identically by :func:`repro.scenario.builder.build`.

The layers compose bottom-up:

* :class:`TopologySpec` — station positions, shadowing, propagation
  preset, weather and mobility;
* :class:`StackSpec` — NIC rate, RTS/CTS, ACK policy, radio preset, MAC
  retry limits / queue depth, ARF;
* :class:`TrafficSpec` — CBR / on-off / bulk-TCP flows between station
  indices;
* :class:`FaultSpec` — a :mod:`repro.faults` impairment window, in
  serialisable form (node *indices* instead of live callbacks);
* :class:`ScenarioSpec` — all of the above plus seed / duration / warmup;
* :class:`SweepSpec` — a base scenario and override axes expanding to a
  scenario grid.

``from_dict`` rejects unknown keys (a typo never silently produces a
default run) and ``apply_overrides`` takes dotted ``--set``-style paths
with the same strictness.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Iterable, Mapping, Sequence

from repro.channel.medium import MEDIUMS
from repro.channel.weather import DayConditions
from repro.core.params import Dot11bConfig, MacParameters, Rate
from repro.errors import ConfigurationError, FaultError
from repro.mac.dcf import AckPolicy
from repro.net.routing import ROUTING_POLICIES
from repro.phy.kernel import KERNELS

#: Serialisation format version; bump on incompatible spec changes.
SPEC_VERSION = 1

#: Default per-frame shadowing used by the dynamic experiments.  Chosen
#: so the loss-vs-distance curves of Figure 3 spread over the distance
#: window the paper shows (roughly 20-30 m wide per rate).
DEFAULT_FAST_SIGMA_DB = 2.5

#: Propagation preset names (``None`` means the library default, the
#: calibrated log-distance model).
PROPAGATION_PRESETS = ("log-distance", "free-space", "two-ray")

#: Radio preset names (``None`` means the calibrated default).
RADIO_PRESETS = ("calibrated", "ns2")

FLOW_KINDS = ("cbr", "onoff", "bulk-tcp")

FAULT_KINDS = (
    "link-fade",
    "link-blackout",
    "interference",
    "node-crash",
    "clock-jitter",
)


def _check_keys(data: Mapping[str, Any], cls: type, what: str) -> None:
    """Reject keys that are not fields of ``cls`` (typo protection)."""
    allowed = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - allowed - {"version"})
    if unknown:
        raise ConfigurationError(
            f"unknown {what} key(s) {unknown}; accepted: {sorted(allowed)}"
        )


def _number(value: Any, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{what} must be a number, got {value!r}")
    return float(value)


def _optional_number(value: Any, what: str) -> float | None:
    return None if value is None else _number(value, what)


def _integer(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{what} must be an integer, got {value!r}")
    return value


def _freeze_types(
    spec: Any,
    float_fields: tuple[str, ...] = (),
    bool_fields: tuple[str, ...] = (),
) -> None:
    """Normalise numeric/bool field types in place (frozen-safe).

    ``ScenarioSpec(duration_s=1)`` and ``ScenarioSpec(duration_s=1.0)``
    describe the same scenario and compare equal, but without coercion
    they would serialise to different canonical bytes (``1`` vs ``1.0``)
    and therefore different sweep-cache keys.  Coercing at construction
    makes equality and canonical serialisation agree.
    """
    for name in float_fields:
        value = getattr(spec, name)
        if value is not None and not isinstance(value, float):
            object.__setattr__(spec, name, float(value))
    for name in bool_fields:
        value = getattr(spec, name)
        if not isinstance(value, bool):
            object.__setattr__(spec, name, bool(value))


@dataclass(frozen=True)
class WeatherSpec:
    """Serialisable form of :class:`repro.channel.weather.DayConditions`."""

    name: str
    offset_db: float
    sigma_db: float = 1.5
    correlation_time_s: float = 30.0

    def __post_init__(self) -> None:
        _freeze_types(
            self, ("offset_db", "sigma_db", "correlation_time_s")
        )

    @classmethod
    def from_conditions(cls, day: DayConditions) -> "WeatherSpec":
        """Wrap an existing :class:`DayConditions` value."""
        return cls(
            name=day.name,
            offset_db=day.offset_db,
            sigma_db=day.sigma_db,
            correlation_time_s=day.correlation_time_s,
        )

    def to_conditions(self) -> DayConditions:
        """The :class:`DayConditions` the channel model consumes."""
        return DayConditions(
            name=self.name,
            offset_db=self.offset_db,
            sigma_db=self.sigma_db,
            correlation_time_s=self.correlation_time_s,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "offset_db": self.offset_db,
            "sigma_db": self.sigma_db,
            "correlation_time_s": self.correlation_time_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WeatherSpec":
        _check_keys(data, cls, "weather")
        return cls(
            name=str(data["name"]),
            offset_db=_number(data["offset_db"], "weather offset_db"),
            sigma_db=_number(data.get("sigma_db", 1.5), "weather sigma_db"),
            correlation_time_s=_number(
                data.get("correlation_time_s", 30.0), "weather correlation_time_s"
            ),
        )


@dataclass(frozen=True)
class MobilitySpec:
    """One moving station (the paper's walking-receiver pattern)."""

    node: int
    speed_m_s: float
    update_interval_s: float = 0.1
    kind: str = "walk-away"

    def __post_init__(self) -> None:
        _freeze_types(self, ("speed_m_s", "update_interval_s"))
        if self.kind != "walk-away":
            raise ConfigurationError(
                f"unknown mobility kind {self.kind!r}; accepted: ['walk-away']"
            )
        if self.node < 0:
            raise ConfigurationError(f"mobility node must be >= 0, got {self.node}")
        if self.speed_m_s <= 0:
            raise ConfigurationError(
                f"mobility speed must be > 0 m/s, got {self.speed_m_s}"
            )
        if self.update_interval_s <= 0:
            raise ConfigurationError(
                f"mobility update interval must be > 0 s, got {self.update_interval_s}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "node": self.node,
            "speed_m_s": self.speed_m_s,
            "update_interval_s": self.update_interval_s,
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MobilitySpec":
        _check_keys(data, cls, "mobility")
        return cls(
            node=_integer(data["node"], "mobility node"),
            speed_m_s=_number(data["speed_m_s"], "mobility speed_m_s"),
            update_interval_s=_number(
                data.get("update_interval_s", 0.1), "mobility update_interval_s"
            ),
            kind=str(data.get("kind", "walk-away")),
        )


def _normalise_positions(
    positions: Iterable[Any],
) -> tuple[tuple[float, float], ...]:
    out: list[tuple[float, float]] = []
    for position in positions:
        if isinstance(position, (int, float)) and not isinstance(position, bool):
            out.append((float(position), 0.0))
        elif isinstance(position, (tuple, list)) and len(position) == 2:
            out.append((float(position[0]), float(position[1])))
        else:
            raise ConfigurationError(
                f"positions_m entries must be x or (x, y), got {position!r}"
            )
    return tuple(out)


@dataclass(frozen=True)
class TopologySpec:
    """Where the stations sit and how the channel between them behaves."""

    positions_m: tuple[tuple[float, float], ...]
    fast_sigma_db: float = DEFAULT_FAST_SIGMA_DB
    static_sigma_db: float = 0.0
    weather: WeatherSpec | None = None
    #: One of :data:`PROPAGATION_PRESETS`, or ``None`` for the calibrated
    #: log-distance default.
    propagation: str | None = None
    mobility: tuple[MobilitySpec, ...] = ()
    #: Reception-event generation path: ``"dense"`` | ``"spatial"``, or
    #: ``None`` to defer to the ``REPRO_MEDIUM`` environment variable
    #: (default ``auto``).  Purely a performance knob — both paths emit
    #: bit-identical events.
    medium: str | None = None

    def __post_init__(self) -> None:
        _freeze_types(self, ("fast_sigma_db", "static_sigma_db"))
        object.__setattr__(self, "positions_m", _normalise_positions(self.positions_m))
        object.__setattr__(self, "mobility", tuple(self.mobility))
        if not self.positions_m:
            raise ConfigurationError("topology needs at least one station position")
        if self.fast_sigma_db < 0 or self.static_sigma_db < 0:
            raise ConfigurationError("shadowing sigmas must be >= 0 dB")
        if self.propagation is not None and self.propagation not in PROPAGATION_PRESETS:
            raise ConfigurationError(
                f"unknown propagation preset {self.propagation!r}; "
                f"accepted: {list(PROPAGATION_PRESETS)} (or null for calibrated)"
            )
        if self.medium is not None and self.medium not in MEDIUMS:
            raise ConfigurationError(
                f"unknown medium mode {self.medium!r}; "
                f"accepted: {list(MEDIUMS)} (or null to follow REPRO_MEDIUM)"
            )
        for mobility in self.mobility:
            if mobility.node >= len(self.positions_m):
                raise ConfigurationError(
                    f"mobility targets node index {mobility.node}, but the "
                    f"topology has {len(self.positions_m)} stations"
                )

    @classmethod
    def line(cls, *xs: float, **kwargs: Any) -> "TopologySpec":
        """Stations on a line at the given x coordinates (paper style)."""
        return cls(positions_m=tuple((float(x), 0.0) for x in xs), **kwargs)

    @classmethod
    def chain(cls, n: int, spacing_m: float, **kwargs: Any) -> "TopologySpec":
        """``n`` stations in a line, ``spacing_m`` apart (multihop chain)."""
        if n < 2:
            raise ConfigurationError(f"a chain needs >= 2 stations, got {n}")
        if spacing_m <= 0:
            raise ConfigurationError(f"chain spacing must be > 0 m, got {spacing_m}")
        return cls(
            positions_m=tuple((i * float(spacing_m), 0.0) for i in range(n)),
            **kwargs,
        )

    @classmethod
    def grid(
        cls, rows: int, cols: int, spacing_m: float, **kwargs: Any
    ) -> "TopologySpec":
        """A ``rows`` x ``cols`` lattice, row-major station order."""
        if rows < 1 or cols < 1:
            raise ConfigurationError(
                f"grid needs rows >= 1 and cols >= 1, got {rows}x{cols}"
            )
        if spacing_m <= 0:
            raise ConfigurationError(f"grid spacing must be > 0 m, got {spacing_m}")
        spacing = float(spacing_m)
        return cls(
            positions_m=tuple(
                (col * spacing, row * spacing)
                for row in range(rows)
                for col in range(cols)
            ),
            **kwargs,
        )

    @classmethod
    def random(
        cls, n: int, spacing_m: float, seed: int, **kwargs: Any
    ) -> "TopologySpec":
        """``n`` stations uniform over a square with mean density
        matching one station per ``spacing_m``-sided cell.

        The square's side is ``spacing_m * sqrt(n)``, so the *density*
        (and therefore the mean neighbour count at any radius) stays
        fixed as ``n`` grows — exactly what the per-node-throughput-vs-
        density experiments need.  Same ``seed``, same layout, always.
        """
        if n < 1:
            raise ConfigurationError(f"random topology needs >= 1 station, got {n}")
        if spacing_m <= 0:
            raise ConfigurationError(
                f"random topology spacing must be > 0 m, got {spacing_m}"
            )
        side = float(spacing_m) * math.sqrt(n)
        # Layout generation is spec-level, not simulation-level: the
        # seed is pinned in the signature, so the draw is as auditable
        # as a literal position list (and cache-key stable).
        rng = random.Random(seed)
        return cls(
            positions_m=tuple(
                (rng.uniform(0.0, side), rng.uniform(0.0, side)) for _ in range(n)
            ),
            **kwargs,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "positions_m": [list(xy) for xy in self.positions_m],
            "fast_sigma_db": self.fast_sigma_db,
            "static_sigma_db": self.static_sigma_db,
            "weather": self.weather.to_dict() if self.weather is not None else None,
            "propagation": self.propagation,
            "mobility": [m.to_dict() for m in self.mobility],
            "medium": self.medium,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        _check_keys(data, cls, "topology")
        weather = data.get("weather")
        return cls(
            positions_m=_normalise_positions(data["positions_m"]),
            fast_sigma_db=_number(
                data.get("fast_sigma_db", DEFAULT_FAST_SIGMA_DB),
                "topology fast_sigma_db",
            ),
            static_sigma_db=_number(
                data.get("static_sigma_db", 0.0), "topology static_sigma_db"
            ),
            weather=WeatherSpec.from_dict(weather) if weather is not None else None,
            propagation=data.get("propagation"),
            mobility=tuple(
                MobilitySpec.from_dict(m) for m in data.get("mobility", ())
            ),
            medium=data.get("medium"),
        )


@dataclass(frozen=True)
class MacParamsSpec:
    """MAC contention-parameter overrides (the response-surface knobs).

    Every field defaults to ``None`` = "use the Table 1 constant from
    :class:`repro.core.params.MacParameters`".  A spec with explicit
    values builds a custom :class:`~repro.core.params.MacParameters`
    for the whole network — the same object both the DCF stations and
    the analytic model (:mod:`repro.analysis.analytic`) consume, so a
    swept point and its closed-form prediction can never disagree about
    the constants.

    ``difs_us`` left ``None`` follows the standard's identity
    ``DIFS = SIFS + 2 x slot`` whenever slot or SIFS is overridden (the
    802.11b defaults satisfy it: 10 + 2 x 20 = 50 µs).

    ``queue_frames`` overrides the per-station MAC queue depth; it
    takes precedence over the older ``StackSpec.mac_queue_frames``
    field so sweeps can address every MAC knob under one
    ``stack.mac.*`` prefix.
    """

    cw_min_slots: int | None = None
    cw_max_slots: int | None = None
    short_retry_limit: int | None = None
    long_retry_limit: int | None = None
    slot_time_us: float | None = None
    sifs_us: float | None = None
    difs_us: float | None = None
    queue_frames: int | None = None

    def __post_init__(self) -> None:
        _freeze_types(self, ("slot_time_us", "sifs_us", "difs_us"))
        for name in ("cw_min_slots", "cw_max_slots", "queue_frames"):
            value = getattr(self, name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ConfigurationError(
                    f"mac {name} must be an integer or null, got {value!r}"
                )
            if value is not None and value < 1:
                raise ConfigurationError(f"mac {name} must be >= 1, got {value}")
        for name in ("short_retry_limit", "long_retry_limit"):
            value = getattr(self, name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ConfigurationError(
                    f"mac {name} must be an integer or null, got {value!r}"
                )
            if value is not None and value < 0:
                raise ConfigurationError(f"mac {name} must be >= 0, got {value}")
        for name in ("slot_time_us", "sifs_us", "difs_us"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(f"mac {name} must be > 0 µs, got {value}")
        # Merge with the Table 1 defaults now so an inconsistent pair
        # (CWmin > CWmax, SIFS > DIFS) fails at spec construction, not
        # at build time deep inside a sweep.
        self.to_mac_parameters()

    @property
    def overrides_timing(self) -> bool:
        """True when any :class:`MacParameters` field is overridden."""
        return any(
            getattr(self, name) is not None
            for name in (
                "cw_min_slots", "cw_max_slots", "short_retry_limit",
                "long_retry_limit", "slot_time_us", "sifs_us", "difs_us",
            )
        )

    def to_mac_parameters(
        self, base: MacParameters | None = None
    ) -> MacParameters:
        """The effective :class:`MacParameters` (``base`` + overrides)."""
        if base is None:
            base = MacParameters()
        slot = base.slot_time_us if self.slot_time_us is None else self.slot_time_us
        sifs = base.sifs_us if self.sifs_us is None else self.sifs_us
        if self.difs_us is not None:
            difs = self.difs_us
        elif self.slot_time_us is None and self.sifs_us is None:
            difs = base.difs_us
        else:
            difs = sifs + 2.0 * slot
        return dataclasses.replace(
            base,
            slot_time_us=slot,
            sifs_us=sifs,
            difs_us=difs,
            cw_min_slots=(
                base.cw_min_slots if self.cw_min_slots is None else self.cw_min_slots
            ),
            cw_max_slots=(
                base.cw_max_slots if self.cw_max_slots is None else self.cw_max_slots
            ),
            short_retry_limit=(
                base.short_retry_limit
                if self.short_retry_limit is None
                else self.short_retry_limit
            ),
            long_retry_limit=(
                base.long_retry_limit
                if self.long_retry_limit is None
                else self.long_retry_limit
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "cw_min_slots": self.cw_min_slots,
            "cw_max_slots": self.cw_max_slots,
            "short_retry_limit": self.short_retry_limit,
            "long_retry_limit": self.long_retry_limit,
            "slot_time_us": self.slot_time_us,
            "sifs_us": self.sifs_us,
            "difs_us": self.difs_us,
            "queue_frames": self.queue_frames,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MacParamsSpec":
        _check_keys(data, cls, "mac")
        ints = {
            name: (
                None
                if data.get(name) is None
                else _integer(data[name], f"mac {name}")
            )
            for name in (
                "cw_min_slots", "cw_max_slots", "short_retry_limit",
                "long_retry_limit", "queue_frames",
            )
        }
        return cls(
            slot_time_us=_optional_number(
                data.get("slot_time_us"), "mac slot_time_us"
            ),
            sifs_us=_optional_number(data.get("sifs_us"), "mac sifs_us"),
            difs_us=_optional_number(data.get("difs_us"), "mac difs_us"),
            **ints,
        )


@dataclass(frozen=True)
class StackSpec:
    """Per-station PHY/MAC/transport configuration."""

    data_rate_mbps: float = 11.0
    rts_enabled: bool = False
    ack_policy: str = "always"
    #: One of :data:`RADIO_PRESETS`, or ``None`` for the calibrated default.
    radio: str | None = None
    short_retry_limit: int | None = None
    long_retry_limit: int | None = None
    mac_queue_frames: int = 200
    arf: bool = False
    #: MAC contention-parameter overrides (CWmin/CWmax, retry limits,
    #: slot/SIFS/DIFS, queue depth), or ``None`` for the Table 1
    #: defaults.  Mutually exclusive with the top-level
    #: ``short_retry_limit`` / ``long_retry_limit`` fields.
    mac: MacParamsSpec | None = None
    #: Reception kernel: ``"python"`` | ``"numpy"``, or ``None`` to defer
    #: to the ``REPRO_KERNEL`` environment variable (default ``auto``).
    kernel: str | None = None
    #: Routing policy: ``"direct"`` (single-hop, the paper's test-bed) |
    #: ``"shortest-path"`` (hop-count BFS tables built from the topology
    #: at build time, strict no-route misses), or ``None`` for direct.
    routing: str | None = None

    def __post_init__(self) -> None:
        _freeze_types(self, ("data_rate_mbps",), ("rts_enabled", "arf"))
        Rate.from_mbps(self.data_rate_mbps)  # validates; raises ConfigurationError
        if self.ack_policy not in {policy.value for policy in AckPolicy}:
            raise ConfigurationError(
                f"unknown ack_policy {self.ack_policy!r}; accepted: "
                f"{sorted(policy.value for policy in AckPolicy)}"
            )
        if self.radio is not None and self.radio not in RADIO_PRESETS:
            raise ConfigurationError(
                f"unknown radio preset {self.radio!r}; "
                f"accepted: {list(RADIO_PRESETS)} (or null for calibrated)"
            )
        for name in ("short_retry_limit", "long_retry_limit"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")
        if self.mac_queue_frames < 1:
            raise ConfigurationError(
                f"mac_queue_frames must be >= 1, got {self.mac_queue_frames}"
            )
        if self.kernel is not None and self.kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown reception kernel {self.kernel!r}; "
                f"accepted: {list(KERNELS)} (or null to follow REPRO_KERNEL)"
            )
        if self.routing is not None and self.routing not in ROUTING_POLICIES:
            raise ConfigurationError(
                f"unknown routing policy {self.routing!r}; "
                f"accepted: {list(ROUTING_POLICIES)} (or null for direct)"
            )
        if self.mac is not None:
            for name in ("short_retry_limit", "long_retry_limit"):
                if (
                    getattr(self, name) is not None
                    and getattr(self.mac, name) is not None
                ):
                    raise ConfigurationError(
                        f"{name} is set both on the stack and on stack.mac; "
                        f"pick one (stack.mac.{name} is the sweepable form)"
                    )

    @property
    def effective_queue_frames(self) -> int:
        """MAC queue depth after the ``stack.mac`` override."""
        if self.mac is not None and self.mac.queue_frames is not None:
            return self.mac.queue_frames
        return self.mac_queue_frames

    def dot11_config(self) -> Dot11bConfig | None:
        """The protocol config this stack implies, ``None`` = defaults.

        Single source of truth for both sides of the conformance
        harness: :func:`repro.scenario.builder.build` hands this to
        every station, and :mod:`repro.analysis.analytic` computes its
        closed-form predictions from the very same object.
        """
        legacy: dict[str, int] = {}
        if self.short_retry_limit is not None:
            legacy["short_retry_limit"] = self.short_retry_limit
        if self.long_retry_limit is not None:
            legacy["long_retry_limit"] = self.long_retry_limit
        if self.mac is None or not self.mac.overrides_timing:
            if not legacy:
                return None
            return Dot11bConfig(mac=MacParameters(**legacy))
        base = MacParameters(**legacy) if legacy else MacParameters()
        return Dot11bConfig(mac=self.mac.to_mac_parameters(base))

    def to_dict(self) -> dict[str, Any]:
        return {
            "data_rate_mbps": self.data_rate_mbps,
            "rts_enabled": self.rts_enabled,
            "ack_policy": self.ack_policy,
            "radio": self.radio,
            "short_retry_limit": self.short_retry_limit,
            "long_retry_limit": self.long_retry_limit,
            "mac_queue_frames": self.mac_queue_frames,
            "arf": self.arf,
            "kernel": self.kernel,
            "routing": self.routing,
            "mac": self.mac.to_dict() if self.mac is not None else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StackSpec":
        _check_keys(data, cls, "stack")
        short = data.get("short_retry_limit")
        long = data.get("long_retry_limit")
        return cls(
            data_rate_mbps=_number(
                data.get("data_rate_mbps", 11.0), "stack data_rate_mbps"
            ),
            rts_enabled=bool(data.get("rts_enabled", False)),
            ack_policy=str(data.get("ack_policy", "always")),
            radio=data.get("radio"),
            short_retry_limit=(
                None if short is None else _integer(short, "short_retry_limit")
            ),
            long_retry_limit=(
                None if long is None else _integer(long, "long_retry_limit")
            ),
            mac_queue_frames=_integer(
                data.get("mac_queue_frames", 200), "mac_queue_frames"
            ),
            arf=bool(data.get("arf", False)),
            kernel=data.get("kernel"),
            routing=data.get("routing"),
            mac=(
                MacParamsSpec.from_dict(data["mac"])
                if data.get("mac") is not None
                else None
            ),
        )


@dataclass(frozen=True)
class FlowSpec:
    """One traffic flow between two station indices.

    ``kind`` selects the generator: ``cbr`` (:class:`~repro.apps.cbr.
    CbrSource` into a :class:`~repro.apps.sink.UdpSink`; ``rate_bps``
    of ``None`` means saturated), ``onoff`` (bursty UDP), or
    ``bulk-tcp`` (an ftp-like transfer).
    """

    kind: str
    src: int
    dst: int
    port: int = 5001
    payload_bytes: int = 512
    rate_bps: float | None = None
    start_s: float = 0.0
    timestamped: bool = False
    #: On-off shape (``onoff`` flows only).
    mean_on_s: float = 0.5
    mean_off_s: float = 0.5
    #: Transfer size (``bulk-tcp`` flows only); ``None`` streams forever.
    total_bytes: int | None = None

    def __post_init__(self) -> None:
        _freeze_types(
            self,
            ("rate_bps", "start_s", "mean_on_s", "mean_off_s"),
            ("timestamped",),
        )
        if self.kind not in FLOW_KINDS:
            raise ConfigurationError(
                f"unknown flow kind {self.kind!r}; accepted: {list(FLOW_KINDS)}"
            )
        if self.src < 0 or self.dst < 0:
            raise ConfigurationError("flow endpoints must be >= 0")
        if self.src == self.dst:
            raise ConfigurationError(
                f"flow needs two distinct stations, got src == dst == {self.src}"
            )
        if self.port <= 0:
            raise ConfigurationError(f"flow port must be > 0, got {self.port}")
        if self.payload_bytes <= 0:
            raise ConfigurationError(
                f"flow payload must be > 0 bytes, got {self.payload_bytes}"
            )
        if self.rate_bps is not None and self.rate_bps <= 0:
            raise ConfigurationError(
                f"flow rate must be > 0 bps (or null for saturated), "
                f"got {self.rate_bps}"
            )
        if self.start_s < 0:
            raise ConfigurationError(f"flow start must be >= 0 s, got {self.start_s}")
        if self.kind == "onoff":
            if self.rate_bps is None:
                raise ConfigurationError("onoff flows need an explicit rate_bps")
            if self.mean_on_s <= 0 or self.mean_off_s <= 0:
                raise ConfigurationError("mean ON/OFF periods must be positive")
            if self.start_s != 0:
                raise ConfigurationError(
                    "onoff flows start at t=0 (the burst phase is random); "
                    f"got start_s={self.start_s!r}"
                )
        if self.total_bytes is not None and self.total_bytes <= 0:
            raise ConfigurationError(
                f"total_bytes must be > 0 (or null), got {self.total_bytes}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "port": self.port,
            "payload_bytes": self.payload_bytes,
            "rate_bps": self.rate_bps,
            "start_s": self.start_s,
            "timestamped": self.timestamped,
            "mean_on_s": self.mean_on_s,
            "mean_off_s": self.mean_off_s,
            "total_bytes": self.total_bytes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FlowSpec":
        _check_keys(data, cls, "flow")
        total = data.get("total_bytes")
        return cls(
            kind=str(data["kind"]),
            src=_integer(data["src"], "flow src"),
            dst=_integer(data["dst"], "flow dst"),
            port=_integer(data.get("port", 5001), "flow port"),
            payload_bytes=_integer(
                data.get("payload_bytes", 512), "flow payload_bytes"
            ),
            rate_bps=_optional_number(data.get("rate_bps"), "flow rate_bps"),
            start_s=_number(data.get("start_s", 0.0), "flow start_s"),
            timestamped=bool(data.get("timestamped", False)),
            mean_on_s=_number(data.get("mean_on_s", 0.5), "flow mean_on_s"),
            mean_off_s=_number(data.get("mean_off_s", 0.5), "flow mean_off_s"),
            total_bytes=None if total is None else _integer(total, "total_bytes"),
        )


@dataclass(frozen=True)
class TrafficSpec:
    """The workload: an ordered tuple of flows (order is wiring order)."""

    flows: tuple[FlowSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "flows", tuple(self.flows))

    def to_dict(self) -> dict[str, Any]:
        return {"flows": [flow.to_dict() for flow in self.flows]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        _check_keys(data, cls, "traffic")
        return cls(
            flows=tuple(FlowSpec.from_dict(flow) for flow in data.get("flows", ()))
        )


@dataclass(frozen=True)
class FaultSpec:
    """Serialisable form of one :mod:`repro.faults` impairment.

    Unlike the live fault models, a spec carries only JSON primitives:
    a node-crash restart is expressed as ``restart_flows`` (indices into
    the scenario's flow list whose *source* application is recreated on
    reboot) instead of an ``on_reboot`` callback.
    """

    kind: str
    start_s: float
    duration_s: float | None = None
    # link-fade / link-blackout
    node_a: int = 0
    node_b: int = 1
    extra_loss_db: float | None = None
    bidirectional: bool = True
    # interference
    nodes: tuple[int, ...] | None = None
    noise_rise_db: float = 30.0
    # node-crash / clock-jitter
    node: int = 0
    restart_flows: tuple[int, ...] = ()
    sigma_ns: float = 2000.0

    def __post_init__(self) -> None:
        _freeze_types(
            self,
            ("start_s", "duration_s", "extra_loss_db", "noise_rise_db",
             "sigma_ns"),
            ("bidirectional",),
        )
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; accepted: {list(FAULT_KINDS)}"
            )
        if self.nodes is not None:
            object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "restart_flows", tuple(self.restart_flows))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "node_a": self.node_a,
            "node_b": self.node_b,
            "extra_loss_db": self.extra_loss_db,
            "bidirectional": self.bidirectional,
            "nodes": list(self.nodes) if self.nodes is not None else None,
            "noise_rise_db": self.noise_rise_db,
            "node": self.node,
            "restart_flows": list(self.restart_flows),
            "sigma_ns": self.sigma_ns,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        _check_keys(data, cls, "fault")
        nodes = data.get("nodes")
        return cls(
            kind=str(data["kind"]),
            start_s=_number(data["start_s"], "fault start_s"),
            duration_s=_optional_number(data.get("duration_s"), "fault duration_s"),
            node_a=_integer(data.get("node_a", 0), "fault node_a"),
            node_b=_integer(data.get("node_b", 1), "fault node_b"),
            extra_loss_db=_optional_number(
                data.get("extra_loss_db"), "fault extra_loss_db"
            ),
            bidirectional=bool(data.get("bidirectional", True)),
            nodes=None if nodes is None else tuple(int(n) for n in nodes),
            noise_rise_db=_number(data.get("noise_rise_db", 30.0), "noise_rise_db"),
            node=_integer(data.get("node", 0), "fault node"),
            restart_flows=tuple(int(i) for i in data.get("restart_flows", ())),
            sigma_ns=_number(data.get("sigma_ns", 2000.0), "fault sigma_ns"),
        )

    def to_fault(self, flows: Sequence[Any] | None = None) -> Any:
        """Instantiate the live :class:`repro.faults.models.Fault`.

        ``flows`` are the scenario's flow handles (needed only for
        ``node-crash`` faults with ``restart_flows``).
        """
        from repro.faults.models import (
            BLACKOUT_LOSS_DB,
            ClockJitter,
            InterferenceBurst,
            LinkFade,
            NodeCrash,
        )

        if self.kind in ("link-fade", "link-blackout"):
            extra = self.extra_loss_db
            if extra is None or self.kind == "link-blackout":
                extra = BLACKOUT_LOSS_DB
            return LinkFade(
                start_s=self.start_s,
                duration_s=self.duration_s,
                node_a=self.node_a,
                node_b=self.node_b,
                extra_loss_db=extra,
                bidirectional=self.bidirectional,
            )
        if self.kind == "interference":
            return InterferenceBurst(
                start_s=self.start_s,
                duration_s=self.duration_s,
                nodes=self.nodes,
                noise_rise_db=self.noise_rise_db,
            )
        if self.kind == "clock-jitter":
            return ClockJitter(
                start_s=self.start_s,
                duration_s=self.duration_s,
                node=self.node,
                sigma_ns=self.sigma_ns,
            )
        # node-crash
        on_reboot = None
        if self.restart_flows:
            if flows is None:
                raise FaultError(
                    "node-crash with restart_flows needs the scenario's "
                    "flow handles; build the fault via repro.scenario.build"
                )
            try:
                handles = [flows[index] for index in self.restart_flows]
            except IndexError as error:
                raise FaultError(
                    f"restart_flows {list(self.restart_flows)} out of range "
                    f"for {len(flows)} flows"
                ) from error

            def on_reboot(_node: Any) -> None:
                for handle in handles:
                    handle.restart_source()

        return NodeCrash(
            start_s=self.start_s,
            duration_s=self.duration_s,
            node=self.node,
            on_reboot=on_reboot,
        )

    def max_node_index(self) -> int:
        """Largest station index the fault touches (for early validation)."""
        if self.kind in ("link-fade", "link-blackout"):
            return max(self.node_a, self.node_b)
        if self.kind == "interference":
            return max(self.nodes) if self.nodes else 0
        return self.node


@dataclass(frozen=True)
class ObservabilitySpec:
    """What the flight recorder should do for this scenario.

    Everything defaults to off: an unobserved run pays one attribute
    read per instrumented hook point and nothing else.  ``audit`` turns
    on the packet-conservation ledger and the online invariant auditors
    (strict: violations raise :class:`~repro.errors.AuditError`);
    ``trace_digest`` streams a SHA-256 over the canonical encoding of
    the event stream; the two paths dump JSONL artefacts.
    """

    audit: bool = False
    trace_digest: bool = False
    trace_jsonl: str | None = None
    ledger_jsonl: str | None = None

    def __post_init__(self) -> None:
        _freeze_types(self, (), ("audit", "trace_digest"))
        for name in ("trace_jsonl", "ledger_jsonl"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise ConfigurationError(
                    f"observability {name} must be a path string or null, "
                    f"got {value!r}"
                )

    @property
    def enabled(self) -> bool:
        """True when any recorder feature is requested."""
        return bool(
            self.audit
            or self.trace_digest
            or self.trace_jsonl
            or self.ledger_jsonl
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "audit": self.audit,
            "trace_digest": self.trace_digest,
            "trace_jsonl": self.trace_jsonl,
            "ledger_jsonl": self.ledger_jsonl,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ObservabilitySpec":
        _check_keys(data, cls, "observability")
        return cls(
            audit=bool(data.get("audit", False)),
            trace_digest=bool(data.get("trace_digest", False)),
            trace_jsonl=data.get("trace_jsonl"),
            ledger_jsonl=data.get("ledger_jsonl"),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, runnable scenario: everything but the code."""

    topology: TopologySpec
    stack: StackSpec = field(default_factory=StackSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    faults: tuple[FaultSpec, ...] = ()
    seed: int = 1
    duration_s: float = 10.0
    warmup_s: float = 0.0
    name: str = "scenario"
    observability: ObservabilitySpec = field(default_factory=ObservabilitySpec)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        import math

        if (
            not isinstance(self.duration_s, (int, float))
            or isinstance(self.duration_s, bool)
            or math.isnan(self.duration_s)
            or math.isinf(self.duration_s)
            or self.duration_s <= 0
        ):
            raise ConfigurationError(
                f"duration_s must be a positive finite number of seconds, "
                f"got {self.duration_s!r}"
            )
        if (
            not isinstance(self.warmup_s, (int, float))
            or isinstance(self.warmup_s, bool)
            or math.isnan(self.warmup_s)
            or self.warmup_s < 0
        ):
            raise ConfigurationError(
                f"warmup_s must be >= 0 s, got {self.warmup_s!r}"
            )
        if self.warmup_s > self.duration_s:
            raise ConfigurationError(
                f"warmup_s ({self.warmup_s:g}) must not exceed "
                f"duration_s ({self.duration_s:g})"
            )
        stations = len(self.topology.positions_m)
        for index, flow in enumerate(self.traffic.flows):
            if max(flow.src, flow.dst) >= stations:
                raise ConfigurationError(
                    f"flow {index} ({flow.src}->{flow.dst}) references a "
                    f"station index beyond the {stations}-station topology"
                )
        for fault in self.faults:
            if fault.max_node_index() >= stations:
                raise ConfigurationError(
                    f"{fault.kind} fault references station index "
                    f"{fault.max_node_index()}, but the topology has "
                    f"{stations} stations"
                )
            for flow_index in fault.restart_flows:
                if flow_index >= len(self.traffic.flows):
                    raise ConfigurationError(
                        f"{fault.kind} fault restarts flow {flow_index}, but "
                        f"the scenario has {len(self.traffic.flows)} flows"
                    )
        # After validation (which rejects bools) so `duration_s=True`
        # still fails instead of silently becoming 1.0.
        _freeze_types(self, ("duration_s", "warmup_s"))

    def to_dict(self) -> dict[str, Any]:
        """Versioned, JSON-ready representation (all fields explicit)."""
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "topology": self.topology.to_dict(),
            "stack": self.stack.to_dict(),
            "traffic": self.traffic.to_dict(),
            "faults": [fault.to_dict() for fault in self.faults],
            "seed": self.seed,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "observability": self.observability.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported scenario spec version {version!r}; "
                f"this build reads version {SPEC_VERSION}"
            )
        _check_keys(data, cls, "scenario")
        if "topology" not in data:
            raise ConfigurationError("scenario spec needs a 'topology' section")
        return cls(
            topology=TopologySpec.from_dict(data["topology"]),
            stack=StackSpec.from_dict(data.get("stack", {})),
            traffic=TrafficSpec.from_dict(data.get("traffic", {})),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
            seed=_integer(data.get("seed", 1), "scenario seed"),
            duration_s=_number(data.get("duration_s", 10.0), "scenario duration_s"),
            warmup_s=_number(data.get("warmup_s", 0.0), "scenario warmup_s"),
            name=str(data.get("name", "scenario")),
            observability=ObservabilitySpec.from_dict(
                data.get("observability", {})
            ),
        )

    def canonical_json(self) -> str:
        """The canonical serialisation the sweep cache keys on."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_json(self, indent: int | None = 2) -> str:
        """Human-friendly JSON (write this to spec files)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid scenario JSON: {error}") from error
        if not isinstance(data, dict):
            raise ConfigurationError("scenario spec must be a JSON object")
        return cls.from_dict(data)


def _set_in(node: Any, segments: list[str], value: Any, full_key: str) -> None:
    """Set a dotted-path key inside a ``to_dict`` document, strictly."""
    segment = segments[0]
    if isinstance(node, list):
        try:
            index = int(segment)
        except ValueError:
            raise ConfigurationError(
                f"override {full_key!r}: {segment!r} is not a list index"
            ) from None
        if not 0 <= index < len(node):
            raise ConfigurationError(
                f"override {full_key!r}: index {index} out of range "
                f"(list has {len(node)} entries)"
            )
        if len(segments) == 1:
            node[index] = value
        else:
            _set_in(node[index], segments[1:], value, full_key)
        return
    if isinstance(node, dict):
        if segment not in node or segment == "version":
            accepted = sorted(key for key in node if key != "version")
            raise ConfigurationError(
                f"unknown override key {full_key!r} (no field {segment!r}); "
                f"accepted here: {accepted}"
            )
        if len(segments) == 1:
            node[segment] = value
        elif node[segment] is None:
            raise ConfigurationError(
                f"override {full_key!r}: {segment!r} is null; set the whole "
                f"object (e.g. --set {segment}='{{...}}') instead"
            )
        else:
            _set_in(node[segment], segments[1:], value, full_key)
        return
    raise ConfigurationError(
        f"override {full_key!r}: cannot descend into a "
        f"{type(node).__name__} at {segment!r}"
    )


def apply_overrides(
    spec: ScenarioSpec, overrides: Mapping[str, Any]
) -> ScenarioSpec:
    """A new spec with dotted-path overrides applied.

    Keys address the ``to_dict`` document (``"stack.rts_enabled"``,
    ``"traffic.flows.0.payload_bytes"``); unknown keys raise
    :class:`~repro.errors.ConfigurationError` listing what is accepted,
    and the updated document is fully re-validated.
    """
    document = spec.to_dict()
    for key, value in overrides.items():
        segments = [segment for segment in key.split(".") if segment]
        if not segments:
            raise ConfigurationError(f"empty override key {key!r}")
        _set_in(document, segments, value, key)
    return ScenarioSpec.from_dict(document)


@dataclass(frozen=True)
class SweepAxis:
    """One override axis of a sweep: a dotted key and its values."""

    key: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigurationError(f"sweep axis {self.key!r} has no values")

    def to_dict(self) -> dict[str, Any]:
        return {"key": self.key, "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepAxis":
        _check_keys(data, cls, "sweep axis")
        return cls(key=str(data["key"]), values=tuple(data["values"]))


@dataclass(frozen=True)
class SweepSpec:
    """A base scenario and the axes to sweep it over."""

    base: ScenarioSpec
    axes: tuple[SweepAxis, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))

    def expand(self) -> list[ScenarioSpec]:
        """Every scenario of the grid, first axis slowest (row-major)."""
        if not self.axes:
            return [self.base]
        grids = product(*(axis.values for axis in self.axes))
        return [
            apply_overrides(
                self.base,
                {axis.key: value for axis, value in zip(self.axes, combo)},
            )
            for combo in grids
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "base": self.base.to_dict(),
            "axes": [axis.to_dict() for axis in self.axes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        version = data.get("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ConfigurationError(
                f"unsupported sweep spec version {version!r}; "
                f"this build reads version {SPEC_VERSION}"
            )
        _check_keys(data, cls, "sweep")
        return cls(
            base=ScenarioSpec.from_dict(data["base"]),
            axes=tuple(SweepAxis.from_dict(a) for a in data.get("axes", ())),
        )
