"""Turn specs into running networks.

Two levels live here:

* :func:`build_network` — the low-level constructor taking live objects
  (a :class:`Rate`, a propagation model instance, ...).  This is the
  former ``repro.experiments.common.build_network``, moved intact.
* :func:`build` — the declarative entry point: a
  :class:`~repro.scenario.specs.ScenarioSpec` in, a fully wired
  :class:`~repro.scenario.network.ScenarioNetwork` out, with every flow
  sink/source application attached, mobility walking and the fault
  schedule installed.  Wiring order (flows in spec order, sink before
  source, then mobility, then faults) is part of the contract: event
  ties break by insertion sequence, so the order *is* the determinism.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.channel.medium import Medium
from repro.channel.propagation import (
    FreeSpacePathLoss,
    LogDistancePathLoss,
    PropagationModel,
    TwoRayGroundPathLoss,
)
from repro.channel.shadowing import ChannelModel
from repro.channel.weather import DayConditions, WeatherProcess
from repro.core.params import Dot11bConfig, Rate
from repro.errors import ConfigurationError
from repro.core.range_model import solve_range_m
from repro.mac.dcf import AckPolicy
from repro.mac.ratecontrol import ArfConfig
from repro.net.node import Node, NodeStackConfig
from repro.net.routing import ROUTING_POLICIES, build_shortest_path_tables
from repro.phy.radio import RadioParameters
from repro.phy.reception import ReceptionModel, SinrThresholdReception
from repro.scenario.network import FlowHandle, ScenarioNetwork
from repro.scenario.specs import (
    DEFAULT_FAST_SIGMA_DB,
    FlowSpec,
    ScenarioSpec,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngManager
from repro.sim.tracing import Tracer
from repro.transport.tcp.connection import TcpConfig


def build_network(
    positions_m: Sequence[float | tuple[float, float]],
    data_rate: Rate = Rate.MBPS_11,
    rts_enabled: bool = False,
    seed: int = 1,
    fast_sigma_db: float = DEFAULT_FAST_SIGMA_DB,
    static_sigma_db: float = 0.0,
    weather: DayConditions | None = None,
    radio: RadioParameters | None = None,
    propagation: PropagationModel | None = None,
    ack_policy: AckPolicy = AckPolicy.ALWAYS,
    dot11: Dot11bConfig | None = None,
    tcp_config: TcpConfig | None = None,
    reception: ReceptionModel | None = None,
    mac_queue_frames: int = 200,
    arf: ArfConfig | None = None,
    medium_mode: str | None = None,
    routing: str | None = None,
) -> ScenarioNetwork:
    """Construct the full stack for one scenario.

    ``positions_m`` entries are either an x-coordinate (stations on a
    line, like every topology in the paper) or an ``(x, y)`` pair.
    Addresses are assigned 1..N left to right, matching the paper's
    S1..S4 naming.

    ``medium_mode`` pins the reception-event path (``dense`` |
    ``spatial``; ``None`` follows ``REPRO_MEDIUM``).  ``routing``
    selects the per-node table policy: ``"shortest-path"`` builds
    hop-count BFS tables over the connectivity graph (link range solved
    from the radio's sensitivity at the configured data rate) and
    installs them strict, so unreachable destinations surface as typed
    ``no-route`` drops instead of frames aimed at out-of-range MACs.
    """
    sim = Simulator()
    rngs = RngManager(seed)
    tracer = Tracer()
    weather_process = None
    if weather is not None:
        weather_process = WeatherProcess(rngs.stream("weather"), weather)
    channel = ChannelModel(
        propagation=propagation,
        fast_sigma_db=fast_sigma_db,
        static_sigma_db=static_sigma_db,
        rng=rngs.stream("channel"),
        weather=weather_process,
    )
    medium = Medium(sim, channel, mode=medium_mode)
    stack = NodeStackConfig(
        data_rate=data_rate,
        dot11=dot11 if dot11 is not None else Dot11bConfig(),
        rts_enabled=rts_enabled,
        ack_policy=ack_policy,
        radio=radio if radio is not None else RadioParameters.calibrated(),
        tcp=tcp_config if tcp_config is not None else TcpConfig(),
        max_queue_frames=mac_queue_frames,
        arf=arf,
    )
    nodes = []
    for index, position in enumerate(positions_m):
        if isinstance(position, tuple):
            xy = (float(position[0]), float(position[1]))
        else:
            xy = (float(position), 0.0)
        nodes.append(
            Node(
                sim,
                medium,
                address=index + 1,
                position_m=xy,
                stack=stack,
                rng=rngs.stream(f"node{index + 1}"),
                tracer=tracer,
                reception=reception,
            )
        )
    if routing is not None and routing not in ROUTING_POLICIES:
        raise ConfigurationError(
            f"unknown routing policy {routing!r}; "
            f"accepted: {list(ROUTING_POLICIES)} (or None for direct)"
        )
    if routing == "shortest-path":
        node_radio = stack.radio
        max_range_m = solve_range_m(
            channel.mean_loss_db,
            node_radio.tx_power_dbm,
            node_radio.sensitivity_dbm[data_rate],
        )
        tables = build_shortest_path_tables(
            [node.position_m for node in nodes], max_range_m
        )
        for node in nodes:
            node.routing.install(tables[node.address])
    return ScenarioNetwork(sim=sim, medium=medium, nodes=nodes, tracer=tracer, rngs=rngs)


_PROPAGATION_FACTORIES = {
    "log-distance": LogDistancePathLoss.calibrated,
    "free-space": FreeSpacePathLoss,
    "two-ray": TwoRayGroundPathLoss,
}

_RADIO_FACTORIES = {
    "calibrated": RadioParameters.calibrated,
    "ns2": RadioParameters.ns2_default,
}


def _stack_dot11(spec: ScenarioSpec) -> Dot11bConfig | None:
    """A Dot11bConfig only when the spec overrides MAC parameters.

    Delegates to :meth:`StackSpec.dot11_config` — the one place that
    merges retry-limit and ``stack.mac`` contention overrides, shared
    with the analytic model so sim and prediction read identical
    constants.
    """
    return spec.stack.dot11_config()


def make_source(net: ScenarioNetwork, flow: FlowSpec, index: int) -> Any:
    """Start (or restart) the source application for one flow."""
    from repro.apps.bulk import BulkTcpSender
    from repro.apps.cbr import CbrSource
    from repro.apps.onoff import OnOffSource

    src_node = net.nodes[flow.src]
    dst_address = net.nodes[flow.dst].address
    if flow.kind == "cbr":
        return CbrSource(
            src_node,
            dst=dst_address,
            dst_port=flow.port,
            payload_bytes=flow.payload_bytes,
            rate_bps=flow.rate_bps,
            start_s=flow.start_s,
            timestamped=flow.timestamped,
        )
    if flow.kind == "onoff":
        return OnOffSource(
            src_node,
            dst=dst_address,
            dst_port=flow.port,
            payload_bytes=flow.payload_bytes,
            rate_bps=flow.rate_bps,
            mean_on_s=flow.mean_on_s,
            mean_off_s=flow.mean_off_s,
            rng=net.rngs.stream(f"flow{index}.onoff"),
        )
    # bulk-tcp: segments are MSS-sized (TcpConfig), not payload-sized.
    return BulkTcpSender(
        src_node,
        dst=dst_address,
        dst_port=flow.port,
        total_bytes=flow.total_bytes,
        start_s=flow.start_s,
    )


def _make_sink(net: ScenarioNetwork, flow: FlowSpec, warmup_s: float) -> Any:
    from repro.apps.bulk import BulkTcpReceiver
    from repro.apps.sink import UdpSink

    dst_node = net.nodes[flow.dst]
    if flow.kind == "bulk-tcp":
        return BulkTcpReceiver(dst_node, port=flow.port, warmup_s=warmup_s)
    return UdpSink(dst_node, port=flow.port, warmup_s=warmup_s)


def build(spec: ScenarioSpec) -> ScenarioNetwork:
    """Build and fully wire the network a :class:`ScenarioSpec` describes."""
    from repro.channel.mobility import walk_away
    from repro.faults.schedule import FaultSchedule

    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError(
            f"build() takes a ScenarioSpec, got {type(spec).__name__}; "
            "parse dicts with ScenarioSpec.from_dict first"
        )
    net = build_network(
        list(spec.topology.positions_m),
        data_rate=Rate.from_mbps(spec.stack.data_rate_mbps),
        rts_enabled=spec.stack.rts_enabled,
        seed=spec.seed,
        fast_sigma_db=spec.topology.fast_sigma_db,
        static_sigma_db=spec.topology.static_sigma_db,
        weather=(
            spec.topology.weather.to_conditions()
            if spec.topology.weather is not None
            else None
        ),
        radio=(
            _RADIO_FACTORIES[spec.stack.radio]()
            if spec.stack.radio is not None
            else None
        ),
        propagation=(
            _PROPAGATION_FACTORIES[spec.topology.propagation]()
            if spec.topology.propagation is not None
            else None
        ),
        ack_policy=AckPolicy(spec.stack.ack_policy),
        dot11=_stack_dot11(spec),
        mac_queue_frames=spec.stack.effective_queue_frames,
        arf=ArfConfig() if spec.stack.arf else None,
        reception=(
            SinrThresholdReception(kernel=spec.stack.kernel)
            if spec.stack.kernel is not None
            else None
        ),
        medium_mode=spec.topology.medium,
        routing=spec.stack.routing,
    )
    net.spec = spec
    # The recorder must attach before flows are wired: a CBR source with
    # start_s=0 offers its first packet during construction, and the
    # ledger has to see that SDU open.
    _attach_recorder(net, spec)
    handles = []
    for index, flow in enumerate(spec.traffic.flows):
        sink = _make_sink(net, flow, spec.warmup_s)
        handle = FlowHandle(spec=flow, index=index, net=net, sink=sink)
        handle.sources.append(make_source(net, flow, index))
        handles.append(handle)
    net.flows = tuple(handles)
    for mobility in spec.topology.mobility:
        walk_away(
            net.sim,
            net.nodes[mobility.node].phy,
            mobility.speed_m_s,
            update_interval_s=mobility.update_interval_s,
        )
    if spec.faults:
        net.fault_schedule = FaultSchedule.from_specs(spec.faults, flows=net.flows)
        net.fault_schedule.install(net)
    return net


def _attach_recorder(net: ScenarioNetwork, spec: ScenarioSpec) -> None:
    """Attach a flight recorder when the spec or the session asks for one.

    Imported locally: observability is an optional layer, and builds
    with it off must not pay the import.
    """
    from repro.obs.recorder import FlightRecorder
    from repro.obs.session import active_collector

    collector = active_collector()
    obs = spec.observability
    if collector is None and not obs.enabled:
        return
    recorder = FlightRecorder(
        net.sim,
        net.tracer,
        audit=obs.audit or collector is not None,
        strict=collector.strict if collector is not None else True,
        trace_digest=obs.trace_digest,
        trace_jsonl=obs.trace_jsonl,
        ledger_jsonl=obs.ledger_jsonl,
    ).attach()
    net.recorder = recorder
    if collector is not None:
        collector.register(recorder)
