"""The built artefact: a ready-to-run network plus its flow handles."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.channel.medium import Medium
from repro.errors import ConfigurationError
from repro.net.node import Node
from repro.sim.engine import Simulator
from repro.sim.rng import RngManager
from repro.sim.tracing import Tracer

if TYPE_CHECKING:
    from repro.faults.schedule import FaultSchedule
    from repro.obs.recorder import FlightRecorder
    from repro.scenario.specs import FlowSpec, ScenarioSpec


@dataclass
class FlowHandle:
    """One wired flow: the spec, the sink and the source application(s).

    The sink is a :class:`~repro.apps.sink.UdpSink` for datagram flows or
    a :class:`~repro.apps.bulk.BulkTcpReceiver` for ``bulk-tcp``;
    ``sources`` collects every source application started for the flow
    (restarts append).
    """

    spec: "FlowSpec"
    index: int
    net: "ScenarioNetwork"
    sink: Any
    sources: list[Any] = field(default_factory=list)

    @property
    def source(self) -> Any:
        """The most recently started source application."""
        return self.sources[-1]

    @property
    def label(self) -> str:
        """Paper-style session label, e.g. ``"1->2"``."""
        return f"{self.spec.src + 1}->{self.spec.dst + 1}"

    def throughput_bps(self, horizon_s: float, warmup_s: float | None = None) -> float:
        """Delegate to the sink's goodput accounting."""
        return float(self.sink.throughput_bps(horizon_s, warmup_s=warmup_s))

    def restart_source(self) -> Any:
        """Start a fresh source application for this flow (post-reboot)."""
        from repro.scenario.builder import make_source

        source = make_source(self.net, self.spec, self.index)
        self.sources.append(source)
        return source


@dataclass
class ScenarioNetwork:
    """A ready-to-run network: simulator, medium and full-stack nodes."""

    sim: Simulator
    medium: Medium
    nodes: list[Node]
    tracer: Tracer
    rngs: RngManager
    #: Populated when built from a spec via :func:`repro.scenario.build`.
    spec: "ScenarioSpec | None" = None
    flows: tuple[FlowHandle, ...] = ()
    fault_schedule: "FaultSchedule | None" = None
    #: Attached when the spec's observability section (or an active
    #: :class:`~repro.obs.session.AuditCollector`) asks for one.
    recorder: "FlightRecorder | None" = None

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def flow(self, index: int) -> FlowHandle:
        """The handle for flow ``index`` (spec wiring order)."""
        try:
            return self.flows[index]
        except IndexError:
            raise ConfigurationError(
                f"no flow {index}; this network has {len(self.flows)} flows"
            ) from None

    def run(self, duration_s: float) -> None:
        """Advance the simulation to ``duration_s``.

        Rejects non-positive, NaN or infinite horizons up front — a bad
        duration silently produced an empty (or never-ending) run before.
        """
        if (
            isinstance(duration_s, bool)
            or not isinstance(duration_s, (int, float))
            or math.isnan(duration_s)
            or math.isinf(duration_s)
            or duration_s <= 0
        ):
            raise ConfigurationError(
                f"run() needs a positive finite duration in seconds, "
                f"got {duration_s!r}"
            )
        self.sim.run(until_s=duration_s)

    def run_with_warmup(self, duration_s: float, warmup_s: float) -> float:
        """Run to ``duration_s`` and return the measurement window.

        The warmup convention every experiment shares: sinks discard the
        first ``warmup_s`` seconds, so rates divide by the returned
        ``duration_s - warmup_s`` window.
        """
        if (
            isinstance(warmup_s, bool)
            or not isinstance(warmup_s, (int, float))
            or math.isnan(warmup_s)
            or warmup_s < 0
        ):
            raise ConfigurationError(
                f"warmup must be >= 0 seconds, got {warmup_s!r}"
            )
        if warmup_s >= duration_s:
            raise ConfigurationError(
                f"warmup ({warmup_s!r} s) must be shorter than the run "
                f"duration ({duration_s!r} s)"
            )
        self.run(duration_s)
        return duration_s - warmup_s
