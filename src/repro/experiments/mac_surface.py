"""MAC parameter-response surfaces (ROADMAP item 4).

The source paper measures DCF at the fixed Table 1 constants; the
response of throughput/delay/fairness to the *parameters themselves*
(CWmin/CWmax, retry limit, slot and SIFS timing, queue depth) is where
the MAC-tuning literature lives ("Effects of MAC Parameters on IEEE
802.11 DCF", PAPERS.md).  This experiment sweeps each knob one at a
time around the 802.11b defaults, at several saturated-station counts,
through the declarative sweep engine — every point is a
:class:`~repro.scenario.specs.ScenarioSpec` with a
``stack.mac.<knob>`` override, so the sweep cache, the parallel pool
and the golden suite all see plain canonical spec JSON.

Geometry matters: the contenders sit on a ring, *equidistant* from the
sink at the centre.  On a line the nearer station's frame survives
simultaneous transmissions (physical capture — the SINR model decodes
the stronger frame), which silently halves the collision cost and
breaks the Bianchi comparison; on the ring simultaneous frames arrive
power-matched and both die, which is exactly the collision semantics
the analytic model (:mod:`repro.analysis.analytic`) assumes.  The
conformance harness (``tests/conformance/``) pins this agreement.

Reported per point:

* aggregate saturation throughput (sim) vs the closed-form prediction;
* mean one-way delay of delivered, timestamped packets;
* Jain's fairness index over per-flow delivered bits, computed from
  the flight recorder's packet-conservation ledger (the PR 5 per-flow
  accounting), not from the sinks — so fairness reflects what the MAC
  actually delivered end to end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.analysis.analytic import jain_index, predict_scenario
from repro.analysis.tables import render_table
from repro.errors import ExperimentError
from repro.obs.ledger import DELIVERED
from repro.parallel import SweepCache
from repro.scenario import (
    FlowSpec,
    MacParamsSpec,
    ObservabilitySpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    SweepAxis,
    SweepSpec,
    TopologySpec,
    TrafficSpec,
    run_scenarios,
)

_BASE_PORT = 5001

#: Ring radius: well inside the 11 Mbps range, far enough out that the
#: log-distance model is in its calibrated regime.
RING_RADIUS_M = 5.0

#: Saturated-contender counts of the default surface.
DEFAULT_STATIONS: tuple[int, ...] = (2, 5)

#: Application payload (bytes) — the paper's large-packet setting.
DEFAULT_PAYLOAD_BYTES = 1024

#: One-at-a-time axes: (label, dotted spec key, values).  Each sweeps
#: around the Table 1 default with the other knobs at their defaults.
SURFACE_AXES: tuple[tuple[str, str, tuple[Any, ...]], ...] = (
    ("cw_min", "stack.mac.cw_min_slots", (16, 32, 128)),
    ("cw_max", "stack.mac.cw_max_slots", (64, 1024)),
    ("retry", "stack.mac.short_retry_limit", (1, 7)),
    ("slot_us", "stack.mac.slot_time_us", (9.0, 20.0)),
    ("sifs_us", "stack.mac.sifs_us", (10.0, 16.0)),
    ("queue", "stack.mac.queue_frames", (5, 200)),
)


def ring_positions(stations: int, radius_m: float = RING_RADIUS_M) -> tuple:
    """Sink at the origin, ``stations`` contenders equidistant on a ring."""
    return ((0.0, 0.0),) + tuple(
        (
            radius_m * math.cos(2.0 * math.pi * k / stations),
            radius_m * math.sin(2.0 * math.pi * k / stations),
        )
        for k in range(stations)
    )


def saturation_spec(
    stations: int,
    duration_s: float = 1.0,
    warmup_s: float = 0.25,
    seed: int = 1,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
    rate_mbps: float = 11.0,
    mac: MacParamsSpec | None = None,
) -> ScenarioSpec:
    """``stations`` saturated CBR contenders around one sink.

    Every sender runs saturated, timestamped CBR to the sink on its own
    port; the recorder's audit ledger is on so the extractor can do
    per-flow conservation accounting.
    """
    flows = tuple(
        FlowSpec(
            kind="cbr",
            src=index,
            dst=0,
            port=_BASE_PORT + index,
            payload_bytes=payload_bytes,
            rate_bps=None,  # saturated: measure the channel, not the offer
            timestamped=True,
        )
        for index in range(1, stations + 1)
    )
    return ScenarioSpec(
        name="mac-surface",
        topology=TopologySpec(
            positions_m=ring_positions(stations), fast_sigma_db=0.0
        ),
        stack=StackSpec(
            data_rate_mbps=rate_mbps,
            mac=mac if mac is not None else MacParamsSpec(),
        ),
        traffic=TrafficSpec(flows=flows),
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
        observability=ObservabilitySpec(audit=True),
    )


def mac_surface_metrics(net: ScenarioNetwork) -> list[float]:
    """Extractor: ``[aggregate_bps, mean_delay_s, jain_index]``.

    Fairness comes from the audit ledger's per-flow delivered bytes
    (origin address x destination), so a flow the MAC starved to zero
    still contributes a zero share.
    """
    assert net.spec is not None
    assert net.recorder is not None, "mac-surface specs run with audit on"
    duration_s = net.spec.duration_s
    total_bps = sum(
        flow.sink.throughput_bps(duration_s) for flow in net.flows
    )
    samples = 0
    weighted_delay = 0.0
    for flow in net.flows:
        count = flow.sink.delays.count
        if count:
            samples += count
            weighted_delay += count * flow.sink.delays.mean_s
    mean_delay_s = weighted_delay / samples if samples else 0.0

    ledger = net.recorder.ledger
    delivered_bits: dict[tuple[int, int], int] = {}
    for entry in ledger.entries.values():
        if entry.state is DELIVERED:
            key = (entry.origin, entry.dst)
            delivered_bits[key] = (
                delivered_bits.get(key, 0) + entry.size_bytes * 8
            )
    shares = [
        float(
            delivered_bits.get(
                (
                    net.nodes[flow.spec.src].address,
                    net.nodes[flow.spec.dst].address,
                ),
                0,
            )
        )
        for flow in net.flows
    ]
    return [total_bps, mean_delay_s, jain_index(shares)]


_MAC_SURFACE_METRICS = "repro.experiments.mac_surface:mac_surface_metrics"


@dataclass(frozen=True)
class MacSurfacePoint:
    """One swept point of the response surface."""

    stations: int
    axis: str
    value: Any
    throughput_bps: float
    model_bps: float
    mean_delay_s: float
    jain: float

    @property
    def model_delta(self) -> float:
        """Relative sim-vs-model disagreement (signed)."""
        return self.throughput_bps / self.model_bps - 1.0


def surface_sweeps(
    stations: Sequence[int] = DEFAULT_STATIONS,
    duration_s: float = 1.0,
    warmup_s: float = 0.25,
    seed: int = 1,
    pins: Mapping[str, Any] | None = None,
) -> list[tuple[int, str, Any, ScenarioSpec]]:
    """The expanded surface: ``(stations, axis, value, spec)`` rows.

    ``pins`` maps an axis label (``cw_min``, ``retry``, ...) to a single
    value, collapsing that axis to one pinned point — the CLI's
    ``--set stack.mac.<knob>=<value>`` form.
    """
    pins = dict(pins or {})
    labels = {label for label, _, _ in SURFACE_AXES}
    unknown = sorted(set(pins) - labels)
    if unknown:
        raise ExperimentError(
            f"unknown mac-surface axis pin(s) {unknown}; "
            f"accepted: {sorted(labels)}"
        )
    rows: list[tuple[int, str, Any, ScenarioSpec]] = []
    for n in stations:
        base = saturation_spec(
            n, duration_s=duration_s, warmup_s=warmup_s, seed=seed
        )
        for label, key, values in SURFACE_AXES:
            axis_values = (pins[label],) if label in pins else values
            sweep = SweepSpec(base=base, axes=(SweepAxis(key, axis_values),))
            for value, spec in zip(axis_values, sweep.expand()):
                rows.append((n, label, value, spec))
    return rows


def run_mac_surface(
    stations: Sequence[int] = DEFAULT_STATIONS,
    duration_s: float = 1.0,
    warmup_s: float = 0.25,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
    pins: Mapping[str, Any] | None = None,
) -> list[MacSurfacePoint]:
    """Measure the full response surface; one sim per (n, axis, value)."""
    warmup_s = min(warmup_s, duration_s / 2)
    rows = surface_sweeps(
        stations, duration_s=duration_s, warmup_s=warmup_s, seed=seed,
        pins=pins,
    )
    values = run_scenarios(
        [spec for _, _, _, spec in rows],
        extract=_MAC_SURFACE_METRICS,
        jobs=jobs,
        cache=cache,
        policy=policy,
    )
    return [
        MacSurfacePoint(
            stations=n,
            axis=axis,
            value=value,
            throughput_bps=total_bps,
            model_bps=predict_scenario(spec).throughput_bps,
            mean_delay_s=mean_delay_s,
            jain=jain,
        )
        for (n, axis, value, spec), (total_bps, mean_delay_s, jain) in zip(
            rows, values
        )
    ]


def format_mac_surface(points: list[MacSurfacePoint]) -> str:
    """The response-surface table, one row per swept point."""
    return render_table(
        [
            "stations",
            "axis",
            "value",
            "sim (Mbps)",
            "model (Mbps)",
            "delta (%)",
            "delay (ms)",
            "Jain",
        ],
        [
            (
                point.stations,
                point.axis,
                point.value,
                point.throughput_bps / 1e6,
                point.model_bps / 1e6,
                point.model_delta * 100.0,
                point.mean_delay_s * 1e3,
                point.jain,
            )
            for point in points
        ],
        title=(
            "Extension - MAC parameter-response surfaces "
            "(11 Mbps, saturated UDP, ring topology)"
        ),
    )
