"""Replication driver: run an experiment across seeds, report CIs.

Single runs of a stochastic simulation are point samples; publishable
numbers need replications.  :func:`replicate` runs a seed-parametrised
metric function across independent seeds and summarises the results
with a Student-t confidence interval.

Replications are independent by construction, so ``jobs > 1`` fans the
seed list across a process pool via :func:`repro.parallel.pmap`; seeds
are derived from the base seed alone (never from execution order), so
the summary is bit-identical whatever the worker count.  The metric
must then be picklable — a module-level function, not a lambda or
closure.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.stats import Summary, summarize
from repro.errors import ExperimentError
from repro.parallel import SweepCache, pmap

MetricFn = Callable[[int], float]


def replicate(
    metric: MetricFn,
    replications: int = 5,
    base_seed: int = 1,
    confidence: float = 0.95,
    jobs: int = 1,
) -> Summary:
    """Run ``metric(seed)`` for ``replications`` independent seeds.

    Seeds are ``base_seed * 1000 + i`` so different base seeds give
    disjoint replication sets.
    """
    if replications < 1:
        raise ExperimentError("need at least one replication")
    values = pmap(metric, seeds_for(replications, base_seed), jobs=jobs)
    return summarize(values, confidence=confidence)


def replicate_many(
    metrics: dict[str, MetricFn],
    replications: int = 5,
    base_seed: int = 1,
    jobs: int = 1,
) -> dict[str, Summary]:
    """Replicate several named metrics with matched seeds."""
    return {
        name: replicate(metric, replications, base_seed, jobs=jobs)
        for name, metric in metrics.items()
    }


def seeds_for(replications: int, base_seed: int = 1) -> Sequence[int]:
    """The seed sequence :func:`replicate` would use (for custom loops)."""
    return [base_seed * 1000 + index for index in range(replications)]


def replicate_spec(
    spec: Any,
    extract: str,
    extract_params: Mapping[str, Any] | None = None,
    replications: int = 5,
    base_seed: int = 1,
    confidence: float = 0.95,
    jobs: int = 1,
    cache: SweepCache | None = None,
) -> Summary:
    """Replicate one :class:`~repro.scenario.ScenarioSpec` across seeds.

    The spec's own ``seed`` is ignored; each replication reruns the
    scenario with a seed from :func:`seeds_for` and applies the
    ``extract`` metric (a ``"pkg.mod:fn"`` path returning a number).
    Because replications are full scenario points, they land in the
    sweep cache like any other point.
    """
    from repro.scenario import ScenarioSpec, run_scenarios

    if not isinstance(spec, ScenarioSpec):
        raise ExperimentError(
            f"replicate_spec needs a ScenarioSpec, got {type(spec).__name__}"
        )
    if replications < 1:
        raise ExperimentError("need at least one replication")
    specs = [
        dataclasses.replace(spec, seed=seed)
        for seed in seeds_for(replications, base_seed)
    ]
    values = run_scenarios(
        specs, extract=extract, extract_params=extract_params, jobs=jobs,
        cache=cache,
    )
    return summarize([float(value) for value in values], confidence=confidence)
