"""Replication driver: run an experiment across seeds, report CIs.

Single runs of a stochastic simulation are point samples; publishable
numbers need replications.  :func:`replicate` runs a seed-parametrised
metric function across independent seeds and summarises the results
with a Student-t confidence interval.

Replications are independent by construction, so ``jobs > 1`` fans the
seed list across a process pool via :func:`repro.parallel.pmap`; seeds
are derived from the base seed alone (never from execution order), so
the summary is bit-identical whatever the worker count.  The metric
must then be picklable — a module-level function, not a lambda or
closure.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.analysis.stats import Summary, summarize
from repro.errors import ExperimentError
from repro.parallel import pmap

MetricFn = Callable[[int], float]


def replicate(
    metric: MetricFn,
    replications: int = 5,
    base_seed: int = 1,
    confidence: float = 0.95,
    jobs: int = 1,
) -> Summary:
    """Run ``metric(seed)`` for ``replications`` independent seeds.

    Seeds are ``base_seed * 1000 + i`` so different base seeds give
    disjoint replication sets.
    """
    if replications < 1:
        raise ExperimentError("need at least one replication")
    values = pmap(metric, seeds_for(replications, base_seed), jobs=jobs)
    return summarize(values, confidence=confidence)


def replicate_many(
    metrics: dict[str, MetricFn],
    replications: int = 5,
    base_seed: int = 1,
    jobs: int = 1,
) -> dict[str, Summary]:
    """Replicate several named metrics with matched seeds."""
    return {
        name: replicate(metric, replications, base_seed, jobs=jobs)
        for name, metric in metrics.items()
    }


def seeds_for(replications: int, base_seed: int = 1) -> Sequence[int]:
    """The seed sequence :func:`replicate` would use (for custom loops)."""
    return [base_seed * 1000 + index for index in range(replications)]
