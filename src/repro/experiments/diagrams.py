"""ASCII renderings of the paper's diagram figures (1, 5, 6, 8, 10).

The paper's remaining figures are diagrams rather than data: the
encapsulation stack (Figure 1) and the network topologies (Figures 5,
6, 8, 10).  Rendering them from the *actual configuration objects*
keeps the documentation honest — if a placement or header size changes,
the diagram follows.
"""

from __future__ import annotations

from repro.channel.placement import Placement
from repro.core.encapsulation import TransportProtocol, encapsulation_report
from repro.core.params import Dot11bConfig


def format_figure1(
    app_payload_bytes: int = 512,
    transport: TransportProtocol = TransportProtocol.UDP,
    config: Dot11bConfig | None = None,
) -> str:
    """Figure 1: the encapsulation overhead stack."""
    if config is None:
        config = Dot11bConfig()
    report = encapsulation_report(app_payload_bytes, transport)
    lines = [
        f"Figure 1 - encapsulation of m = {app_payload_bytes} B over "
        f"{transport.value.upper()}",
        "",
        f"{'layer':<12} {'header':>8} {'payload':>8} {'total':>8}",
    ]
    for row in report:
        lines.append(
            f"{row.layer:<12} {row.header_bytes:>7}B {row.payload_bytes:>7}B "
            f"{row.total_bytes:>7}B"
        )
    plcp = config.plcp
    lines.append(
        f"{'plcp':<12} {plcp.preamble_bits + plcp.header_bits:>6}b "
        f"{'':>8} {plcp.duration_us:>6.0f}us"
    )
    lines.append("")
    lines.append(
        "PLCP at 1 Mbps, MAC header at the basic rate, payload at the "
        "NIC rate."
    )
    return "\n".join(lines)


def format_scenario(
    placement: Placement,
    sessions: tuple[tuple[int, int], ...] = ((0, 1), (2, 3)),
    scale_m_per_char: float = 2.5,
) -> str:
    """An S1...S4 topology diagram with distances and session arrows."""
    xs = [x for x, _ in placement.positions]
    width = int(max(xs) / scale_m_per_char) + 1
    station_line = [" "] * (width + 4)
    for index, x in enumerate(xs):
        column = int(x / scale_m_per_char)
        label = f"S{index + 1}"
        for offset, char in enumerate(label):
            station_line[column + offset] = char
    distance_parts = []
    for left, right in zip(range(len(xs)), range(1, len(xs))):
        distance_parts.append(f"d({left + 1},{right + 1})={placement.distance(left, right):g}m")
    session_parts = [
        f"S{tx + 1} -> S{rx + 1}" for tx, rx in sessions
    ]
    return "\n".join(
        [
            f"Scenario '{placement.name}'",
            "".join(station_line).rstrip(),
            "  ".join(distance_parts),
            "sessions: " + ", ".join(session_parts),
        ]
    )
