"""Extension experiment ``link-lifetime``: range assumptions vs mobility.

Quantifies the paper's closing §3.2 remark: with the measured (short)
transmission ranges, a moving station breaks its links far sooner than
ns-2's 250 m folklore predicts, so routing protocols recalculate
proportionally more often.

A receiver walks straight away from a transmitter that streams CBR
probes; the link lifetime is the time until delivery stalls for good.
The analytic expectation is simply range / speed, so the ratio between
the ns-2 and calibrated lifetimes should approach 250 / range(rate).

The walking receiver is just ``topology.mobility`` in the scenario spec
(:func:`lifetime_spec`); the ns-2 comparison point swaps in the ``ns2``
radio preset and ``two-ray`` propagation — all data, no wiring.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.params import ALL_RATES, Rate
from repro.parallel import SweepCache
from repro.scenario import (
    FlowSpec,
    MobilitySpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    build,
    run_scenarios,
    scenario_point,
)

_PORT = 5001

#: Probe pacing for the walking-receiver stream.
_PROBE_INTERVAL_S = 0.02


@dataclass(frozen=True)
class LinkLifetime:
    """Observed lifetime of one walking-away link."""

    rate: Rate
    radio_preset: str
    speed_m_s: float
    lifetime_s: float

    @property
    def break_distance_m(self) -> float:
        """Distance covered before the link died (starts at 5 m)."""
        return 5.0 + self.speed_m_s * self.lifetime_s


def _usable_lifetime_s(
    rx_times_ns: list[int],
    offered_per_s: float,
    window_s: float = 1.0,
    usable_fraction: float = 0.5,
) -> float:
    """Last window in which delivery ran at >= half the offered rate.

    Using the last-ever packet would overstate the lifetime badly: under
    log-normal shadowing the occasional lucky frame lands far beyond the
    range.  A link a routing protocol would call "up" must still be
    *delivering*, hence the windowed definition.
    """
    if not rx_times_ns:
        return 0.0
    threshold = offered_per_s * window_s * usable_fraction
    counts: dict[int, int] = {}
    for time_ns in rx_times_ns:
        counts[int(time_ns / (window_s * 1e9))] = (
            counts.get(int(time_ns / (window_s * 1e9)), 0) + 1
        )
    usable_bins = [index for index, count in counts.items() if count >= threshold]
    if not usable_bins:
        return 0.0
    return (max(usable_bins) + 1) * window_s


def lifetime_spec(
    rate_mbps: float,
    speed_m_s: float,
    ns2_preset: bool,
    seed: int,
    horizon_s: float = 80.0,
) -> ScenarioSpec:
    """One walking-receiver link: CBR probes, mobility on the sink node."""
    return ScenarioSpec(
        name="link-lifetime",
        topology=TopologySpec.line(
            0.0,
            5.0,
            propagation="two-ray" if ns2_preset else None,
            mobility=(MobilitySpec(node=1, speed_m_s=speed_m_s),),
        ),
        stack=StackSpec(
            data_rate_mbps=rate_mbps, radio="ns2" if ns2_preset else None
        ),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(
                    kind="cbr",
                    src=0,
                    dst=1,
                    port=_PORT,
                    payload_bytes=512,
                    rate_bps=512 * 8 / _PROBE_INTERVAL_S,
                ),
            )
        ),
        seed=seed,
        duration_s=horizon_s,
    )


def usable_lifetime(net: ScenarioNetwork) -> float:
    """Extractor: windowed usable lifetime of flow 0, in seconds."""
    flow = net.flow(0)
    assert flow.spec.rate_bps is not None
    offered_per_s = flow.spec.rate_bps / (flow.spec.payload_bytes * 8)
    return _usable_lifetime_s(flow.sink.rx_times_ns, offered_per_s=offered_per_s)


_USABLE_LIFETIME = "repro.experiments.mobility:usable_lifetime"


def measure_link_lifetime(
    rate: Rate,
    speed_m_s: float = 10.0,
    ns2_preset: bool = False,
    horizon_s: float = 80.0,
    seed: int = 1,
) -> LinkLifetime:
    """Time until a walking receiver drops below usable delivery."""
    spec = lifetime_spec(
        rate.mbps, speed_m_s, ns2_preset, seed, horizon_s=horizon_s
    )
    net = build(spec)
    net.run(spec.duration_s)
    return LinkLifetime(
        rate=rate,
        radio_preset="ns-2" if ns2_preset else "calibrated",
        speed_m_s=speed_m_s,
        lifetime_s=usable_lifetime(net),
    )


def lifetime_point(
    rate_mbps: float, speed_m_s: float, ns2_preset: bool, seed: int
) -> float:
    """Sweep-engine point: one link lifetime in seconds."""
    spec = lifetime_spec(rate_mbps, speed_m_s, ns2_preset, seed)
    return float(scenario_point(spec.to_dict(), extract=_USABLE_LIFETIME))


def run_link_lifetimes(
    speed_m_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[LinkLifetime]:
    """Calibrated vs ns-2 lifetimes at every rate."""
    grid = [
        (rate, ns2_preset)
        for rate in reversed(ALL_RATES)
        for ns2_preset in (False, True)
    ]
    specs = [
        lifetime_spec(rate.mbps, speed_m_s, ns2_preset, seed)
        for rate, ns2_preset in grid
    ]
    lifetimes = run_scenarios(
        specs, extract=_USABLE_LIFETIME, jobs=jobs, cache=cache, policy=policy
    )
    return [
        LinkLifetime(
            rate=rate,
            radio_preset="ns-2" if ns2_preset else "calibrated",
            speed_m_s=speed_m_s,
            lifetime_s=lifetime_s,
        )
        for (rate, ns2_preset), lifetime_s in zip(grid, lifetimes)
    ]


def format_link_lifetimes(results: list[LinkLifetime]) -> str:
    """Lifetime table with the ns-2 / calibrated ratio per rate."""
    by_rate: dict[Rate, dict[str, LinkLifetime]] = {}
    for result in results:
        by_rate.setdefault(result.rate, {})[result.radio_preset] = result
    rows = []
    for rate, presets in by_rate.items():
        calibrated = presets["calibrated"]
        ns2 = presets["ns-2"]
        rows.append(
            (
                str(rate),
                round(calibrated.lifetime_s, 1),
                round(calibrated.break_distance_m, 1),
                round(ns2.lifetime_s, 1),
                round(ns2.break_distance_m, 1),
                round(ns2.lifetime_s / max(calibrated.lifetime_s, 0.01), 2),
            )
        )
    return render_table(
        [
            "rate",
            "calibrated life (s)",
            "break at (m)",
            "ns-2 life (s)",
            "break at (m)",
            "ns-2/calibrated",
        ],
        rows,
        title=(
            "Extension - link lifetime of a receiver walking away at "
            f"{results[0].speed_m_s:g} m/s"
        ),
    )
