"""Hardened experiment driver: timeouts, retries, graceful degradation.

``run_suite`` runs a set of registered experiments so that one failure
can never take down the batch:

* each attempt runs under an optional wall-clock **timeout** (enforced
  from a watchdog thread; an expired attempt is recorded as a
  :class:`~repro.errors.WatchdogTimeout`);
* a :class:`~repro.errors.SimulationError` — including watchdog
  timeouts — triggers a bounded **retry with a perturbed seed**, on the
  theory that kernel-level livelocks are usually seed-sensitive corner
  cases;
* any other exception (and exhausted retries) degrades to a structured
  :class:`ExperimentResult` failure record while the rest of the suite
  completes;
* the :class:`SuiteReport` renders both a human-readable summary and a
  machine-readable JSON document.
"""

from __future__ import annotations

import json
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import (
    ExperimentError,
    SimulationError,
    SweepInterrupted,
    WatchdogTimeout,
)
from repro.experiments.registry import EXPERIMENTS, Experiment
from repro.parallel.engine import backoff_delay_s

#: Default seed offset between retry attempts.  A large odd constant so
#: perturbed seeds never collide with a user's natural seed sweep.
DEFAULT_RETRY_SEED_STEP = 100_003


@dataclass(frozen=True)
class RunnerConfig:
    """Robustness policy for one suite run.

    The same object travels from the CLI through ``run_experiment``
    into every sweep an experiment makes (``policy=`` on
    :func:`repro.parallel.run_sweep`), so retry/timeout/backoff,
    failure policy and journaling are configured exactly once.
    """

    #: Wall-clock budget per attempt; ``None`` disables the timeout.
    timeout_s: float | None = None
    #: Extra attempts after a ``SimulationError`` (0 = never retry).
    max_retries: int = 1
    #: Seed offset added per retry attempt.
    retry_seed_step: int = DEFAULT_RETRY_SEED_STEP
    #: Base delay of the deterministic jittered exponential backoff
    #: slept before each retry attempt (0 retries immediately).
    backoff_base_s: float = 0.1
    #: Ceiling on one backoff delay.
    backoff_max_s: float = 2.0
    #: Sweep failure policy: ``"raise"`` aborts on the first point that
    #: exhausts its retries, ``"skip"`` substitutes ``None`` for failed
    #: points, ``"degrade"`` substitutes typed
    #: :class:`~repro.parallel.supervisor.PointFailure` records; the
    #: latter two complete the sweep and print a report.
    on_error: str = "raise"
    #: Path of the persistent per-point sweep journal (JSONL); ``None``
    #: disables journaling.
    journal_path: str | None = None
    #: Resume from ``journal_path`` + cache: points already recorded
    #: ``ok`` under the current code version are not re-executed.
    resume: bool = False


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment (success or failure)."""

    name: str
    status: str  # "ok" | "failed" | "timeout"
    output: str | None = None
    error: str | None = None
    error_type: str | None = None
    attempts: int = 1
    seeds: list[int] = field(default_factory=list)
    elapsed_s: float = 0.0
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        """True for a clean run."""
        return self.status == "ok"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (output text included only on success)."""
        return {
            "name": self.name,
            "status": self.status,
            "output": self.output,
            "error": self.error,
            "error_type": self.error_type,
            "attempts": self.attempts,
            "seeds": self.seeds,
            "elapsed_s": round(self.elapsed_s, 3),
            "traceback": self.traceback,
        }


@dataclass
class SuiteReport:
    """Everything a batch run produced."""

    results: list[ExperimentResult]
    elapsed_s: float
    config: RunnerConfig

    @property
    def succeeded(self) -> list[ExperimentResult]:
        """Results that ran clean."""
        return [result for result in self.results if result.ok]

    @property
    def failed(self) -> list[ExperimentResult]:
        """Results that degraded to failure records."""
        return [result for result in self.results if not result.ok]

    @property
    def all_ok(self) -> bool:
        """True when every experiment succeeded."""
        return not self.failed

    def to_json(self) -> str:
        """Machine-readable report."""
        return json.dumps(
            {
                "elapsed_s": round(self.elapsed_s, 3),
                "total": len(self.results),
                "succeeded": len(self.succeeded),
                "failed": len(self.failed),
                "timeout_s": self.config.timeout_s,
                "max_retries": self.config.max_retries,
                "on_error": self.config.on_error,
                "journal": self.config.journal_path,
                "results": [result.to_dict() for result in self.results],
            },
            indent=2,
        )

    def format_summary(self) -> str:
        """Human-readable one-line-per-experiment summary."""
        lines = [
            f"suite: {len(self.succeeded)}/{len(self.results)} experiments "
            f"ok in {self.elapsed_s:.1f}s wall clock"
        ]
        for result in self.results:
            if result.ok:
                detail = f"ok in {result.elapsed_s:.1f}s"
            else:
                detail = f"{result.status}: {result.error}"
            retries = (
                f" ({result.attempts} attempts)" if result.attempts > 1 else ""
            )
            lines.append(f"  {result.name:16} {detail}{retries}")
        return "\n".join(lines)


class _Attempt:
    """One experiment attempt, optionally bounded by a wall-clock budget.

    The attempt runs on a daemon worker thread only when a timeout is
    requested; Python offers no portable way to kill the worker, so a
    timed-out attempt is *abandoned* (it keeps burning CPU until it
    finishes or the process exits) and reported as a timeout.  Pair the
    runner timeout with an engine :class:`~repro.sim.engine.Watchdog`
    budget when the leak matters.
    """

    def __init__(self, fn: Callable[[], str]):
        self._fn = fn
        self._output: str | None = None
        self._error: BaseException | None = None

    def _target(self) -> None:
        try:
            self._output = self._fn()
        except BaseException as error:  # noqa: BLE001 - re-raised on the caller
            self._error = error

    def run(self, timeout_s: float | None) -> str:
        if timeout_s is None:
            self._target()
        else:
            worker = threading.Thread(target=self._target, daemon=True)
            worker.start()
            worker.join(timeout_s)
            if worker.is_alive():
                raise WatchdogTimeout(
                    f"experiment exceeded its {timeout_s:g}s wall-clock budget"
                )
        if self._error is not None:
            raise self._error
        if self._output is None:
            raise ExperimentError("experiment returned no output")
        return self._output


def run_experiment(
    name: str,
    seed: int = 1,
    duration_s: float = 10.0,
    probes: int = 200,
    config: RunnerConfig | None = None,
    experiments: Mapping[str, Experiment] | None = None,
    jobs: int = 1,
    cache=None,
    overrides: Mapping[str, Any] | None = None,
) -> ExperimentResult:
    """Run one experiment under the robustness policy.

    Never raises for experiment failures: lookup errors, crashes,
    timeouts and exhausted retries all come back as failure records.

    ``jobs``/``cache`` flow into sweep-based experiments, which fan
    their independent points across a process pool and a
    content-addressed result cache (:mod:`repro.parallel`).  The
    ``config`` policy travels with them, so per-point timeout/retry
    applies inside pool workers too.

    ``overrides`` are user-supplied experiment parameters (the CLI's
    ``--set key=value``); an override the experiment does not declare
    produces a failure record listing the accepted keys.
    """
    if config is None:
        config = RunnerConfig()
    registry = experiments if experiments is not None else EXPERIMENTS
    started = time.monotonic()
    result = ExperimentResult(name=name, status="failed")
    experiment = registry.get(name)
    if experiment is None:
        result.error = f"unknown experiment {name!r}; valid: {sorted(registry)}"
        result.error_type = "ExperimentError"
        result.attempts = 0
        return result

    for attempt in range(config.max_retries + 1):
        if attempt:
            # Deterministic jittered exponential backoff: derived from
            # the attempt index and experiment name, never a live RNG,
            # so a re-run reproduces the same retry schedule.
            delay = backoff_delay_s(
                attempt,
                config.backoff_base_s,
                config.backoff_max_s,
                token=name,
            )
            if delay > 0.0:
                time.sleep(delay)
        attempt_seed = seed + attempt * config.retry_seed_step
        result.attempts = attempt + 1
        result.seeds.append(attempt_seed)
        try:
            result.output = _Attempt(
                lambda: experiment.invoke(
                    overrides,
                    seed=attempt_seed,
                    duration_s=duration_s,
                    probes=probes,
                    jobs=jobs,
                    cache=cache,
                    policy=config,
                )
            ).run(config.timeout_s)
            result.status = "ok"
            result.error = None
            result.error_type = None
            break
        except SweepInterrupted:
            # A graceful SIGINT/SIGTERM shutdown is not a failure to
            # degrade or retry — it propagates so the CLI can exit with
            # the resumable state (journal + cache already flushed).
            raise
        except SimulationError as error:
            # Kernel-level failure (watchdog, scheduling, MAC invariant):
            # eligible for a reseeded retry.
            result.status = (
                "timeout" if isinstance(error, WatchdogTimeout) else "failed"
            )
            result.error = str(error)
            result.error_type = type(error).__name__
        except Exception as error:  # noqa: BLE001 - isolation boundary
            # Anything else is deterministic; retrying cannot help.
            result.status = "failed"
            result.error = str(error) or type(error).__name__
            result.error_type = type(error).__name__
            result.traceback = traceback.format_exc()
            break
    result.elapsed_s = time.monotonic() - started
    return result


def run_suite(
    names: Sequence[str],
    seed: int = 1,
    duration_s: float = 10.0,
    probes: int = 200,
    config: RunnerConfig | None = None,
    experiments: Mapping[str, Experiment] | None = None,
    on_result: Callable[[ExperimentResult], None] | None = None,
    jobs: int = 1,
    cache=None,
    overrides: Mapping[str, Any] | None = None,
) -> SuiteReport:
    """Run a batch of experiments with per-experiment isolation.

    ``on_result`` (if given) observes each result as it completes —
    the CLI uses it to stream output while the suite continues.
    """
    if config is None:
        config = RunnerConfig()
    started = time.monotonic()
    results = []
    for name in names:
        result = run_experiment(
            name,
            seed=seed,
            duration_s=duration_s,
            probes=probes,
            config=config,
            experiments=experiments,
            jobs=jobs,
            cache=cache,
            overrides=overrides,
        )
        results.append(result)
        if on_result is not None:
            on_result(result)
    return SuiteReport(
        results=results,
        elapsed_s=time.monotonic() - started,
        config=config,
    )
