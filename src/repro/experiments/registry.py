"""Experiment registry: name -> runner producing printable output.

Every shim declares its tunable parameters explicitly — there is no
``**kwargs`` sink silently eating a misspelt ``--set`` key.  The runner
goes through :meth:`Experiment.invoke`, which

* filters the harness-level keywords (``seed``, ``jobs``, ``cache``,
  ``policy``, ...) down to what the shim actually accepts, and
* rejects *user* overrides naming unknown parameters with an
  :class:`~repro.errors.ExperimentError` that lists the accepted keys.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ExperimentError
from repro.experiments.four_nodes import (
    format_four_node,
    run_figure7,
    run_figure9,
    run_figure11,
    run_figure12,
)
from repro.experiments.ranges import (
    format_loss_curves,
    format_table3,
    run_figure3,
    run_figure4,
    run_table3,
)
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.two_nodes import format_figure2, run_figure2
from repro.experiments.delay import format_delay_sweep, run_delay_sweep
from repro.experiments.mobility import format_link_lifetimes, run_link_lifetimes
from repro.experiments.multihop import (
    format_density_sweep,
    format_multihop_sweep,
    run_density_sweep,
    run_multihop_sweep,
)
from repro.experiments.ratecontrol import format_arf_sweep, run_arf_sweep


@dataclass(frozen=True)
class Experiment:
    """A runnable, printable experiment."""

    name: str
    description: str
    run: Callable[..., str]
    #: Dotted ``--set`` aliases for shim parameters that address nested
    #: scenario-spec fields: ``{"stack.mac.cw_min_slots": "cw_min"}``
    #: lets the CLI use the same dotted path the spec document and the
    #: sweep axes use, and the accepted-keys error lists both forms.
    spec_params: Mapping[str, str] = field(default_factory=dict)

    def accepted_params(self) -> tuple[str, ...]:
        """Names of the keyword parameters the shim accepts."""
        signature = inspect.signature(self.run)
        return tuple(
            parameter.name
            for parameter in signature.parameters.values()
            if parameter.kind
            in (parameter.POSITIONAL_OR_KEYWORD, parameter.KEYWORD_ONLY)
        )

    def _accepts_anything(self) -> bool:
        signature = inspect.signature(self.run)
        return any(
            parameter.kind is parameter.VAR_KEYWORD
            for parameter in signature.parameters.values()
        )

    def invoke(
        self,
        overrides: Mapping[str, Any] | None = None,
        **harness: Any,
    ) -> str:
        """Run the experiment with harness keywords and user overrides.

        ``harness`` keywords (seed, duration_s, probes, jobs, cache,
        policy) are a standard set the runner always supplies; ones the
        shim does not declare are dropped.  ``overrides`` come from the
        user (``--set key=value``) and must all be declared — either as
        a shim parameter or as a dotted ``spec_params`` alias — or an
        :class:`ExperimentError` is raised listing every accepted key
        (shim parameters and dotted ``--set`` paths, sorted).
        """
        accepted = self.accepted_params()
        permissive = self._accepts_anything()
        call = {
            key: value
            for key, value in harness.items()
            if permissive or key in accepted
        }
        if overrides:
            translated = {
                self.spec_params.get(key, key): value
                for key, value in overrides.items()
            }
            unknown = sorted(
                key
                for key in overrides
                if not permissive
                and key not in accepted
                and key not in self.spec_params
            )
            if unknown:
                accepted_keys = sorted({*accepted, *self.spec_params})
                raise ExperimentError(
                    f"unknown parameter(s) {', '.join(unknown)} for "
                    f"experiment {self.name!r}; accepted: "
                    f"{', '.join(accepted_keys) or '(none)'}"
                )
            call.update(translated)
        return self.run(**call)


def _table2(jobs: int = 1, cache=None, policy=None) -> str:
    return format_table2(run_table2(jobs=jobs, cache=cache, policy=policy))


def _figure2(
    duration_s: float = 3.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_figure2(
        run_figure2(
            duration_s=duration_s, seed=seed, jobs=jobs, cache=cache,
            policy=policy,
        )
    )


def _figure3(
    probes: int = 200, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_loss_curves(
        run_figure3(probes=probes, seed=seed, jobs=jobs, cache=cache, policy=policy),
        "Figure 3 - loss vs distance",
    )


def _figure4(
    probes: int = 200, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_loss_curves(
        run_figure4(probes=probes, seed=seed, jobs=jobs, cache=cache, policy=policy),
        "Figure 4 - 1 Mbps transmission range on two days",
    )


def _table3(
    probes: int = 200, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_table3(
        run_table3(probes=probes, seed=seed, jobs=jobs, cache=cache, policy=policy)
    )


def _figure7(
    duration_s: float = 10.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_four_node(
        run_figure7(
            duration_s=duration_s, seed=seed, jobs=jobs, cache=cache,
            policy=policy,
        ),
        "Figure 7 - four stations, 11 Mbps, asymmetric (25/80/25 m)",
    )


def _figure9(
    duration_s: float = 10.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_four_node(
        run_figure9(
            duration_s=duration_s, seed=seed, jobs=jobs, cache=cache,
            policy=policy,
        ),
        "Figure 9 - four stations, 2 Mbps, asymmetric (25/90/25 m)",
    )


def _figure11(
    duration_s: float = 10.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_four_node(
        run_figure11(
            duration_s=duration_s, seed=seed, jobs=jobs, cache=cache,
            policy=policy,
        ),
        "Figure 11 - four stations, 11 Mbps, symmetric (25/60/25 m)",
    )


def _figure12(
    duration_s: float = 10.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_four_node(
        run_figure12(
            duration_s=duration_s, seed=seed, jobs=jobs, cache=cache,
            policy=policy,
        ),
        "Figure 12 - four stations, 2 Mbps, symmetric (25/60/25 m)",
    )


def _arf(
    duration_s: float = 10.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_arf_sweep(
        run_arf_sweep(
            duration_s=min(duration_s, 4.0), seed=seed, jobs=jobs,
            cache=cache, policy=policy,
        )
    )


def _delay(
    duration_s: float = 10.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    from repro.core.params import Rate

    return format_delay_sweep(
        run_delay_sweep(
            duration_s=min(duration_s, 5.0), seed=seed, jobs=jobs,
            cache=cache, policy=policy,
        ),
        Rate.MBPS_11,
    )


def _multihop(
    duration_s: float = 5.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_multihop_sweep(
        run_multihop_sweep(
            duration_s=min(duration_s, 5.0), seed=seed, jobs=jobs,
            cache=cache, policy=policy,
        )
    )


def _density(
    duration_s: float = 3.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
) -> str:
    return format_density_sweep(
        run_density_sweep(
            duration_s=min(duration_s, 3.0), seed=seed, jobs=jobs,
            cache=cache, policy=policy,
        )
    )


def _mac_surface(
    duration_s: float = 1.0, seed: int = 1, jobs: int = 1, cache=None,
    policy=None,
    cw_min: int | None = None,
    cw_max: int | None = None,
    retry: int | None = None,
    slot_us: float | None = None,
    sifs_us: float | None = None,
    queue: int | None = None,
) -> str:
    from repro.experiments.mac_surface import (
        format_mac_surface,
        run_mac_surface,
    )

    pins = {
        label: value
        for label, value in (
            ("cw_min", cw_min), ("cw_max", cw_max), ("retry", retry),
            ("slot_us", slot_us), ("sifs_us", sifs_us), ("queue", queue),
        )
        if value is not None
    }
    return format_mac_surface(
        run_mac_surface(
            duration_s=min(duration_s, 2.0), seed=seed, jobs=jobs,
            cache=cache, policy=policy, pins=pins or None,
        )
    )


#: Dotted ``--set`` aliases for the mac-surface knobs: the same paths
#: the spec document and the sweep axes use.
_MAC_SURFACE_SPEC_PARAMS: dict[str, str] = {
    "stack.mac.cw_min_slots": "cw_min",
    "stack.mac.cw_max_slots": "cw_max",
    "stack.mac.short_retry_limit": "retry",
    "stack.mac.slot_time_us": "slot_us",
    "stack.mac.sifs_us": "sifs_us",
    "stack.mac.queue_frames": "queue",
}


def _link_lifetime(
    seed: int = 1, jobs: int = 1, cache=None, policy=None
) -> str:
    return format_link_lifetimes(
        run_link_lifetimes(seed=seed, jobs=jobs, cache=cache, policy=policy)
    )


def _fault_blackout(duration_s: float = 10.0, seed: int = 1) -> str:
    from repro.experiments.fault_resilience import (
        format_link_blackout,
        run_link_blackout,
    )

    # A 5 s outage needs clean channel either side of it.
    return format_link_blackout(
        run_link_blackout(duration_s=max(duration_s, 15.0), seed=seed)
    )


def _fault_crash(duration_s: float = 10.0, seed: int = 1) -> str:
    from repro.experiments.fault_resilience import (
        format_node_crash,
        run_node_crash,
    )

    return format_node_crash(
        run_node_crash(duration_s=max(duration_s, 15.0), seed=seed)
    )


def _figure1() -> str:
    from repro.experiments.diagrams import format_figure1

    return format_figure1(512)


def _scenarios() -> str:
    from repro.channel.placement import (
        figure6_placement,
        figure8_placement,
        figure10_placement,
    )
    from repro.experiments.diagrams import format_scenario

    sections = [
        format_scenario(figure6_placement()),
        format_scenario(figure8_placement()),
        format_scenario(figure10_placement(), sessions=((0, 1), (3, 2))),
    ]
    return "\n\n".join(sections)


EXPERIMENTS: dict[str, Experiment] = {
    experiment.name: experiment
    for experiment in (
        Experiment("table2", "Max throughput model vs the paper's Table 2", _table2),
        Experiment("figure2", "Ideal vs measured TCP/UDP throughput", _figure2),
        Experiment("figure3", "Packet loss vs distance per rate", _figure3),
        Experiment("figure4", "1 Mbps range on two different days", _figure4),
        Experiment("table3", "Transmission range estimates", _table3),
        Experiment("figure7", "Four stations, 11 Mbps, asymmetric", _figure7),
        Experiment("figure9", "Four stations, 2 Mbps, asymmetric", _figure9),
        Experiment("figure11", "Four stations, 11 Mbps, symmetric", _figure11),
        Experiment("figure12", "Four stations, 2 Mbps, symmetric", _figure12),
        Experiment("figure1", "Encapsulation overhead diagram", _figure1),
        Experiment("scenarios", "Topology diagrams (Figures 5/6/8/10)", _scenarios),
        Experiment("arf", "Extension: ARF rate switching vs fixed rates", _arf),
        Experiment("delay", "Extension: one-way delay vs offered load", _delay),
        Experiment(
            "multihop",
            "Extension: chain throughput vs hop count (shortest-path routing)",
            _multihop,
        ),
        Experiment(
            "density",
            "Extension: per-node throughput vs neighbour density at N up to 250",
            _density,
        ),
        Experiment(
            "mac-surface",
            "Extension: MAC parameter-response surfaces vs the DCF model",
            _mac_surface,
            spec_params=_MAC_SURFACE_SPEC_PARAMS,
        ),
        Experiment(
            "link-lifetime",
            "Extension: mobile link lifetime, calibrated vs ns-2 ranges",
            _link_lifetime,
        ),
        Experiment(
            "fault-blackout",
            "Resilience: UDP through an injected 5 s link blackout",
            _fault_blackout,
        ),
        Experiment(
            "fault-crash",
            "Resilience: TCP recovery across a sender crash/reboot",
            _fault_crash,
        ),
    )
}


def get_experiment(name: str) -> Experiment:
    """Look up an experiment; raises with the list of valid names."""
    if name not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {name!r}; valid: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name]
