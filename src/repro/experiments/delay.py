"""Extension experiment ``delay``: queueing delay vs offered load.

The paper measures throughput only; the same instrumentation also
yields one-way delay.  This experiment sweeps the offered CBR load from
well below saturation to beyond it: the mean and tail delay stay near
the single-frame service time until the load approaches Equation (1)'s
capacity, then explode as the MAC queue fills — the textbook hockey
stick that makes the saturation point visible from the delay side.

Each offered load is one :class:`~repro.scenario.ScenarioSpec` whose
flow rate *is* the offered load (:func:`delay_spec` computes it from the
Equation-(1) capacity), so the cached result is keyed on the physical
workload, not on how this module derived it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.core.params import Rate
from repro.core.throughput_model import ThroughputModel
from repro.parallel import SweepCache
from repro.scenario import (
    FlowSpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    run_scenarios,
    scenario_point,
)

_PORT = 5001

#: Offered loads as fractions of the Equation-(1) capacity.
DEFAULT_LOAD_FRACTIONS: tuple[float, ...] = (0.2, 0.5, 0.8, 0.95, 1.1)


@dataclass(frozen=True)
class DelayPoint:
    """Delay statistics at one offered load."""

    load_fraction: float
    offered_bps: float
    delivered_bps: float
    mean_delay_s: float
    p99_delay_s: float


def delay_spec(
    rate_mbps: float,
    payload_bytes: int,
    load_fraction: float,
    duration_s: float,
    warmup_s: float,
    seed: int,
) -> ScenarioSpec:
    """One offered-load cell: timestamped CBR at a fraction of capacity."""
    rate = Rate.from_mbps(rate_mbps)
    capacity_bps = ThroughputModel().max_throughput_bps(payload_bytes, rate)
    return ScenarioSpec(
        name="delay-vs-load",
        topology=TopologySpec.line(0, 10, fast_sigma_db=0.0),
        stack=StackSpec(data_rate_mbps=rate_mbps),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(
                    kind="cbr",
                    src=0,
                    dst=1,
                    port=_PORT,
                    payload_bytes=payload_bytes,
                    rate_bps=load_fraction * capacity_bps,
                    timestamped=True,
                ),
            )
        ),
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
    )


def delay_metrics(net: ScenarioNetwork) -> list[float]:
    """Extractor: ``[offered, delivered, mean_delay, p99]`` for flow 0."""
    assert net.spec is not None
    flow = net.flow(0)
    assert flow.spec.rate_bps is not None
    return [
        flow.spec.rate_bps,
        flow.sink.throughput_bps(net.spec.duration_s),
        flow.sink.delays.mean_s,
        flow.sink.delays.percentile_s(0.99),
    ]


_DELAY_METRICS = "repro.experiments.delay:delay_metrics"


def delay_point(
    rate_mbps: float,
    payload_bytes: int,
    load_fraction: float,
    duration_s: float,
    warmup_s: float,
    seed: int,
) -> list[float]:
    """Sweep-engine point: ``[offered, delivered, mean_delay, p99]``
    for one offered load."""
    spec = delay_spec(
        rate_mbps, payload_bytes, load_fraction, duration_s, warmup_s, seed
    )
    return list(scenario_point(spec.to_dict(), extract=_DELAY_METRICS))


def run_delay_sweep(
    rate: Rate = Rate.MBPS_11,
    payload_bytes: int = 512,
    load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
    duration_s: float = 5.0,
    warmup_s: float = 1.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[DelayPoint]:
    """One delay measurement per offered load."""
    specs = [
        delay_spec(
            rate.mbps, payload_bytes, fraction, duration_s, warmup_s, seed
        )
        for fraction in load_fractions
    ]
    values = run_scenarios(
        specs, extract=_DELAY_METRICS, jobs=jobs, cache=cache, policy=policy
    )
    return [
        DelayPoint(
            load_fraction=fraction,
            offered_bps=offered_bps,
            delivered_bps=delivered_bps,
            mean_delay_s=mean_delay_s,
            p99_delay_s=p99_delay_s,
        )
        for fraction, (offered_bps, delivered_bps, mean_delay_s, p99_delay_s)
        in zip(load_fractions, values)
    ]


def format_delay_sweep(points: list[DelayPoint], rate: Rate) -> str:
    """Delay-vs-load table."""
    return render_table(
        [
            "load (xEq1)",
            "offered (Mbps)",
            "delivered (Mbps)",
            "mean delay (ms)",
            "p99 delay (ms)",
        ],
        [
            (
                point.load_fraction,
                point.offered_bps / 1e6,
                point.delivered_bps / 1e6,
                point.mean_delay_s * 1e3,
                point.p99_delay_s * 1e3,
            )
            for point in points
        ],
        title=f"Extension - one-way delay vs offered load at {rate}",
    )
