"""Experiments ``figure7``/``figure9``/``figure11``/``figure12``.

Two concurrent sessions on a four-station line (paper §3.3).  The
asymmetric placements put the second session's receiver S4 on the far
side, the symmetric placement reverses session 2 (S4 -> S3) so both
receivers sit in the middle.

The paper's observations the runner reproduces:

* 11 Mbps (Figures 6-7): the sessions interact even though d(S1, S3)
  exceeds every transmission range — physical carrier sensing and PLCP
  locking couple them; the exposed receiver S2 cannot return its MAC
  ACKs while S3/S4 are active, so session 1 starves.
* 2 Mbps (Figures 8-9): larger ranges give the stations a more uniform
  view of the channel and the system is visibly more balanced.
* TCP narrows the gap in both cases (TCP-ACKs make the load pattern
  less asymmetric and congestion control throttles the winner).

Every panel is one :class:`~repro.scenario.ScenarioSpec`
(:func:`panel_spec`): the two sessions are just the spec's flow list,
so the same scenario vocabulary covers hidden/exposed-station setups of
any station count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.channel.placement import (
    Placement,
    figure6_placement,
    figure8_placement,
    figure10_placement,
)
from repro.core.params import Rate
from repro.errors import ExperimentError
from repro.parallel import SweepCache
from repro.scenario import (
    FlowSpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    build,
    run_scenarios,
    scenario_point,
)

_BASE_PORT = 5001

#: (sender index, receiver index) per session, 0-based station indices.
ASYMMETRIC_SESSIONS = ((0, 1), (2, 3))  # S1->S2, S3->S4
SYMMETRIC_SESSIONS = ((0, 1), (3, 2))  # S1->S2, S4->S3


@dataclass(frozen=True)
class SessionThroughput:
    """One bar of a four-node figure."""

    label: str
    kbps: float


@dataclass(frozen=True)
class FourNodeResult:
    """One (transport, RTS/CTS) panel of a four-node figure."""

    scenario: str
    rate: Rate
    transport: str
    rts_cts: bool
    sessions: tuple[SessionThroughput, SessionThroughput]

    @property
    def session1_kbps(self) -> float:
        """Throughput of session 1 (S1 -> S2)."""
        return self.sessions[0].kbps

    @property
    def session2_kbps(self) -> float:
        """Throughput of session 2."""
        return self.sessions[1].kbps

    @property
    def ratio(self) -> float:
        """session2 / session1 — the asymmetry measure."""
        if self.session1_kbps == 0:
            return float("inf")
        return self.session2_kbps / self.session1_kbps


def _session_flows(
    transport: str,
    sessions: tuple[tuple[int, int], ...],
    payload_bytes: int,
) -> tuple[FlowSpec, ...]:
    if transport not in ("udp", "tcp"):
        raise ExperimentError(f"unknown transport {transport!r}")
    flows = []
    for session_index, (tx, rx) in enumerate(sessions):
        port = _BASE_PORT + session_index
        if transport == "udp":
            flows.append(
                FlowSpec(
                    kind="cbr",
                    src=tx,
                    dst=rx,
                    port=port,
                    payload_bytes=payload_bytes,
                )
            )
        else:
            flows.append(FlowSpec(kind="bulk-tcp", src=tx, dst=rx, port=port))
    return tuple(flows)


def scenario_for_placement(
    placement: Placement,
    rate: Rate,
    transport: str,
    rts_cts: bool,
    sessions: tuple[tuple[int, int], ...] = ASYMMETRIC_SESSIONS,
    duration_s: float = 10.0,
    warmup_s: float = 1.0,
    payload_bytes: int = 512,
    seed: int = 1,
) -> ScenarioSpec:
    """The spec for one four-node panel on a live :class:`Placement`."""
    positions = [x for x, _ in placement.positions]
    return ScenarioSpec(
        name=placement.name,
        topology=TopologySpec.line(*positions),
        stack=StackSpec(data_rate_mbps=rate.mbps, rts_enabled=rts_cts),
        traffic=TrafficSpec(
            flows=_session_flows(transport, sessions, payload_bytes)
        ),
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
    )


def _result_from_net(
    net: ScenarioNetwork, rate: Rate, transport: str, rts_cts: bool
) -> FourNodeResult:
    assert net.spec is not None
    session_results = tuple(
        SessionThroughput(
            label=handle.label,
            kbps=handle.throughput_bps(net.spec.duration_s) / 1e3,
        )
        for handle in net.flows
    )
    return FourNodeResult(
        scenario=net.spec.name,
        rate=rate,
        transport=transport,
        rts_cts=rts_cts,
        sessions=session_results,
    )


def run_four_node_scenario(
    placement: Placement,
    rate: Rate,
    transport: str,
    rts_cts: bool,
    sessions: tuple[tuple[int, int], tuple[int, int]] = ASYMMETRIC_SESSIONS,
    duration_s: float = 10.0,
    warmup_s: float = 1.0,
    payload_bytes: int = 512,
    seed: int = 1,
) -> FourNodeResult:
    """Run one panel: two concurrent sessions, measure both."""
    spec = scenario_for_placement(
        placement,
        rate,
        transport,
        rts_cts,
        sessions=sessions,
        duration_s=duration_s,
        warmup_s=warmup_s,
        payload_bytes=payload_bytes,
        seed=seed,
    )
    net = build(spec)
    net.run(duration_s)
    return _result_from_net(net, rate, transport, rts_cts)


_PLACEMENTS = {
    "figure6": figure6_placement,
    "figure8": figure8_placement,
    "figure10": figure10_placement,
}


def panel_spec(
    placement: str,
    rate_mbps: float,
    transport: str,
    rts_cts: bool,
    sessions: tuple[tuple[int, int], ...],
    duration_s: float,
    seed: int,
) -> ScenarioSpec:
    """The spec for one named-placement panel (JSON-friendly arguments)."""
    if placement not in _PLACEMENTS:
        raise ExperimentError(f"unknown placement {placement!r}")
    return scenario_for_placement(
        _PLACEMENTS[placement](),
        Rate.from_mbps(rate_mbps),
        transport,
        rts_cts,
        sessions=tuple((int(tx), int(rx)) for tx, rx in sessions),
        duration_s=duration_s,
        seed=seed,
    )


def panel_rows(net: ScenarioNetwork) -> list:
    """Extractor: ``[scenario, [[label, kbps], [label, kbps]]]``."""
    assert net.spec is not None
    return [
        net.spec.name,
        [
            [handle.label, handle.throughput_bps(net.spec.duration_s) / 1e3]
            for handle in net.flows
        ],
    ]


_PANEL_ROWS = "repro.experiments.four_nodes:panel_rows"


def panel_point(
    placement: str,
    rate_mbps: float,
    transport: str,
    rts_cts: bool,
    sessions: list,
    duration_s: float,
    seed: int,
) -> list:
    """Sweep-engine point: one (transport, RTS/CTS) four-node panel.

    Returns ``[scenario, [[label, kbps], [label, kbps]]]`` — JSON
    primitives the caller folds back into a :class:`FourNodeResult`.
    """
    spec = panel_spec(
        placement, rate_mbps, transport, rts_cts, sessions, duration_s, seed
    )
    return list(scenario_point(spec.to_dict(), extract=_PANEL_ROWS))


def _run_figure(
    placement_name: str,
    rate: Rate,
    sessions,
    duration_s: float,
    seed: int,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    panels = [
        (transport, rts_cts)
        for transport in ("udp", "tcp")
        for rts_cts in (False, True)
    ]
    specs = [
        panel_spec(
            placement_name,
            rate.mbps,
            transport,
            rts_cts,
            sessions,
            duration_s,
            seed,
        )
        for transport, rts_cts in panels
    ]
    values = run_scenarios(
        specs, extract=_PANEL_ROWS, jobs=jobs, cache=cache, policy=policy
    )
    return [
        FourNodeResult(
            scenario=scenario,
            rate=rate,
            transport=transport,
            rts_cts=rts_cts,
            sessions=tuple(
                SessionThroughput(label=label, kbps=kbps)
                for label, kbps in session_rows
            ),
        )
        for (transport, rts_cts), (scenario, session_rows) in zip(panels, values)
    ]


def run_figure7(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 7: asymmetric scenario at 11 Mbps (25 / 80 / 25 m)."""
    return _run_figure(
        "figure6", Rate.MBPS_11, ASYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def run_figure9(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 9: asymmetric scenario at 2 Mbps (25 / 90 / 25 m)."""
    return _run_figure(
        "figure8", Rate.MBPS_2, ASYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def run_figure11(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 11: symmetric scenario at 11 Mbps (25 / 60 / 25 m)."""
    return _run_figure(
        "figure10", Rate.MBPS_11, SYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def run_figure12(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 12: symmetric scenario at 2 Mbps (25 / 60 / 25 m)."""
    return _run_figure(
        "figure10", Rate.MBPS_2, SYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def format_four_node(results: list[FourNodeResult], title: str) -> str:
    """Figure-style session throughput table."""
    return render_table(
        [
            "transport",
            "RTS/CTS",
            results[0].sessions[0].label + " (Kbps)",
            results[0].sessions[1].label + " (Kbps)",
            "ratio (s2/s1)",
        ],
        [
            (
                r.transport.upper(),
                "yes" if r.rts_cts else "no",
                round(r.session1_kbps, 1),
                round(r.session2_kbps, 1),
                round(r.ratio, 2) if r.session1_kbps > 0 else "inf",
            )
            for r in results
        ],
        title=title,
    )
