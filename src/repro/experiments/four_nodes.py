"""Experiments ``figure7``/``figure9``/``figure11``/``figure12``.

Two concurrent sessions on a four-station line (paper §3.3).  The
asymmetric placements put the second session's receiver S4 on the far
side, the symmetric placement reverses session 2 (S4 -> S3) so both
receivers sit in the middle.

The paper's observations the runner reproduces:

* 11 Mbps (Figures 6-7): the sessions interact even though d(S1, S3)
  exceeds every transmission range — physical carrier sensing and PLCP
  locking couple them; the exposed receiver S2 cannot return its MAC
  ACKs while S3/S4 are active, so session 1 starves.
* 2 Mbps (Figures 8-9): larger ranges give the stations a more uniform
  view of the channel and the system is visibly more balanced.
* TCP narrows the gap in both cases (TCP-ACKs make the load pattern
  less asymmetric and congestion control throttles the winner).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.channel.placement import (
    Placement,
    figure6_placement,
    figure8_placement,
    figure10_placement,
)
from repro.core.params import Rate
from repro.errors import ExperimentError
from repro.experiments.common import build_network
from repro.parallel import SweepCache, SweepPoint, run_sweep

_BASE_PORT = 5001

#: (sender index, receiver index) per session, 0-based station indices.
ASYMMETRIC_SESSIONS = ((0, 1), (2, 3))  # S1->S2, S3->S4
SYMMETRIC_SESSIONS = ((0, 1), (3, 2))  # S1->S2, S4->S3


@dataclass(frozen=True)
class SessionThroughput:
    """One bar of a four-node figure."""

    label: str
    kbps: float


@dataclass(frozen=True)
class FourNodeResult:
    """One (transport, RTS/CTS) panel of a four-node figure."""

    scenario: str
    rate: Rate
    transport: str
    rts_cts: bool
    sessions: tuple[SessionThroughput, SessionThroughput]

    @property
    def session1_kbps(self) -> float:
        """Throughput of session 1 (S1 -> S2)."""
        return self.sessions[0].kbps

    @property
    def session2_kbps(self) -> float:
        """Throughput of session 2."""
        return self.sessions[1].kbps

    @property
    def ratio(self) -> float:
        """session2 / session1 — the asymmetry measure."""
        if self.session1_kbps == 0:
            return float("inf")
        return self.session2_kbps / self.session1_kbps


def run_four_node_scenario(
    placement: Placement,
    rate: Rate,
    transport: str,
    rts_cts: bool,
    sessions: tuple[tuple[int, int], tuple[int, int]] = ASYMMETRIC_SESSIONS,
    duration_s: float = 10.0,
    warmup_s: float = 1.0,
    payload_bytes: int = 512,
    seed: int = 1,
) -> FourNodeResult:
    """Run one panel: two concurrent sessions, measure both."""
    if transport not in ("udp", "tcp"):
        raise ExperimentError(f"unknown transport {transport!r}")
    positions = [x for x, _ in placement.positions]
    net = build_network(
        positions, data_rate=rate, rts_enabled=rts_cts, seed=seed
    )
    measurements = []
    for session_index, (tx, rx) in enumerate(sessions):
        port = _BASE_PORT + session_index
        label = f"{tx + 1}->{rx + 1}"
        if transport == "udp":
            sink = UdpSink(net[rx], port=port, warmup_s=warmup_s)
            CbrSource(
                net[tx],
                dst=net[rx].address,
                dst_port=port,
                payload_bytes=payload_bytes,
            )
            measurements.append((label, sink))
        else:
            receiver = BulkTcpReceiver(net[rx], port=port, warmup_s=warmup_s)
            BulkTcpSender(net[tx], dst=net[rx].address, dst_port=port)
            measurements.append((label, receiver))
    net.run(duration_s)
    session_results = tuple(
        SessionThroughput(
            label=label, kbps=meter.throughput_bps(duration_s) / 1e3
        )
        for label, meter in measurements
    )
    return FourNodeResult(
        scenario=placement.name,
        rate=rate,
        transport=transport,
        rts_cts=rts_cts,
        sessions=session_results,
    )


_PLACEMENTS = {
    "figure6": figure6_placement,
    "figure8": figure8_placement,
    "figure10": figure10_placement,
}


def panel_point(
    placement: str,
    rate_mbps: float,
    transport: str,
    rts_cts: bool,
    sessions: list,
    duration_s: float,
    seed: int,
) -> list:
    """Sweep-engine point: one (transport, RTS/CTS) four-node panel.

    Returns ``[scenario, [[label, kbps], [label, kbps]]]`` — JSON
    primitives the caller folds back into a :class:`FourNodeResult`.
    """
    if placement not in _PLACEMENTS:
        raise ExperimentError(f"unknown placement {placement!r}")
    result = run_four_node_scenario(
        _PLACEMENTS[placement](),
        Rate.from_mbps(rate_mbps),
        transport,
        rts_cts,
        sessions=tuple((int(tx), int(rx)) for tx, rx in sessions),
        duration_s=duration_s,
        seed=seed,
    )
    return [
        result.scenario,
        [[session.label, session.kbps] for session in result.sessions],
    ]


_PANEL_POINT = "repro.experiments.four_nodes:panel_point"


def _run_figure(
    placement_name: str,
    rate: Rate,
    sessions,
    duration_s: float,
    seed: int,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    panels = [
        (transport, rts_cts)
        for transport in ("udp", "tcp")
        for rts_cts in (False, True)
    ]
    values = run_sweep(
        [
            SweepPoint(
                _PANEL_POINT,
                {
                    "placement": placement_name,
                    "rate_mbps": rate.mbps,
                    "transport": transport,
                    "rts_cts": rts_cts,
                    "sessions": [list(session) for session in sessions],
                    "duration_s": duration_s,
                    "seed": seed,
                },
            )
            for transport, rts_cts in panels
        ],
        jobs=jobs,
        cache=cache,
        policy=policy,
    )
    return [
        FourNodeResult(
            scenario=scenario,
            rate=rate,
            transport=transport,
            rts_cts=rts_cts,
            sessions=tuple(
                SessionThroughput(label=label, kbps=kbps)
                for label, kbps in session_rows
            ),
        )
        for (transport, rts_cts), (scenario, session_rows) in zip(panels, values)
    ]


def run_figure7(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 7: asymmetric scenario at 11 Mbps (25 / 80 / 25 m)."""
    return _run_figure(
        "figure6", Rate.MBPS_11, ASYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def run_figure9(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 9: asymmetric scenario at 2 Mbps (25 / 90 / 25 m)."""
    return _run_figure(
        "figure8", Rate.MBPS_2, ASYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def run_figure11(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 11: symmetric scenario at 11 Mbps (25 / 60 / 25 m)."""
    return _run_figure(
        "figure10", Rate.MBPS_11, SYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def run_figure12(
    duration_s: float = 10.0,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[FourNodeResult]:
    """Figure 12: symmetric scenario at 2 Mbps (25 / 60 / 25 m)."""
    return _run_figure(
        "figure10", Rate.MBPS_2, SYMMETRIC_SESSIONS, duration_s, seed,
        jobs=jobs, cache=cache, policy=policy,
    )


def format_four_node(results: list[FourNodeResult], title: str) -> str:
    """Figure-style session throughput table."""
    return render_table(
        [
            "transport",
            "RTS/CTS",
            results[0].sessions[0].label + " (Kbps)",
            results[0].sessions[1].label + " (Kbps)",
            "ratio (s2/s1)",
        ],
        [
            (
                r.transport.upper(),
                "yes" if r.rts_cts else "no",
                round(r.session1_kbps, 1),
                round(r.session2_kbps, 1),
                round(r.ratio, 2) if r.session1_kbps > 0 else "inf",
            )
            for r in results
        ],
        title=title,
    )
