"""Experiments ``figure3``, ``figure4`` and ``table3``: transmission ranges.

Methodology (paper §3.2): two stations at a preset NIC rate, the packet
loss rate recorded as a function of distance.  MAC retries are disabled
so the application-level loss equals the per-frame loss (each probe is
transmitted exactly once), and probes are paced far below saturation.

Control-frame ranges fall out of the same sweep: RTS/CTS/ACK travel at
the basic rates, so the control range at 2 (1) Mbps is the data range of
a 2 (1) Mbps sweep — exactly how Table 3 presents them.

Each (rate, distance, seed) cell is one declarative
:class:`~repro.scenario.ScenarioSpec` (:func:`loss_spec`); the
:func:`probe_loss` extractor drains in-flight probes after the horizon
before reading the loss, and sweeps are cached on the spec itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.ascii_plot import line_plot
from repro.analysis.tables import render_table
from repro.channel.weather import DayConditions
from repro.core.params import ALL_RATES, Rate
from repro.errors import ExperimentError
from repro.experiments import paper
from repro.parallel import SweepCache, SweepPoint, run_sweep
from repro.scenario import (
    FlowSpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    WeatherSpec,
    build,
    scenario_sweep_points,
)

_PORT = 5001

#: Figure 3's x axis: 20 m to 150 m.
FIGURE3_DISTANCES_M: tuple[float, ...] = tuple(range(20, 151, 10))
#: Figure 4's x axis: 50 m to 160 m (the 1 Mbps range region).
FIGURE4_DISTANCES_M: tuple[float, ...] = tuple(range(50, 161, 10))

#: Probe pacing: 5 ms spacing is far below saturation even at 1 Mbps.
_PROBE_INTERVAL_S = 0.005


@dataclass(frozen=True)
class LossCurve:
    """One loss-vs-distance curve."""

    label: str
    rate: Rate
    distances_m: tuple[float, ...]
    loss_rates: tuple[float, ...]


@dataclass(frozen=True)
class RangeEstimate:
    """A Table-3 row: estimated range vs the paper's band."""

    rate: Rate
    kind: str  # "data" or "control"
    estimated_m: float
    paper_band_m: tuple[float, float]

    @property
    def within_band(self) -> bool:
        """True when the estimate falls inside the paper's band."""
        low, high = self.paper_band_m
        return low <= self.estimated_m <= high


def loss_spec(
    rate_mbps: float,
    distance_m: float,
    probes: int,
    seed: int,
    payload_bytes: int = 512,
    weather: WeatherSpec | None = None,
) -> ScenarioSpec:
    """One loss-probe cell: no MAC retries, paced probes, two stations."""
    return ScenarioSpec(
        name="loss-probe",
        topology=TopologySpec.line(0.0, float(distance_m), weather=weather),
        stack=StackSpec(
            data_rate_mbps=rate_mbps, short_retry_limit=0, long_retry_limit=0
        ),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(
                    kind="cbr",
                    src=0,
                    dst=1,
                    port=_PORT,
                    payload_bytes=payload_bytes,
                    rate_bps=payload_bytes * 8 / _PROBE_INTERVAL_S,
                ),
            )
        ),
        seed=seed,
        duration_s=probes * _PROBE_INTERVAL_S,
    )


def probe_loss(net: ScenarioNetwork) -> float:
    """Extractor: stop the source, drain in-flight probes, read the loss."""
    flow = net.flow(0)
    flow.source.stop()
    net.sim.run()
    if flow.source.packets_accepted == 0:
        raise ExperimentError("probe source never transmitted")
    return max(0.0, 1.0 - flow.sink.packets / flow.source.packets_accepted)


_PROBE_LOSS = "repro.experiments.ranges:probe_loss"


def measure_loss_at(
    rate: Rate,
    distance_m: float,
    probes: int = 200,
    payload_bytes: int = 512,
    seed: int = 1,
    weather: DayConditions | None = None,
) -> float:
    """Per-frame loss rate between two stations ``distance_m`` apart."""
    spec = loss_spec(
        rate.mbps,
        distance_m,
        probes,
        seed,
        payload_bytes=payload_bytes,
        weather=(
            WeatherSpec.from_conditions(weather) if weather is not None else None
        ),
    )
    net = build(spec)
    net.run(spec.duration_s)
    return probe_loss(net)


def loss_point(
    rate_mbps: float,
    distance_m: float,
    probes: int,
    seed: int,
    payload_bytes: int = 512,
    weather: dict | None = None,
) -> float:
    """Sweep-engine point function for one (rate, distance, seed) cell.

    Parameters are JSON primitives so the point is picklable under any
    start method and content-addressable by the result cache.
    """
    return measure_loss_at(
        Rate.from_mbps(rate_mbps),
        distance_m,
        probes=probes,
        seed=seed,
        payload_bytes=payload_bytes,
        weather=DayConditions(**weather) if weather is not None else None,
    )


def _loss_points(
    rate: Rate,
    distances_m: Sequence[float],
    probes: int,
    seed: int,
    weather: DayConditions | None,
) -> list[SweepPoint]:
    """One spec point per distance, seeded exactly like the serial loop."""
    weather_spec = (
        WeatherSpec.from_conditions(weather) if weather is not None else None
    )
    specs = [
        loss_spec(
            rate.mbps,
            float(distance),
            probes,
            seed + int(distance),
            weather=weather_spec,
        )
        for distance in distances_m
    ]
    return scenario_sweep_points(specs, extract=_PROBE_LOSS)


def run_loss_sweep(
    rate: Rate,
    distances_m: Sequence[float] = FIGURE3_DISTANCES_M,
    probes: int = 200,
    seed: int = 1,
    weather: DayConditions | None = None,
    label: str | None = None,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> LossCurve:
    """Loss rate at each distance for one rate."""
    losses = run_sweep(
        _loss_points(rate, distances_m, probes, seed, weather),
        jobs=jobs,
        cache=cache,
        policy=policy,
    )
    return LossCurve(
        label=label if label is not None else str(rate),
        rate=rate,
        distances_m=tuple(distances_m),
        loss_rates=tuple(losses),
    )


def run_figure3(
    probes: int = 200,
    seed: int = 1,
    distances_m: Sequence[float] = FIGURE3_DISTANCES_M,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[LossCurve]:
    """The four loss-vs-distance curves of Figure 3 (11 Mbps first).

    All rates × distances go through one sweep call, so ``jobs`` workers
    see the whole grid at once instead of one curve at a time.
    """
    rates = list(reversed(ALL_RATES))
    points = [
        point
        for rate in rates
        for point in _loss_points(rate, distances_m, probes, seed, None)
    ]
    losses = run_sweep(points, jobs=jobs, cache=cache, policy=policy)
    stride = len(distances_m)
    return [
        LossCurve(
            label=str(rate),
            rate=rate,
            distances_m=tuple(distances_m),
            loss_rates=tuple(losses[index * stride : (index + 1) * stride]),
        )
        for index, rate in enumerate(rates)
    ]


def run_figure4(
    probes: int = 200,
    seed: int = 1,
    distances_m: Sequence[float] = FIGURE4_DISTANCES_M,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[LossCurve]:
    """The 1 Mbps curve measured on two different days (Figure 4)."""
    days = (DayConditions.good_day(), DayConditions.bad_day())
    points = [
        point
        for day in days
        for point in _loss_points(Rate.MBPS_1, distances_m, probes, seed, day)
    ]
    losses = run_sweep(points, jobs=jobs, cache=cache, policy=policy)
    stride = len(distances_m)
    return [
        LossCurve(
            label=day.name,
            rate=Rate.MBPS_1,
            distances_m=tuple(distances_m),
            loss_rates=tuple(losses[index * stride : (index + 1) * stride]),
        )
        for index, day in enumerate(days)
    ]


def estimate_tx_range(curve: LossCurve, threshold: float = 0.5) -> float:
    """Distance at which the loss curve crosses ``threshold``.

    Linear interpolation between the bracketing samples; returns the
    first (last) distance when the curve starts above (stays below) the
    threshold.
    """
    distances = curve.distances_m
    losses = curve.loss_rates
    if losses[0] >= threshold:
        return distances[0]
    for index in range(1, len(losses)):
        if losses[index] >= threshold:
            d0, d1 = distances[index - 1], distances[index]
            l0, l1 = losses[index - 1], losses[index]
            if l1 == l0:
                return d1
            return d0 + (threshold - l0) * (d1 - d0) / (l1 - l0)
    return distances[-1]


def run_table3(
    probes: int = 200,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[RangeEstimate]:
    """Table 3: data ranges for all rates + control ranges at 2/1 Mbps."""
    distances = FIGURE3_DISTANCES_M + (160.0,)
    points = [
        point
        for rate in ALL_RATES
        for point in _loss_points(rate, distances, probes, seed, None)
    ]
    losses = run_sweep(points, jobs=jobs, cache=cache, policy=policy)
    stride = len(distances)
    curves = {
        rate: LossCurve(
            label=str(rate),
            rate=rate,
            distances_m=distances,
            loss_rates=tuple(losses[index * stride : (index + 1) * stride]),
        )
        for index, rate in enumerate(ALL_RATES)
    }
    estimates = [
        RangeEstimate(
            rate=rate,
            kind="data",
            estimated_m=estimate_tx_range(curves[rate]),
            paper_band_m=paper.TABLE3_DATA_RANGE_M[rate],
        )
        for rate in reversed(ALL_RATES)
    ]
    for rate in (Rate.MBPS_2, Rate.MBPS_1):
        estimates.append(
            RangeEstimate(
                rate=rate,
                kind="control",
                estimated_m=estimate_tx_range(curves[rate]),
                paper_band_m=paper.TABLE3_CONTROL_RANGE_M[rate],
            )
        )
    return estimates


def format_loss_curves(curves: list[LossCurve], title: str) -> str:
    """Table + ASCII plot of loss curves."""
    headers = ["distance (m)"] + [curve.label for curve in curves]
    rows = []
    for index, distance in enumerate(curves[0].distances_m):
        rows.append(
            [distance] + [curve.loss_rates[index] for curve in curves]
        )
    table = render_table(headers, rows, title=title)
    plot = line_plot(
        list(curves[0].distances_m),
        {curve.label: list(curve.loss_rates) for curve in curves},
        y_min=0.0,
        y_max=1.0,
        title=f"{title} (packet loss vs distance)",
    )
    return f"{table}\n\n{plot}"


def format_table3(estimates: list[RangeEstimate]) -> str:
    """Paper-vs-measured rendering of Table 3."""
    return render_table(
        ["rate", "kind", "estimated (m)", "paper band (m)", "within band"],
        [
            (
                str(e.rate),
                e.kind,
                round(e.estimated_m, 1),
                f"{e.paper_band_m[0]:g}-{e.paper_band_m[1]:g}",
                "yes" if e.within_band else "NO",
            )
            for e in estimates
        ],
        title="Table 3 - transmission range estimates",
    )
