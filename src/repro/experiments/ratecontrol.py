"""Extension experiment ``arf``: dynamic rate switching vs fixed rates.

Paper §2 notes that 802.11b cards may implement dynamic rate switching.
The experiment sweeps a two-station link over distance and compares the
saturation throughput of each fixed rate with ARF: a well-behaved rate
controller should track the upper envelope of the fixed-rate curves,
stepping down the ladder near each rate's range edge.

Each (distance, strategy) cell is one :class:`~repro.scenario.
ScenarioSpec`, so the whole grid rides the parallel sweep engine and the
result cache like every paper figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.core.params import ALL_RATES, Rate
from repro.parallel import SweepCache
from repro.scenario import (
    FlowSpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    run_scenarios,
)

_PORT = 5001

#: Distances spanning every rate's comfort zone and the gaps between.
DEFAULT_DISTANCES_M: tuple[float, ...] = (10.0, 25.0, 45.0, 60.0, 80.0, 105.0)


@dataclass(frozen=True)
class ArfSweepRow:
    """Throughput at one distance for every strategy, in Mbps."""

    distance_m: float
    fixed_mbps: dict[Rate, float]
    arf_mbps: float

    @property
    def best_fixed_mbps(self) -> float:
        """The upper envelope of the fixed-rate strategies."""
        return max(self.fixed_mbps.values())


def arf_spec(
    distance_m: float,
    rate_mbps: float,
    arf: bool,
    duration_s: float,
    warmup_s: float,
    seed: int,
) -> ScenarioSpec:
    """One saturated link at a distance, fixed-rate or ARF-controlled."""
    return ScenarioSpec(
        name="arf-sweep" if arf else "fixed-rate-sweep",
        topology=TopologySpec.line(0.0, float(distance_m)),
        stack=StackSpec(data_rate_mbps=rate_mbps, arf=arf),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(kind="cbr", src=0, dst=1, port=_PORT, payload_bytes=512),
            )
        ),
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
    )


def saturation_mbps(net: ScenarioNetwork) -> float:
    """Extractor: flow-0 goodput in Mbps over the scenario horizon."""
    assert net.spec is not None
    return net.flow(0).throughput_bps(net.spec.duration_s) / 1e6


_SATURATION_MBPS = "repro.experiments.ratecontrol:saturation_mbps"


def run_arf_sweep(
    distances_m: Sequence[float] = DEFAULT_DISTANCES_M,
    duration_s: float = 3.0,
    warmup_s: float = 0.5,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[ArfSweepRow]:
    """Fixed rates and ARF across the distance sweep."""
    strategies = [(rate, False) for rate in ALL_RATES] + [(Rate.MBPS_11, True)]
    specs = [
        arf_spec(distance, rate.mbps, arf, duration_s, warmup_s, seed)
        for distance in distances_m
        for rate, arf in strategies
    ]
    values = run_scenarios(
        specs, extract=_SATURATION_MBPS, jobs=jobs, cache=cache, policy=policy
    )
    stride = len(strategies)
    rows = []
    for index, distance in enumerate(distances_m):
        cell = values[index * stride : (index + 1) * stride]
        fixed = {rate: mbps for (rate, _), mbps in zip(strategies[:-1], cell)}
        rows.append(
            ArfSweepRow(distance_m=distance, fixed_mbps=fixed, arf_mbps=cell[-1])
        )
    return rows


def format_arf_sweep(rows: list[ArfSweepRow]) -> str:
    """Throughput-vs-distance table for every strategy."""
    return render_table(
        ["distance (m)"]
        + [f"fixed {rate}" for rate in ALL_RATES]
        + ["ARF", "ARF/best-fixed"],
        [
            [row.distance_m]
            + [row.fixed_mbps[rate] for rate in ALL_RATES]
            + [row.arf_mbps, row.arf_mbps / max(row.best_fixed_mbps, 1e-9)]
            for row in rows
        ],
        title="Extension - ARF dynamic rate switching vs fixed rates (Mbps)",
    )
