"""Extension experiment ``arf``: dynamic rate switching vs fixed rates.

Paper §2 notes that 802.11b cards may implement dynamic rate switching.
The experiment sweeps a two-station link over distance and compares the
saturation throughput of each fixed rate with ARF: a well-behaved rate
controller should track the upper envelope of the fixed-rate curves,
stepping down the ladder near each rate's range edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import ALL_RATES, Rate
from repro.experiments.common import build_network
from repro.mac.ratecontrol import ArfConfig

_PORT = 5001

#: Distances spanning every rate's comfort zone and the gaps between.
DEFAULT_DISTANCES_M: tuple[float, ...] = (10.0, 25.0, 45.0, 60.0, 80.0, 105.0)


@dataclass(frozen=True)
class ArfSweepRow:
    """Throughput at one distance for every strategy, in Mbps."""

    distance_m: float
    fixed_mbps: dict[Rate, float]
    arf_mbps: float

    @property
    def best_fixed_mbps(self) -> float:
        """The upper envelope of the fixed-rate strategies."""
        return max(self.fixed_mbps.values())


def _throughput(distance_m, rate, arf, duration_s, warmup_s, seed) -> float:
    net = build_network(
        [0.0, distance_m],
        data_rate=rate,
        seed=seed,
        arf=ArfConfig() if arf else None,
    )
    sink = UdpSink(net[1], port=_PORT, warmup_s=warmup_s)
    CbrSource(net[0], dst=2, dst_port=_PORT, payload_bytes=512)
    net.run(duration_s)
    return sink.throughput_bps(duration_s) / 1e6


def run_arf_sweep(
    distances_m: Sequence[float] = DEFAULT_DISTANCES_M,
    duration_s: float = 3.0,
    warmup_s: float = 0.5,
    seed: int = 1,
) -> list[ArfSweepRow]:
    """Fixed rates and ARF across the distance sweep."""
    rows = []
    for distance in distances_m:
        fixed = {
            rate: _throughput(distance, rate, False, duration_s, warmup_s, seed)
            for rate in ALL_RATES
        }
        arf = _throughput(
            distance, Rate.MBPS_11, True, duration_s, warmup_s, seed
        )
        rows.append(
            ArfSweepRow(distance_m=distance, fixed_mbps=fixed, arf_mbps=arf)
        )
    return rows


def format_arf_sweep(rows: list[ArfSweepRow]) -> str:
    """Throughput-vs-distance table for every strategy."""
    return render_table(
        ["distance (m)"]
        + [f"fixed {rate}" for rate in ALL_RATES]
        + ["ARF", "ARF/best-fixed"],
        [
            [row.distance_m]
            + [row.fixed_mbps[rate] for rate in ALL_RATES]
            + [row.arf_mbps, row.arf_mbps / max(row.best_fixed_mbps, 1e-9)]
            for row in rows
        ],
        title="Extension - ARF dynamic rate switching vs fixed rates (Mbps)",
    )
