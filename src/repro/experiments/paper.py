"""The paper's published numbers, for paper-vs-measured reporting.

Values transcribed from the tables of the paper; figure bar charts have
no printed numbers, so for them we record the *qualitative* expectations
(who wins, roughly by how much) that the reproduction is checked against.
"""

from __future__ import annotations

from repro.core.params import Rate

#: Table 2, Mbps: (rate, payload bytes, rts_cts) -> max throughput.
TABLE2_MBPS: dict[tuple[Rate, int, bool], float] = {
    (Rate.MBPS_11, 512, False): 3.060,
    (Rate.MBPS_11, 512, True): 2.549,
    (Rate.MBPS_11, 1024, False): 4.788,
    (Rate.MBPS_11, 1024, True): 4.139,
    (Rate.MBPS_5_5, 512, False): 2.366,
    (Rate.MBPS_5_5, 512, True): 2.049,
    (Rate.MBPS_5_5, 1024, False): 3.308,
    (Rate.MBPS_5_5, 1024, True): 2.985,
    (Rate.MBPS_2, 512, False): 1.319,
    (Rate.MBPS_2, 512, True): 1.214,
    (Rate.MBPS_2, 1024, False): 1.589,
    (Rate.MBPS_2, 1024, True): 1.511,
    (Rate.MBPS_1, 512, False): 0.758,
    (Rate.MBPS_1, 512, True): 0.738,
    (Rate.MBPS_1, 1024, False): 0.862,
    (Rate.MBPS_1, 1024, True): 0.839,
}

#: Table 3, metres: data transmission range bands per rate.
TABLE3_DATA_RANGE_M: dict[Rate, tuple[float, float]] = {
    Rate.MBPS_11: (25.0, 35.0),  # "30 meters"
    Rate.MBPS_5_5: (65.0, 75.0),  # "70 meters"
    Rate.MBPS_2: (90.0, 100.0),  # "90-100 meters"
    Rate.MBPS_1: (110.0, 130.0),  # "110-130 meters"
}

#: Table 3, metres: control-frame transmission ranges.
TABLE3_CONTROL_RANGE_M: dict[Rate, tuple[float, float]] = {
    Rate.MBPS_2: (85.0, 100.0),  # "90 meters"
    Rate.MBPS_1: (110.0, 130.0),  # "120 meters"
}

#: The ns-2 values the paper contrasts against (§2 and §3.2).
NS2_TX_RANGE_M = 250.0
NS2_PCS_RANGE_M = 550.0

#: Qualitative expectations for the four-node figures.  Ratios are
#: session2 / session1 throughput; the bar charts show session 2 clearly
#: ahead at 11 Mbps and a much more balanced system at 2 Mbps.
FIGURE7_MIN_UDP_RATIO = 1.5  # 11 Mbps, UDP: strong asymmetry
FIGURE9_MAX_UDP_RATIO = 1.6  # 2 Mbps, UDP: "more balanced"
#: TCP narrows the gap relative to UDP in the same configuration.
TCP_NARROWS_GAP = True
