"""Experiments ``fault-blackout`` / ``fault-crash``: throughput under faults.

The paper's testbed lost links for minutes at a time (Figure 4 shows the
1 Mbps range differing day to day) and stations came and went; these
experiments inject those events deliberately and show the stack
degrading and recovering instead of falling over:

* **fault-blackout** — a UDP flow through a total link outage injected
  mid-session.  Throughput collapses during the window, then recovers
  (with a drain burst: frames queued at the MAC during the outage go
  out once the link returns).
* **fault-crash** — a TCP bulk transfer whose *sender* station loses
  power mid-stream and reboots later.  The original connection dies
  without a FIN; on reboot the application opens a fresh connection and
  goodput resumes.

Both scenarios are pure :class:`~repro.scenario.ScenarioSpec` data — the
fault window is a ``faults`` entry and the crash restart is the spec's
``restart_flows`` wiring, not a hand-built callback.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.params import Rate
from repro.errors import ConfigurationError
from repro.scenario import (
    FaultSpec,
    FlowSpec,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    build,
)

#: Port used by both workloads at the receiver.
_PORT = 5001


@dataclass(frozen=True)
class PhaseThroughput:
    """Goodput over one phase of a faulted run."""

    label: str
    start_s: float
    end_s: float
    mbps: float


def _phase_mbps(
    rx_times_ns: list[int],
    rx_bytes: list[int],
    start_s: float,
    end_s: float,
) -> float:
    lo = bisect.bisect_left(rx_times_ns, round(start_s * 1e9))
    hi = bisect.bisect_left(rx_times_ns, round(end_s * 1e9))
    window_s = end_s - start_s
    if window_s <= 0:
        return 0.0
    return sum(rx_bytes[lo:hi]) * 8 / window_s / 1e6


# ------------------------------------------------------------- blackout


@dataclass(frozen=True)
class BlackoutResult:
    """Outcome of the link-blackout scenario."""

    phases: tuple[PhaseThroughput, ...]
    blackout_start_s: float
    blackout_end_s: float
    packets_received: int
    mac_retries: int
    mac_drops: int

    @property
    def degraded(self) -> bool:
        """True when the outage visibly suppressed throughput."""
        before, during, _ = self.phases
        return during.mbps < before.mbps * 0.1


def blackout_spec(
    duration_s: float = 15.0,
    blackout_s: float = 5.0,
    offered_mbps: float = 1.5,
    rate_mbps: float = 11.0,
    seed: int = 1,
) -> ScenarioSpec:
    """UDP through a total link outage centred in the run."""
    if duration_s < blackout_s + 4.0:
        raise ConfigurationError(
            f"duration ({duration_s:g}s) must leave at least 2s of clean "
            f"channel either side of the {blackout_s:g}s blackout"
        )
    start_s = (duration_s - blackout_s) / 2
    return ScenarioSpec(
        name="fault-blackout",
        topology=TopologySpec.line(0, 10, fast_sigma_db=0.0),
        stack=StackSpec(data_rate_mbps=rate_mbps),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(
                    kind="cbr",
                    src=0,
                    dst=1,
                    port=_PORT,
                    payload_bytes=512,
                    rate_bps=offered_mbps * 1e6,
                ),
            )
        ),
        faults=(
            FaultSpec(
                kind="link-blackout",
                start_s=start_s,
                duration_s=blackout_s,
                node_a=0,
                node_b=1,
            ),
        ),
        seed=seed,
        duration_s=duration_s,
    )


def run_link_blackout(
    duration_s: float = 15.0,
    blackout_s: float = 5.0,
    offered_mbps: float = 1.5,
    rate: Rate = Rate.MBPS_11,
    seed: int = 1,
) -> BlackoutResult:
    """UDP flow with a total link outage centred in the run."""
    spec = blackout_spec(
        duration_s=duration_s,
        blackout_s=blackout_s,
        offered_mbps=offered_mbps,
        rate_mbps=rate.mbps,
        seed=seed,
    )
    fault = spec.faults[0]
    start_s = fault.start_s
    assert fault.duration_s is not None
    end_s = start_s + fault.duration_s
    net = build(spec)
    net.run(duration_s)
    sink = net.flow(0).sink
    rx_bytes = [512] * len(sink.rx_times_ns)
    phases = tuple(
        PhaseThroughput(
            label,
            lo,
            hi,
            _phase_mbps(sink.rx_times_ns, rx_bytes, lo, hi),
        )
        for label, lo, hi in (
            ("before", 0.0, start_s),
            ("blackout", start_s, end_s),
            ("after", end_s, duration_s),
        )
    )
    mac = net[0].mac.counters
    return BlackoutResult(
        phases=phases,
        blackout_start_s=start_s,
        blackout_end_s=end_s,
        packets_received=sink.packets,
        mac_retries=mac.retries,
        mac_drops=mac.tx_drops,
    )


def format_link_blackout(result: BlackoutResult) -> str:
    """Phase table plus the sender's MAC-level cost of the outage."""
    table = render_table(
        ["phase", "window (s)", "goodput (Mbps)"],
        [
            (p.label, f"{p.start_s:g}-{p.end_s:g}", p.mbps)
            for p in result.phases
        ],
        title=(
            f"fault-blackout - UDP through a "
            f"{result.blackout_end_s - result.blackout_start_s:g}s link outage"
        ),
    )
    verdict = "degraded, then recovered" if result.degraded else "UNEXPECTED"
    return (
        f"{table}\n"
        f"packets received: {result.packets_received}, sender MAC retries: "
        f"{result.mac_retries}, sender MAC drops: {result.mac_drops}\n"
        f"verdict: {verdict}"
    )


# ---------------------------------------------------------- node crash


@dataclass(frozen=True)
class CrashResult:
    """Outcome of the sender-crash/reboot scenario."""

    phases: tuple[PhaseThroughput, ...]
    crash_s: float
    reboot_s: float
    old_connection_reason: str | None
    connections_seen: int
    bytes_after_reboot: int

    @property
    def recovered(self) -> bool:
        """True when goodput resumed on a fresh connection after reboot."""
        return self.connections_seen >= 2 and self.bytes_after_reboot > 0


def crash_spec(
    duration_s: float = 15.0,
    crash_s: float = 5.0,
    downtime_s: float = 4.0,
    seed: int = 1,
) -> ScenarioSpec:
    """TCP bulk transfer whose sender crashes and reboots mid-stream.

    The reboot restart is declarative: ``restart_flows=(0,)`` tells the
    node-crash fault to start a fresh source for flow 0 when the station
    comes back.
    """
    if duration_s < crash_s + downtime_s + 2.0:
        raise ConfigurationError(
            f"duration ({duration_s:g}s) must leave at least 2s after the "
            f"reboot at {crash_s + downtime_s:g}s"
        )
    return ScenarioSpec(
        name="fault-crash",
        topology=TopologySpec.line(0, 10, fast_sigma_db=0.0),
        traffic=TrafficSpec(
            flows=(FlowSpec(kind="bulk-tcp", src=0, dst=1, port=_PORT),)
        ),
        faults=(
            FaultSpec(
                kind="node-crash",
                start_s=crash_s,
                duration_s=downtime_s,
                node=0,
                restart_flows=(0,),
            ),
        ),
        seed=seed,
        duration_s=duration_s,
    )


def run_node_crash(
    duration_s: float = 15.0,
    crash_s: float = 5.0,
    downtime_s: float = 4.0,
    seed: int = 1,
) -> CrashResult:
    """TCP bulk transfer whose sender crashes and reboots mid-stream."""
    spec = crash_spec(
        duration_s=duration_s,
        crash_s=crash_s,
        downtime_s=downtime_s,
        seed=seed,
    )
    reboot_s = crash_s + downtime_s
    net = build(spec)
    flow = net.flow(0)
    receiver = flow.sink
    closed_reasons: list[str] = []
    flow.source.connection.on_closed = closed_reasons.append
    net.run(duration_s)
    phases = tuple(
        PhaseThroughput(
            label,
            lo,
            hi,
            _phase_mbps(receiver.rx_times_ns, receiver.rx_bytes, lo, hi),
        )
        for label, lo, hi in (
            ("before", 0.0, crash_s),
            ("down", crash_s, reboot_s),
            ("after", reboot_s, duration_s),
        )
    )
    reboot_ns = round(reboot_s * 1e9)
    bytes_after = sum(
        nbytes
        for time_ns, nbytes in zip(receiver.rx_times_ns, receiver.rx_bytes)
        if time_ns >= reboot_ns
    )
    return CrashResult(
        phases=phases,
        crash_s=crash_s,
        reboot_s=reboot_s,
        old_connection_reason=closed_reasons[0] if closed_reasons else None,
        connections_seen=len(receiver.connections),
        bytes_after_reboot=bytes_after,
    )


def format_node_crash(result: CrashResult) -> str:
    """Phase table plus the connection-lifecycle story."""
    table = render_table(
        ["phase", "window (s)", "goodput (Mbps)"],
        [
            (p.label, f"{p.start_s:g}-{p.end_s:g}", p.mbps)
            for p in result.phases
        ],
        title=(
            f"fault-crash - TCP sender crashes at {result.crash_s:g}s, "
            f"reboots at {result.reboot_s:g}s"
        ),
    )
    verdict = "recovered on a fresh connection" if result.recovered else "UNEXPECTED"
    return (
        f"{table}\n"
        f"old connection closed: {result.old_connection_reason}, connections "
        f"seen by receiver: {result.connections_seen}, bytes after reboot: "
        f"{result.bytes_after_reboot}\n"
        f"verdict: {verdict}"
    )
