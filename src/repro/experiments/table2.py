"""Experiment ``table2``: regenerate Table 2 from Equations (1)/(2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.params import ALL_RATES, Rate
from repro.core.throughput_model import RtsCtsOverheadModel, ThroughputModel
from repro.experiments import paper
from repro.parallel import SweepCache, SweepPoint, run_sweep


@dataclass(frozen=True)
class Table2Row:
    """One cell of Table 2 with the paper's value alongside ours."""

    rate: Rate
    payload_bytes: int
    rts_cts: bool
    paper_mbps: float
    standard_mbps: float
    paper_implied_mbps: float

    @property
    def matches_paper(self) -> bool:
        """True when either interpretation lands within 10 kbps."""
        return (
            abs(self.standard_mbps - self.paper_mbps) < 0.01
            or abs(self.paper_implied_mbps - self.paper_mbps) < 0.01
        )


def throughput_point(rate_mbps: float, payload_bytes: int, rts_cts: bool) -> list:
    """Sweep-engine point: one Table-2 cell under both overhead models.

    Analytic (microseconds of work) — it goes through the engine for
    grid/caching uniformity, and because its cheapness makes it the
    canonical point function for cache-semantics tests.
    """
    rate = Rate.from_mbps(rate_mbps)
    standard = ThroughputModel(rts_overhead=RtsCtsOverheadModel.STANDARD)
    implied = ThroughputModel(rts_overhead=RtsCtsOverheadModel.PAPER_IMPLIED)
    return [
        standard.max_throughput_bps(payload_bytes, rate, rts_cts) / 1e6,
        implied.max_throughput_bps(payload_bytes, rate, rts_cts) / 1e6,
    ]


_THROUGHPUT_POINT = "repro.experiments.table2:throughput_point"


def run_table2(
    payload_sizes: tuple[int, ...] = (512, 1024),
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[Table2Row]:
    """Evaluate every Table-2 cell under both RTS/CTS overhead models."""
    grid = [
        (rate, payload, rts_cts)
        for rate in reversed(ALL_RATES)
        for payload in payload_sizes
        for rts_cts in (False, True)
    ]
    values = run_sweep(
        [
            SweepPoint(
                _THROUGHPUT_POINT,
                {
                    "rate_mbps": rate.mbps,
                    "payload_bytes": payload,
                    "rts_cts": rts_cts,
                },
            )
            for rate, payload, rts_cts in grid
        ],
        jobs=jobs,
        cache=cache,
        policy=policy,
    )
    return [
        Table2Row(
            rate=rate,
            payload_bytes=payload,
            rts_cts=rts_cts,
            paper_mbps=paper.TABLE2_MBPS[(rate, payload, rts_cts)],
            standard_mbps=standard_mbps,
            paper_implied_mbps=implied_mbps,
        )
        for (rate, payload, rts_cts), (standard_mbps, implied_mbps) in zip(
            grid, values
        )
    ]


def format_table2(rows: list[Table2Row]) -> str:
    """Paper-vs-ours rendering of Table 2."""
    return render_table(
        ["rate", "m (B)", "RTS/CTS", "paper", "ours (Eq.1/2)", "ours (paper-implied)"],
        [
            (
                str(row.rate),
                row.payload_bytes,
                "yes" if row.rts_cts else "no",
                row.paper_mbps,
                row.standard_mbps,
                row.paper_implied_mbps,
            )
            for row in rows
        ],
        title="Table 2 - maximum throughput (Mbps)",
    )
