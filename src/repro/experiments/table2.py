"""Experiment ``table2``: regenerate Table 2 from Equations (1)/(2)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.params import ALL_RATES, Rate
from repro.core.throughput_model import RtsCtsOverheadModel, ThroughputModel
from repro.experiments import paper


@dataclass(frozen=True)
class Table2Row:
    """One cell of Table 2 with the paper's value alongside ours."""

    rate: Rate
    payload_bytes: int
    rts_cts: bool
    paper_mbps: float
    standard_mbps: float
    paper_implied_mbps: float

    @property
    def matches_paper(self) -> bool:
        """True when either interpretation lands within 10 kbps."""
        return (
            abs(self.standard_mbps - self.paper_mbps) < 0.01
            or abs(self.paper_implied_mbps - self.paper_mbps) < 0.01
        )


def run_table2(payload_sizes: tuple[int, ...] = (512, 1024)) -> list[Table2Row]:
    """Evaluate every Table-2 cell under both RTS/CTS overhead models."""
    standard = ThroughputModel(rts_overhead=RtsCtsOverheadModel.STANDARD)
    implied = ThroughputModel(rts_overhead=RtsCtsOverheadModel.PAPER_IMPLIED)
    rows = []
    for rate in reversed(ALL_RATES):
        for payload in payload_sizes:
            for rts_cts in (False, True):
                rows.append(
                    Table2Row(
                        rate=rate,
                        payload_bytes=payload,
                        rts_cts=rts_cts,
                        paper_mbps=paper.TABLE2_MBPS[(rate, payload, rts_cts)],
                        standard_mbps=standard.max_throughput_bps(
                            payload, rate, rts_cts
                        )
                        / 1e6,
                        paper_implied_mbps=implied.max_throughput_bps(
                            payload, rate, rts_cts
                        )
                        / 1e6,
                    )
                )
    return rows


def format_table2(rows: list[Table2Row]) -> str:
    """Paper-vs-ours rendering of Table 2."""
    return render_table(
        ["rate", "m (B)", "RTS/CTS", "paper", "ours (Eq.1/2)", "ours (paper-implied)"],
        [
            (
                str(row.rate),
                row.payload_bytes,
                "yes" if row.rts_cts else "no",
                row.paper_mbps,
                row.standard_mbps,
                row.paper_implied_mbps,
            )
            for row in rows
        ],
        title="Table 2 - maximum throughput (Mbps)",
    )
