"""Scale experiments: multihop chains and neighbour density.

Two extensions the spatial medium + shortest-path routing open up
(neither is measurable in the paper's four-station test-bed):

* ``multihop`` — end-to-end UDP throughput over a relay chain vs hop
  count.  Stations sit ``spacing_m`` apart, in range only of their
  direct neighbours, so every extra hop adds a store-and-forward stage
  that competes with its predecessor for the same spectrum — the
  1/hops-style decay the multihop literature reports ("Multihop
  Adjustment for the Number of Nodes in Contention-Based MAC
  Protocols", PAPERS.md).
* ``density`` — per-node delivered throughput vs mean neighbour count
  at N in {50, 100, 250}.  Stations scatter uniformly at *constant
  density* (:meth:`TopologySpec.random` grows the field with N), each
  offering the same low CBR load to its nearest neighbour; as N grows
  the contention neighbourhood statistics stay put, so per-node
  throughput holding steady is the scalability null result — and any
  decay measures contention effects, not artefacts of a shrinking
  arena ("Impact of Mobility and Transmission Range on Backoff
  Algorithms", PAPERS.md).

Both run with ``fast_sigma_db=0`` so the spatial medium's
O(neighbours) path carries them — the property that makes N=250
practical at all (see benchmarks/BENCH_multihop.json).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.channel.propagation import LogDistancePathLoss
from repro.channel.shadowing import distance_m
from repro.core.range_model import solve_range_m
from repro.net.routing import connectivity_graph
from repro.parallel import SweepCache
from repro.phy.radio import RadioParameters
from repro.scenario import (
    FlowSpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    run_scenarios,
    scenario_point,
)

_PORT = 5001

#: Chain hop counts measured by the default sweep (>= 4 hops included:
#: the acceptance bar for real store-and-forward multihop).
DEFAULT_HOP_COUNTS: tuple[int, ...] = (1, 2, 4, 6, 8)

#: Station counts of the default density sweep.
DEFAULT_DENSITY_NODES: tuple[int, ...] = (50, 100, 250)

#: Chain spacing: beyond nothing, but well inside the ~94 m 2 Mbps
#: range — each station reaches exactly its chain neighbours.
CHAIN_SPACING_M = 70.0

#: Density-field spacing (one station per 60 m cell on average).
DENSITY_SPACING_M = 60.0

#: Offered load per station in the density sweep: low enough that a
#: 50-station field is unsaturated, high enough that a dense
#: neighbourhood shows contention.
DENSITY_RATE_BPS = 16_000.0


@dataclass(frozen=True)
class MultihopPoint:
    """End-to-end throughput over one chain length."""

    hops: int
    delivered_bps: float
    forwarded: int


@dataclass(frozen=True)
class DensityPoint:
    """Per-node throughput at one field size."""

    nodes: int
    mean_neighbours: float
    offered_bps: float
    per_node_bps: float
    delivered_total_bps: float


def multihop_spec(
    hops: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
    rate_mbps: float = 2.0,
    payload_bytes: int = 512,
) -> ScenarioSpec:
    """A saturated CBR flow across a ``hops``-hop relay chain."""
    return ScenarioSpec(
        name="multihop-chain",
        topology=TopologySpec.chain(hops + 1, CHAIN_SPACING_M, fast_sigma_db=0.0),
        stack=StackSpec(data_rate_mbps=rate_mbps, routing="shortest-path"),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(
                    kind="cbr",
                    src=0,
                    dst=hops,
                    port=_PORT,
                    payload_bytes=payload_bytes,
                    rate_bps=None,  # saturated: measure the chain capacity
                ),
            )
        ),
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
    )


def multihop_metrics(net: ScenarioNetwork) -> list[float]:
    """Extractor: ``[delivered_bps, total_forwards]`` for the chain flow."""
    assert net.spec is not None
    flow = net.flow(0)
    forwarded = sum(node.ip.datagrams_forwarded for node in net.nodes)
    return [flow.sink.throughput_bps(net.spec.duration_s), float(forwarded)]


_MULTIHOP_METRICS = "repro.experiments.multihop:multihop_metrics"


def run_multihop_sweep(
    hop_counts: Sequence[int] = DEFAULT_HOP_COUNTS,
    duration_s: float = 5.0,
    warmup_s: float = 0.5,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[MultihopPoint]:
    """End-to-end chain throughput at each hop count."""
    warmup_s = min(warmup_s, duration_s / 2)
    specs = [
        multihop_spec(hops, duration_s, warmup_s, seed) for hops in hop_counts
    ]
    values = run_scenarios(
        specs, extract=_MULTIHOP_METRICS, jobs=jobs, cache=cache, policy=policy
    )
    return [
        MultihopPoint(
            hops=hops, delivered_bps=delivered_bps, forwarded=int(forwarded)
        )
        for hops, (delivered_bps, forwarded) in zip(hop_counts, values)
    ]


def format_multihop_sweep(points: list[MultihopPoint]) -> str:
    """Throughput-vs-hop-count table."""
    return render_table(
        ["hops", "delivered (kbps)", "forwards"],
        [
            (point.hops, point.delivered_bps / 1e3, point.forwarded)
            for point in points
        ],
        title="Extension - chain throughput vs hop count (2 Mbps, saturated UDP)",
    )


def _nearest_neighbour(
    positions: Sequence[tuple[float, float]], index: int
) -> int:
    """Index of the closest other station (lowest index on ties)."""
    best, best_d = -1, float("inf")
    for other, position in enumerate(positions):
        if other == index:
            continue
        d = distance_m(positions[index], position)
        if d < best_d:
            best, best_d = other, d
    return best


def density_spec(
    n: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
    rate_mbps: float = 2.0,
    payload_bytes: int = 512,
    rate_bps: float = DENSITY_RATE_BPS,
    spacing_m: float = DENSITY_SPACING_M,
) -> ScenarioSpec:
    """``n`` stations at constant density, each a CBR to its nearest
    neighbour (ports are unique per source, sinks never collide)."""
    topology = TopologySpec.random(
        n, spacing_m, seed=seed, fast_sigma_db=0.0
    )
    flows = tuple(
        FlowSpec(
            kind="cbr",
            src=src,
            dst=_nearest_neighbour(topology.positions_m, src),
            port=_PORT + src,
            payload_bytes=payload_bytes,
            rate_bps=rate_bps,
        )
        for src in range(n)
    )
    return ScenarioSpec(
        name="density",
        topology=topology,
        stack=StackSpec(data_rate_mbps=rate_mbps, routing="shortest-path"),
        traffic=TrafficSpec(flows=flows),
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
    )


def density_metrics(net: ScenarioNetwork) -> list[float]:
    """Extractor: ``[per_node_bps, total_bps]`` over every flow's sink."""
    assert net.spec is not None
    duration_s = net.spec.duration_s
    total = sum(
        flow.sink.throughput_bps(duration_s) for flow in net.flows
    )
    return [total / len(net.flows), total]


_DENSITY_METRICS = "repro.experiments.multihop:density_metrics"


def mean_neighbours(spec: ScenarioSpec) -> float:
    """Mean connectivity degree of a spec's topology at its data rate."""
    radio = RadioParameters.calibrated()
    from repro.core.params import Rate

    rate = Rate.from_mbps(spec.stack.data_rate_mbps)
    max_range_m = solve_range_m(
        LogDistancePathLoss.calibrated().path_loss_db,
        radio.tx_power_dbm,
        radio.sensitivity_dbm[rate],
    )
    graph = connectivity_graph(spec.topology.positions_m, max_range_m)
    return sum(len(neighbours) for neighbours in graph.values()) / len(graph)


def run_density_sweep(
    n_values: Sequence[int] = DEFAULT_DENSITY_NODES,
    duration_s: float = 3.0,
    warmup_s: float = 0.5,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[DensityPoint]:
    """Per-node throughput at each field size."""
    warmup_s = min(warmup_s, duration_s / 2)
    specs = [
        density_spec(n, duration_s, warmup_s, seed) for n in n_values
    ]
    values = run_scenarios(
        specs, extract=_DENSITY_METRICS, jobs=jobs, cache=cache, policy=policy
    )
    return [
        DensityPoint(
            nodes=n,
            mean_neighbours=mean_neighbours(spec),
            offered_bps=DENSITY_RATE_BPS,
            per_node_bps=per_node_bps,
            delivered_total_bps=total_bps,
        )
        for (n, spec), (per_node_bps, total_bps) in zip(
            zip(n_values, specs), values
        )
    ]


def format_density_sweep(points: list[DensityPoint]) -> str:
    """Per-node-throughput-vs-density table."""
    return render_table(
        [
            "nodes",
            "mean neighbours",
            "offered/node (kbps)",
            "delivered/node (kbps)",
            "total (Mbps)",
        ],
        [
            (
                point.nodes,
                point.mean_neighbours,
                point.offered_bps / 1e3,
                point.per_node_bps / 1e3,
                point.delivered_total_bps / 1e6,
            )
            for point in points
        ],
        title="Extension - per-node throughput vs neighbour density (2 Mbps)",
    )


def scale_point(
    n: int,
    duration_s: float,
    seed: int,
    medium: str | None = None,
    spacing_m: float = DENSITY_SPACING_M,
    mobile_speed_m_s: float = 0.0,
) -> float:
    """One full density-style scenario; returns the total delivered bps.

    ``medium`` pins the reception-event path (``None`` follows
    ``REPRO_MEDIUM``).  The perf-trajectory benchmark runs this for both
    modes to prove the spatial path's super-linear win at scale: a wide
    ``spacing_m`` so the field dwarfs the interference radius, and every
    station mobile (speeds staggered per node so there is real relative
    motion) — each position update invalidates the mover's cached pair
    geometry, which the dense path recomputes for all N-1 partners while
    the spatial path touches only the neighbours it still examines.
    """
    from repro.scenario import build
    from repro.units import s_to_ns

    spec = density_spec(
        n, duration_s, warmup_s=0.0, seed=seed, spacing_m=spacing_m
    )
    topology = spec.topology.to_dict()
    if medium is not None:
        topology["medium"] = medium
    if mobile_speed_m_s > 0:
        topology["mobility"] = [
            {
                "node": node,
                "speed_m_s": mobile_speed_m_s * (1.0 + 0.01 * node),
                "update_interval_s": 0.1,
            }
            for node in range(n)
        ]
    spec = ScenarioSpec.from_dict({**spec.to_dict(), "topology": topology})
    net = build(spec)
    net.sim.run(until_ns=s_to_ns(duration_s))
    return sum(
        flow.sink.throughput_bps(duration_s) for flow in net.flows
    )
