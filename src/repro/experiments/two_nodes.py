"""Experiment ``figure2``: ideal vs measured TCP/UDP throughput.

Two stations well inside transmission range, a saturated source, and the
analytic bound of Equation (1)/(2) next to the simulated application
throughput — with and without RTS/CTS, for UDP (CBR) and TCP (ftp).

Scenarios are declarative: :func:`measured_spec` builds the
:class:`~repro.scenario.ScenarioSpec` for one panel, the run function
sweeps the four specs through :func:`repro.scenario.run_scenarios`
(cached on the canonical spec serialisation), and the module-level
extractors read the metric off the built network.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.core.params import Rate
from repro.core.throughput_model import ThroughputModel
from repro.errors import ExperimentError
from repro.parallel import SweepCache
from repro.scenario import (
    FlowSpec,
    ScenarioNetwork,
    ScenarioSpec,
    StackSpec,
    TopologySpec,
    TrafficSpec,
    run_scenarios,
    scenario_point,
)

#: Port both workloads use at the receiver.
_PORT = 5001


@dataclass(frozen=True)
class Figure2Result:
    """One bar pair of Figure 2."""

    rate: Rate
    transport: str  # "udp" or "tcp"
    rts_cts: bool
    ideal_mbps: float
    measured_mbps: float

    @property
    def ratio(self) -> float:
        """measured / ideal."""
        if self.ideal_mbps == 0:
            return 0.0
        return self.measured_mbps / self.ideal_mbps


def measured_spec(
    rate_mbps: float,
    transport: str,
    rts_cts: bool,
    payload_bytes: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
) -> ScenarioSpec:
    """The scenario for one measured Figure-2 panel."""
    if transport == "udp":
        flow = FlowSpec(
            kind="cbr", src=0, dst=1, port=_PORT, payload_bytes=payload_bytes
        )
    elif transport == "tcp":
        flow = FlowSpec(kind="bulk-tcp", src=0, dst=1, port=_PORT)
    else:
        raise ExperimentError(f"unknown transport {transport!r}")
    return ScenarioSpec(
        name=f"figure2-{transport}-{'rts' if rts_cts else 'basic'}",
        topology=TopologySpec.line(0, 10, fast_sigma_db=0.0),
        stack=StackSpec(data_rate_mbps=rate_mbps, rts_enabled=rts_cts),
        traffic=TrafficSpec(flows=(flow,)),
        seed=seed,
        duration_s=duration_s,
        warmup_s=warmup_s,
    )


def goodput_mbps(net: ScenarioNetwork) -> float:
    """Extractor: flow-0 goodput in Mbps over the scenario horizon."""
    assert net.spec is not None
    return net.flow(0).throughput_bps(net.spec.duration_s) / 1e6


def rx_times(net: ScenarioNetwork) -> list[int]:
    """Extractor: flow-0 delivery timestamps (ns)."""
    return [int(time_ns) for time_ns in net.flow(0).sink.rx_times_ns]


_GOODPUT_MBPS = "repro.experiments.two_nodes:goodput_mbps"
_RX_TIMES = "repro.experiments.two_nodes:rx_times"


def measured_point(
    rate_mbps: float,
    transport: str,
    rts_cts: bool,
    payload_bytes: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
) -> float:
    """Sweep-engine point: one measured Figure-2 panel in Mbps."""
    spec = measured_spec(
        rate_mbps, transport, rts_cts, payload_bytes, duration_s, warmup_s, seed
    )
    return float(scenario_point(spec.to_dict(), extract=_GOODPUT_MBPS))


def udp_trace_spec(
    rate_mbps: float,
    distance_m: float,
    duration_s: float,
    payload_bytes: int,
    seed: int,
) -> ScenarioSpec:
    """A saturated two-node UDP run with the default dynamic channel."""
    return ScenarioSpec(
        name="two-node-udp-trace",
        topology=TopologySpec.line(0, distance_m),
        stack=StackSpec(data_rate_mbps=rate_mbps),
        traffic=TrafficSpec(
            flows=(
                FlowSpec(
                    kind="cbr",
                    src=0,
                    dst=1,
                    port=_PORT,
                    payload_bytes=payload_bytes,
                ),
            )
        ),
        seed=seed,
        duration_s=duration_s,
    )


def udp_trace_point(
    rate_mbps: float,
    distance_m: float,
    duration_s: float,
    payload_bytes: int,
    seed: int,
) -> list[int]:
    """Receive timestamps (ns) of a saturated two-node UDP run.

    Returns the full delivery trace rather than an aggregate, so tests
    can assert that parallel and serial execution are bit-identical at
    the event level, not just in the summary statistics.
    """
    spec = udp_trace_spec(rate_mbps, distance_m, duration_s, payload_bytes, seed)
    return list(scenario_point(spec.to_dict(), extract=_RX_TIMES))


def run_figure2(
    rate: Rate = Rate.MBPS_11,
    payload_bytes: int = 512,
    duration_s: float = 3.0,
    warmup_s: float = 0.3,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[Figure2Result]:
    """All four panels of Figure 2 for one rate."""
    model = ThroughputModel()
    panels = [
        (transport, rts_cts)
        for transport in ("udp", "tcp")
        for rts_cts in (False, True)
    ]
    specs = [
        measured_spec(
            rate.mbps, transport, rts_cts, payload_bytes, duration_s, warmup_s, seed
        )
        for transport, rts_cts in panels
    ]
    measured = run_scenarios(
        specs, extract=_GOODPUT_MBPS, jobs=jobs, cache=cache, policy=policy
    )
    return [
        Figure2Result(
            rate=rate,
            transport=transport,
            rts_cts=rts_cts,
            ideal_mbps=model.max_throughput_bps(payload_bytes, rate, rts_cts)
            / 1e6,
            measured_mbps=value,
        )
        for (transport, rts_cts), value in zip(panels, measured)
    ]


def format_figure2(results: list[Figure2Result]) -> str:
    """Paper-style ideal-vs-real rendering."""
    return render_table(
        ["transport", "RTS/CTS", "ideal (Mbps)", "measured (Mbps)", "measured/ideal"],
        [
            (
                r.transport.upper(),
                "yes" if r.rts_cts else "no",
                r.ideal_mbps,
                r.measured_mbps,
                r.ratio,
            )
            for r in results
        ],
        title=f"Figure 2 - theoretical vs actual throughput at {results[0].rate}",
    )
