"""Experiment ``figure2``: ideal vs measured TCP/UDP throughput.

Two stations well inside transmission range, a saturated source, and the
analytic bound of Equation (1)/(2) next to the simulated application
throughput — with and without RTS/CTS, for UDP (CBR) and TCP (ftp).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.core.params import Rate
from repro.core.throughput_model import ThroughputModel
from repro.errors import ExperimentError
from repro.experiments.common import build_network
from repro.parallel import SweepCache, SweepPoint, run_sweep

#: Port both workloads use at the receiver.
_PORT = 5001


@dataclass(frozen=True)
class Figure2Result:
    """One bar pair of Figure 2."""

    rate: Rate
    transport: str  # "udp" or "tcp"
    rts_cts: bool
    ideal_mbps: float
    measured_mbps: float

    @property
    def ratio(self) -> float:
        """measured / ideal."""
        if self.ideal_mbps == 0:
            return 0.0
        return self.measured_mbps / self.ideal_mbps


def _run_udp(rate, rts_cts, payload_bytes, duration_s, warmup_s, seed) -> float:
    net = build_network(
        [0, 10], data_rate=rate, rts_enabled=rts_cts, seed=seed, fast_sigma_db=0.0
    )
    sink = UdpSink(net[1], port=_PORT, warmup_s=warmup_s)
    CbrSource(net[0], dst=2, dst_port=_PORT, payload_bytes=payload_bytes)
    net.run(duration_s)
    return sink.throughput_bps(duration_s) / 1e6


def _run_tcp(rate, rts_cts, duration_s, warmup_s, seed) -> float:
    net = build_network(
        [0, 10], data_rate=rate, rts_enabled=rts_cts, seed=seed, fast_sigma_db=0.0
    )
    receiver = BulkTcpReceiver(net[1], port=_PORT, warmup_s=warmup_s)
    BulkTcpSender(net[0], dst=2, dst_port=_PORT)
    net.run(duration_s)
    return receiver.throughput_bps(duration_s) / 1e6


def measured_point(
    rate_mbps: float,
    transport: str,
    rts_cts: bool,
    payload_bytes: int,
    duration_s: float,
    warmup_s: float,
    seed: int,
) -> float:
    """Sweep-engine point: one measured Figure-2 panel in Mbps."""
    rate = Rate.from_mbps(rate_mbps)
    if transport == "udp":
        return _run_udp(rate, rts_cts, payload_bytes, duration_s, warmup_s, seed)
    if transport == "tcp":
        return _run_tcp(rate, rts_cts, duration_s, warmup_s, seed)
    raise ExperimentError(f"unknown transport {transport!r}")


def udp_trace_point(
    rate_mbps: float,
    distance_m: float,
    duration_s: float,
    payload_bytes: int,
    seed: int,
) -> list[int]:
    """Receive timestamps (ns) of a saturated two-node UDP run.

    Returns the full delivery trace rather than an aggregate, so tests
    can assert that parallel and serial execution are bit-identical at
    the event level, not just in the summary statistics.
    """
    net = build_network(
        [0, distance_m], data_rate=Rate.from_mbps(rate_mbps), seed=seed
    )
    sink = UdpSink(net[1], port=_PORT)
    CbrSource(net[0], dst=2, dst_port=_PORT, payload_bytes=payload_bytes)
    net.run(duration_s)
    return [int(time_ns) for time_ns in sink.rx_times_ns]


_MEASURED_POINT = "repro.experiments.two_nodes:measured_point"


def run_figure2(
    rate: Rate = Rate.MBPS_11,
    payload_bytes: int = 512,
    duration_s: float = 3.0,
    warmup_s: float = 0.3,
    seed: int = 1,
    jobs: int = 1,
    cache: SweepCache | None = None,
    policy=None,
) -> list[Figure2Result]:
    """All four panels of Figure 2 for one rate."""
    model = ThroughputModel()
    panels = [
        (transport, rts_cts)
        for transport in ("udp", "tcp")
        for rts_cts in (False, True)
    ]
    measured = run_sweep(
        [
            SweepPoint(
                _MEASURED_POINT,
                {
                    "rate_mbps": rate.mbps,
                    "transport": transport,
                    "rts_cts": rts_cts,
                    "payload_bytes": payload_bytes,
                    "duration_s": duration_s,
                    "warmup_s": warmup_s,
                    "seed": seed,
                },
            )
            for transport, rts_cts in panels
        ],
        jobs=jobs,
        cache=cache,
        policy=policy,
    )
    return [
        Figure2Result(
            rate=rate,
            transport=transport,
            rts_cts=rts_cts,
            ideal_mbps=model.max_throughput_bps(payload_bytes, rate, rts_cts)
            / 1e6,
            measured_mbps=value,
        )
        for (transport, rts_cts), value in zip(panels, measured)
    ]


def format_figure2(results: list[Figure2Result]) -> str:
    """Paper-style ideal-vs-real rendering."""
    return render_table(
        ["transport", "RTS/CTS", "ideal (Mbps)", "measured (Mbps)", "measured/ideal"],
        [
            (
                r.transport.upper(),
                "yes" if r.rts_cts else "no",
                r.ideal_mbps,
                r.measured_mbps,
                r.ratio,
            )
            for r in results
        ],
        title=f"Figure 2 - theoretical vs actual throughput at {results[0].rate}",
    )
