"""Experiment harness: one runner per table/figure of the paper.

Every experiment returns a structured result object carrying both the
simulated values and the paper's published values (from
:mod:`repro.experiments.paper`), so benches and the CLI can print
paper-vs-measured rows directly.
"""

from repro.experiments.common import ScenarioNetwork, build_network
from repro.experiments.table2 import Table2Row, run_table2
from repro.experiments.two_nodes import Figure2Result, run_figure2
from repro.experiments.ranges import (
    LossCurve,
    RangeEstimate,
    estimate_tx_range,
    run_figure3,
    run_figure4,
    run_loss_sweep,
    run_table3,
)
from repro.experiments.four_nodes import (
    FourNodeResult,
    run_figure7,
    run_figure9,
    run_figure11,
    run_figure12,
    run_four_node_scenario,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment

__all__ = [
    "EXPERIMENTS",
    "Figure2Result",
    "FourNodeResult",
    "LossCurve",
    "RangeEstimate",
    "ScenarioNetwork",
    "Table2Row",
    "build_network",
    "estimate_tx_range",
    "get_experiment",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_figure7",
    "run_figure9",
    "run_figure11",
    "run_figure12",
    "run_four_node_scenario",
    "run_loss_sweep",
    "run_table2",
    "run_table3",
]
