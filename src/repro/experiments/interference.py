"""Extension experiment ``if-range``: the TX / IF / PCS range model.

Paper §2 defines three ranges and states the simulative folklore
``TX_range <= IF_range <= PCS_range``.  This experiment produces the
relationship quantitatively for the calibrated radio:

* analytically, by inverting the link budget (IF_range as a function of
  the sender-receiver distance and the SINR the modulation needs);
* by simulation, sweeping an interferer towards a receiver until frames
  start dying, which validates the analytic curve against the actual
  PHY reception model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import render_table
from repro.channel.propagation import LogDistancePathLoss
from repro.core.params import Rate
from repro.core.range_model import interference_range_m, solve_range_m
from repro.phy.radio import RadioParameters
from repro.sim.rng import RngManager

#: How far into the probe's payload the interferer burst starts.  The
#: value is an arbitrary "comfortably mid-payload" offset: the 540-byte
#: probe payload is hundreds of µs long at any 802.11b rate, so the
#: overlap is guaranteed whatever the data rate.
# simlint: waive[SL301] -- coincidentally equals DIFS (50 µs); this is
# an arbitrary overlap offset, not a copy of the MAC constant.
OVERLAP_OFFSET_NS = 50_000


@dataclass(frozen=True)
class InterferenceRangeRow:
    """Ranges around one sender-receiver distance."""

    rate: Rate
    sender_distance_m: float
    tx_range_m: float
    if_range_analytic_m: float
    pcs_range_m: float


def analytic_if_table(
    rate: Rate = Rate.MBPS_11,
    sender_distances_m: Sequence[float] = (5.0, 10.0, 20.0, 30.0),
    radio: RadioParameters | None = None,
) -> list[InterferenceRangeRow]:
    """IF_range vs sender distance for one modulation."""
    if radio is None:
        radio = RadioParameters.calibrated()
    propagation = LogDistancePathLoss.calibrated()
    tx_range = solve_range_m(
        propagation.path_loss_db, radio.tx_power_dbm, radio.sensitivity_dbm[rate]
    )
    pcs_range = solve_range_m(
        propagation.path_loss_db, radio.tx_power_dbm, radio.cs_threshold_dbm
    )
    rows = []
    for distance in sender_distances_m:
        if_range = interference_range_m(
            propagation.path_loss_db,
            radio.tx_power_dbm,
            distance,
            required_sinr_db=radio.sinr_threshold_db[rate],
        )
        rows.append(
            InterferenceRangeRow(
                rate=rate,
                sender_distance_m=distance,
                tx_range_m=tx_range,
                if_range_analytic_m=if_range,
                pcs_range_m=pcs_range,
            )
        )
    return rows


def measure_if_range(
    rate: Rate = Rate.MBPS_11,
    sender_distance_m: float = 20.0,
    interferer_distances_m: Sequence[float] = (30.0, 45.0, 60.0, 90.0),
    probes: int = 50,
    seed: int = 1,
) -> dict[float, float]:
    """PHY-level loss vs interferer distance under forced overlaps.

    Carrier sensing and MAC deferral would mask the SINR effect (the
    sender would politely wait for a nearby interferer), so this drives
    the transceivers directly: every probe frame from the sender is
    overlapped mid-payload by an interferer burst, and the fraction of
    probes the receiver fails to decode is the interference loss.  The
    50 % boundary of the sweep is the empirical IF range.
    """
    from repro.channel.medium import Medium
    from repro.channel.shadowing import ChannelModel
    from repro.core.airtime import AirtimeCalculator
    from repro.phy.plans import data_frame_plan
    from repro.phy.transceiver import PhyListener, Transceiver
    from repro.sim.engine import Simulator

    radio = RadioParameters.calibrated()
    airtime = AirtimeCalculator()
    rng = RngManager(seed)
    results = {}
    for interferer_distance in interferer_distances_m:
        # simlint: waive[SL601] -- PHY-only capture study: three bare
        # transceivers and no MAC/app stack, below what a ScenarioSpec
        # describes.
        sim = Simulator()
        # Every stochastic input hangs off the experiment's RngManager,
        # so the master seed covers interference draws too; one named
        # substream per sweep point keeps points independent.
        channel = ChannelModel(
            fast_sigma_db=0.0,
            rng=rng.stream(f"if-range.shadowing.{interferer_distance}"),
        )
        # simlint: waive[SL601] -- same bare-kernel capture study as above.
        medium = Medium(sim, channel)
        receiver = Transceiver(sim, medium, radio, name="rx",
                               position_m=(0.0, 0.0))
        sender = Transceiver(sim, medium, radio, name="tx",
                             position_m=(sender_distance_m, 0.0))
        interferer = Transceiver(
            sim, medium, radio, name="if",
            position_m=(-interferer_distance, 0.0),
        )

        class _Counter(PhyListener):
            def __init__(self):
                self.ok = 0

            def on_rx_end(self, mac_frame, outcome):
                if mac_frame is not None:
                    self.ok += 1

        counter = _Counter()
        receiver.set_listener(counter)
        plan = data_frame_plan(540, rate, airtime)
        gap_ns = 2 * plan.duration_ns
        for probe in range(probes):
            start_ns = probe * (plan.duration_ns + gap_ns)
            sim.schedule_at(start_ns, sender.transmit, plan, f"p{probe}")
            # The interferer fires mid-payload, guaranteeing overlap.
            sim.schedule_at(
                start_ns + plan.preamble_end_ns + OVERLAP_OFFSET_NS,
                interferer.transmit,
                plan,
                f"i{probe}",
            )
        sim.run()
        results[interferer_distance] = 1.0 - counter.ok / probes
    return results


def format_if_table(rows: list[InterferenceRangeRow]) -> str:
    """The TX <= IF <= PCS relationship, quantified."""
    return render_table(
        [
            "sender at (m)",
            "TX range (m)",
            "IF range (m)",
            "PCS range (m)",
        ],
        [
            (
                row.sender_distance_m,
                round(row.tx_range_m, 1),
                round(row.if_range_analytic_m, 1),
                round(row.pcs_range_m, 1),
            )
            for row in rows
        ],
        title=(
            f"Extension - interference range vs sender distance at "
            f"{rows[0].rate} (paper §2 model)"
        ),
    )
