"""Shared scenario plumbing for all experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.channel.medium import Medium
from repro.channel.propagation import PropagationModel
from repro.channel.shadowing import ChannelModel
from repro.channel.weather import DayConditions, WeatherProcess
from repro.core.params import Dot11bConfig, Rate
from repro.mac.dcf import AckPolicy
from repro.mac.ratecontrol import ArfConfig
from repro.net.node import Node, NodeStackConfig
from repro.phy.radio import RadioParameters
from repro.phy.reception import ReceptionModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngManager
from repro.sim.tracing import Tracer
from repro.transport.tcp.connection import TcpConfig


@dataclass
class ScenarioNetwork:
    """A ready-to-run network: simulator, medium and full-stack nodes."""

    sim: Simulator
    medium: Medium
    nodes: list[Node]
    tracer: Tracer
    rngs: RngManager

    def __getitem__(self, index: int) -> Node:
        return self.nodes[index]

    def run(self, duration_s: float) -> None:
        """Advance the simulation to ``duration_s``."""
        self.sim.run(until_s=duration_s)


#: Default per-frame shadowing used by the dynamic experiments.  Chosen
#: so the loss-vs-distance curves of Figure 3 spread over the distance
#: window the paper shows (roughly 20-30 m wide per rate).
DEFAULT_FAST_SIGMA_DB = 2.5


def build_network(
    positions_m: Sequence[float | tuple[float, float]],
    data_rate: Rate = Rate.MBPS_11,
    rts_enabled: bool = False,
    seed: int = 1,
    fast_sigma_db: float = DEFAULT_FAST_SIGMA_DB,
    static_sigma_db: float = 0.0,
    weather: DayConditions | None = None,
    radio: RadioParameters | None = None,
    propagation: PropagationModel | None = None,
    ack_policy: AckPolicy = AckPolicy.ALWAYS,
    dot11: Dot11bConfig | None = None,
    tcp_config: TcpConfig | None = None,
    reception: ReceptionModel | None = None,
    mac_queue_frames: int = 200,
    arf: ArfConfig | None = None,
) -> ScenarioNetwork:
    """Construct the full stack for one scenario.

    ``positions_m`` entries are either an x-coordinate (stations on a
    line, like every topology in the paper) or an ``(x, y)`` pair.
    Addresses are assigned 1..N left to right, matching the paper's
    S1..S4 naming.
    """
    sim = Simulator()
    rngs = RngManager(seed)
    tracer = Tracer()
    weather_process = None
    if weather is not None:
        weather_process = WeatherProcess(rngs.stream("weather"), weather)
    channel = ChannelModel(
        propagation=propagation,
        fast_sigma_db=fast_sigma_db,
        static_sigma_db=static_sigma_db,
        rng=rngs.stream("channel"),
        weather=weather_process,
    )
    medium = Medium(sim, channel)
    stack = NodeStackConfig(
        data_rate=data_rate,
        dot11=dot11 if dot11 is not None else Dot11bConfig(),
        rts_enabled=rts_enabled,
        ack_policy=ack_policy,
        radio=radio if radio is not None else RadioParameters.calibrated(),
        tcp=tcp_config if tcp_config is not None else TcpConfig(),
        max_queue_frames=mac_queue_frames,
        arf=arf,
    )
    nodes = []
    for index, position in enumerate(positions_m):
        if isinstance(position, tuple):
            xy = (float(position[0]), float(position[1]))
        else:
            xy = (float(position), 0.0)
        nodes.append(
            Node(
                sim,
                medium,
                address=index + 1,
                position_m=xy,
                stack=stack,
                rng=rngs.stream(f"node{index + 1}"),
                tracer=tracer,
                reception=reception,
            )
        )
    return ScenarioNetwork(sim=sim, medium=medium, nodes=nodes, tracer=tracer, rngs=rngs)
