"""Shared scenario plumbing for all experiments.

The actual construction code now lives in :mod:`repro.scenario` — the
declarative spec layer every experiment builds through.  This module
remains as a compatibility alias for the long-standing import path
``repro.experiments.common.build_network``.
"""

from __future__ import annotations

from repro.scenario.builder import build_network
from repro.scenario.network import ScenarioNetwork
from repro.scenario.specs import DEFAULT_FAST_SIGMA_DB

__all__ = ["DEFAULT_FAST_SIGMA_DB", "ScenarioNetwork", "build_network"]
