"""TCP behaviour across a node crash: RTO give-up or fresh-connection recovery."""

from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
from repro.experiments.common import build_network
from repro.faults import FaultSchedule, NodeCrash
from repro.transport.tcp.connection import TcpConfig


def tcp_link(seed=1, **tcp_kwargs):
    return build_network(
        [0, 10],
        seed=seed,
        fast_sigma_db=0.0,
        tcp_config=TcpConfig(**tcp_kwargs),
    )


class TestPeerStaysDown:
    def test_sender_gives_up_via_retransmission_limit(self):
        # Short RTO ceiling + few retries so the give-up lands inside
        # a few simulated seconds.
        net = tcp_link(max_retransmissions=4, max_rto_s=2.0)
        BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80)
        reasons = []
        sender.connection.on_closed = reasons.append
        FaultSchedule(
            [NodeCrash(start_s=1.0, duration_s=None, node=1)]
        ).install(net)
        net.run(20.0)
        assert reasons == ["retransmission-limit"]
        from repro.transport.tcp.connection import TcpState

        assert sender.connection.state is TcpState.CLOSED

    def test_connect_to_dead_peer_times_out(self):
        net = tcp_link(connect_retries=2, max_rto_s=2.0)
        BulkTcpReceiver(net[1], port=80)
        net[1].crash()
        sender = BulkTcpSender(net[0], dst=2, dst_port=80)
        reasons = []
        sender.connection.on_closed = reasons.append
        net.run(20.0)
        assert reasons == ["connect-timeout"]


class TestSenderCrashAndReboot:
    def test_fresh_connection_recovers_after_reboot(self):
        net = tcp_link()
        receiver = BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80)
        reasons = []
        sender.connection.on_closed = reasons.append

        def restart(node):
            BulkTcpSender(node, dst=2, dst_port=80)

        FaultSchedule(
            [NodeCrash(start_s=1.0, duration_s=1.0, node=0,
                       on_reboot=restart)]
        ).install(net)
        bytes_before = []
        net.sim.schedule_s(2.0, lambda: bytes_before.append(receiver.bytes))
        net.run(4.0)
        # Crash aborts the original connection without a FIN...
        assert reasons == ["aborted"]
        # ...the receiver accepts a second connection after reboot...
        assert len(receiver.connections) == 2
        # ...and goodput resumes on it.
        assert receiver.bytes > bytes_before[0] + 100_000

    def test_crash_clears_the_senders_connection_table(self):
        net = tcp_link()
        BulkTcpReceiver(net[1], port=80)
        BulkTcpSender(net[0], dst=2, dst_port=80)
        net.run(1.0)
        assert net[0].tcp.connection_count == 1
        net[0].crash()
        assert net[0].tcp.connection_count == 0

    def test_receiver_survives_late_segments_from_forgotten_connection(self):
        # After the sender reboots, stray segments for the pre-crash
        # connection must not crash the receiver's stack (they are
        # silently dropped: no state, no RST).
        net = tcp_link()
        receiver = BulkTcpReceiver(net[1], port=80)
        BulkTcpSender(net[0], dst=2, dst_port=80)

        def restart(node):
            BulkTcpSender(node, dst=2, dst_port=80)

        FaultSchedule(
            [
                NodeCrash(start_s=1.0, duration_s=0.5, node=0,
                          on_reboot=restart),
                # The *receiver* also blips, so its half-open connection
                # state is exercised from both sides.
                NodeCrash(start_s=3.0, duration_s=0.5, node=1),
            ]
        ).install(net)
        net.run(6.0)
        assert receiver.bytes > 0
