"""Unit tests of the TCP connection machine over a fake transport.

No radio, no IP: segments are captured in a list and replies are
injected by hand, so each protocol rule (handshake, cumulative ACKs,
fast retransmit, RTO backoff, FIN) is pinned in isolation.
"""


from repro.sim.engine import Simulator
from repro.transport.tcp.connection import TcpConfig, TcpConnection, TcpState
from repro.transport.tcp.segment import TcpSegment


class FakeTransport:
    """Captures outbound segments; optionally rejects sends."""

    def __init__(self):
        self.segments: list[TcpSegment] = []
        self.accept = True

    def send_segment(self, segment, dst):
        if not self.accept:
            return False
        self.segments.append(segment)
        return True

    def take(self):
        segments, self.segments = self.segments, []
        return segments


def make_connection(**config_kwargs):
    sim = Simulator()
    transport = FakeTransport()
    connection = TcpConnection(
        sim,
        transport,
        TcpConfig(**config_kwargs),
        local_addr=1,
        local_port=1000,
        remote_addr=2,
        remote_port=80,
    )
    return sim, transport, connection


def reply(connection, *, seq=0, ack=0, payload=0, syn=False, fin=False,
          window=65535):
    connection.on_segment(
        TcpSegment(
            src_port=80,
            dst_port=1000,
            seq=seq,
            ack=ack,
            payload_bytes=payload,
            syn=syn,
            fin=fin,
            window=window,
        )
    )


def establish(sim, transport, connection):
    connection.connect()
    transport.take()  # the SYN
    reply(connection, seq=0, ack=1, syn=True)
    transport.take()  # the handshake ACK
    assert connection.state is TcpState.ESTABLISHED


class TestHandshake:
    def test_syn_then_established(self):
        sim, transport, connection = make_connection()
        connection.connect()
        (syn,) = transport.take()
        assert syn.syn and syn.seq == 0
        established = []
        connection.on_established = lambda: established.append(True)
        reply(connection, seq=0, ack=1, syn=True)
        assert established == [True]
        assert connection.snd_una == 1

    def test_syn_retransmitted_on_timeout(self):
        sim, transport, connection = make_connection(initial_rto_s=0.5)
        connection.connect()
        transport.take()
        sim.run(until_s=0.6)
        retries = [s for s in transport.take() if s.syn]
        assert len(retries) == 1

    def test_connect_gives_up_after_retries(self):
        sim, transport, connection = make_connection(
            initial_rto_s=0.2, connect_retries=2, max_rto_s=0.4
        )
        closed = []
        connection.on_closed = closed.append
        connection.connect()
        sim.run(until_s=10.0)
        assert closed == ["connect-timeout"]
        assert connection.state is TcpState.CLOSED


class TestDataTransfer:
    def test_sends_up_to_cwnd(self):
        sim, transport, connection = make_connection(
            mss_bytes=500, initial_cwnd_segments=2
        )
        establish(sim, transport, connection)
        connection.send(5000)
        segments = transport.take()
        assert [s.payload_bytes for s in segments] == [500, 500]

    def test_ack_opens_the_window(self):
        sim, transport, connection = make_connection(
            mss_bytes=500, initial_cwnd_segments=2
        )
        establish(sim, transport, connection)
        connection.send(5000)
        transport.take()
        reply(connection, seq=1, ack=1001)  # both segments acked
        segments = transport.take()
        # cwnd grew to 3 MSS (slow start) and 2 were released: 3 in flight.
        assert len(segments) == 3

    def test_peer_window_limits_flight(self):
        sim, transport, connection = make_connection(
            mss_bytes=500, initial_cwnd_segments=8
        )
        establish(sim, transport, connection)
        reply(connection, seq=1, ack=1, window=700)
        connection.send(5000)
        segments = transport.take()
        assert sum(s.payload_bytes for s in segments) <= 700

    def test_receiver_delivers_and_acks(self):
        sim, transport, connection = make_connection(delayed_ack=False)
        establish(sim, transport, connection)
        delivered = []
        connection.on_deliver = delivered.append
        reply(connection, seq=1, payload=500, ack=1)
        assert delivered == [500]
        (ack,) = transport.take()
        assert ack.ack == 501
        assert ack.payload_bytes == 0

    def test_delayed_ack_fires_on_second_segment(self):
        sim, transport, connection = make_connection(delayed_ack=True)
        establish(sim, transport, connection)
        reply(connection, seq=1, payload=500, ack=1)
        assert transport.take() == []  # first segment: ACK withheld
        reply(connection, seq=501, payload=500, ack=1)
        (ack,) = transport.take()
        assert ack.ack == 1001

    def test_delayed_ack_timer_fires_alone(self):
        sim, transport, connection = make_connection(
            delayed_ack=True, delack_timeout_s=0.2
        )
        establish(sim, transport, connection)
        reply(connection, seq=1, payload=500, ack=1)
        sim.run(until_s=0.3)
        (ack,) = transport.take()
        assert ack.ack == 501

    def test_out_of_order_data_acked_immediately(self):
        sim, transport, connection = make_connection(delayed_ack=True)
        establish(sim, transport, connection)
        reply(connection, seq=501, payload=500, ack=1)  # gap!
        (dup_ack,) = transport.take()
        assert dup_ack.ack == 1  # still expecting seq 1


class TestLossRecovery:
    def _establish_with_flight(self, mss=500, cwnd=8):
        sim, transport, connection = make_connection(
            mss_bytes=mss, initial_cwnd_segments=cwnd
        )
        establish(sim, transport, connection)
        connection.send(mss * 4)
        flight = transport.take()
        assert len(flight) == 4
        return sim, transport, connection

    def test_three_dup_acks_trigger_fast_retransmit(self):
        sim, transport, connection = self._establish_with_flight()
        for _ in range(3):
            reply(connection, seq=1, ack=1)
        retransmits = [s for s in transport.take() if s.seq == 1]
        assert len(retransmits) == 1
        assert connection.fast_retransmits == 1
        assert connection.congestion.in_fast_recovery

    def test_two_dup_acks_do_not(self):
        sim, transport, connection = self._establish_with_flight()
        for _ in range(2):
            reply(connection, seq=1, ack=1)
        assert [s for s in transport.take() if s.seq == 1] == []

    def test_rto_collapses_cwnd_and_retransmits(self):
        sim, transport, connection = self._establish_with_flight()
        sim.run(until_s=2.0)  # initial RTO 1 s fires
        assert connection.timeouts >= 1
        assert connection.congestion.cwnd_bytes == 500
        assert any(s.seq == 1 for s in transport.take())

    def test_rto_backs_off_exponentially(self):
        sim, transport, connection = self._establish_with_flight()
        sim.run(until_s=0.5)
        before = connection.rto.rto_s
        sim.run(until_s=2.0)
        assert connection.rto.rto_s > before

    def test_new_ack_after_recovery_resumes(self):
        sim, transport, connection = self._establish_with_flight()
        for _ in range(3):
            reply(connection, seq=1, ack=1)
        transport.take()
        reply(connection, seq=1, ack=2001)  # everything arrived
        assert not connection.congestion.in_fast_recovery
        assert connection.snd_una == 2001


class TestClose:
    def test_fin_after_drain_and_ack_closes(self):
        sim, transport, connection = make_connection(mss_bytes=500)
        establish(sim, transport, connection)
        closed = []
        connection.on_closed = closed.append
        connection.send(500)
        connection.close()
        segments = transport.take()
        assert segments[0].payload_bytes == 500
        assert segments[1].fin
        reply(connection, seq=1, ack=segments[1].end_seq)
        assert connection.state is TcpState.CLOSED
        assert closed == ["closed"]

    def test_peer_fin_delivered_once(self):
        sim, transport, connection = make_connection()
        establish(sim, transport, connection)
        peer_closed = []
        connection.on_peer_closed = lambda: peer_closed.append(True)
        reply(connection, seq=1, payload=100, ack=1, fin=True)
        reply(connection, seq=1, payload=100, ack=1, fin=True)  # dup
        assert peer_closed == [True]
        ack = transport.take()[-1]
        assert ack.ack == 102  # 100 bytes + FIN

    def test_send_queue_rejection_retries_via_pump_timer(self):
        sim, transport, connection = make_connection(mss_bytes=500)
        establish(sim, transport, connection)
        transport.accept = False
        connection.send(500)
        assert transport.take() == []
        transport.accept = True
        sim.run(until_s=0.1)  # the pump timer retries
        assert [s.payload_bytes for s in transport.take()] == [500]
