"""Full-stack TCP tests over the simulated network."""


from repro.apps.bulk import BulkTcpReceiver, BulkTcpSender
from repro.core.params import Rate
from repro.core.throughput_model import ThroughputModel
from repro.experiments.common import build_network
from repro.transport.tcp.connection import TcpConfig, TcpState


class TestHandshake:
    def test_connection_establishes(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        accepted = []
        net[1].tcp.listen(80, accepted.append)
        connection = net[0].tcp.connect(2, 80)
        net.run(0.1)
        assert connection.state is TcpState.ESTABLISHED
        assert len(accepted) == 1
        assert accepted[0].state is TcpState.ESTABLISHED

    def test_connect_to_missing_host_times_out(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        closed = []
        connection = net[0].tcp.connect(99, 80)
        connection.on_closed = closed.append
        net.run(200.0)
        assert closed == ["connect-timeout"]


class TestBulkTransfer:
    def test_fixed_transfer_delivers_exactly_once(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        receiver = BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=200_000)
        net.run(5.0)
        assert receiver.bytes == 200_000
        assert sender.finished
        assert receiver.peer_closed

    def test_fin_closes_sender_connection(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=10_000)
        net.run(5.0)
        assert sender.connection.state is TcpState.CLOSED

    def test_streaming_throughput_below_udp_bound_but_substantial(self):
        # The paper's Figure-2 observation: TCP pays for its ACK stream.
        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        receiver = BulkTcpReceiver(net[1], port=80, warmup_s=0.5)
        BulkTcpSender(net[0], dst=2, dst_port=80)
        net.run(3.0)
        measured = receiver.throughput_bps(3.0)
        udp_bound = ThroughputModel().max_throughput_bps(512, Rate.MBPS_11)
        assert measured < udp_bound
        assert measured > 0.5 * udp_bound

    def test_delayed_ack_reduces_ack_traffic(self):
        def ack_count(delayed):
            net = build_network(
                [0, 10],
                fast_sigma_db=0.0,
                tcp_config=TcpConfig(delayed_ack=delayed),
            )
            receiver = BulkTcpReceiver(net[1], port=80)
            BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=100_000)
            net.run(5.0)
            assert receiver.bytes == 100_000
            return receiver.connections[0].acks_sent

        assert ack_count(delayed=True) < 0.7 * ack_count(delayed=False)

    def test_transfer_survives_a_lossy_channel(self):
        # Moderate shadowing at 60 m (2 Mbps range edge is ~92 m):
        # individual frames are lost, MAC retries plus TCP recovery must
        # still deliver the stream exactly.
        net = build_network(
            [0, 60], data_rate=Rate.MBPS_2, fast_sigma_db=4.0, seed=11
        )
        receiver = BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=100_000)
        net.run(60.0)
        assert receiver.bytes == 100_000
        assert sender.finished

    def test_retransmissions_happen_on_lossy_channel(self):
        # MAC retries are disabled so frame losses surface at TCP level.
        from repro.core.params import Dot11bConfig, MacParameters

        net = build_network(
            [0, 70],
            data_rate=Rate.MBPS_2,
            fast_sigma_db=4.0,
            seed=7,
            dot11=Dot11bConfig(
                mac=MacParameters(short_retry_limit=0, long_retry_limit=0)
            ),
        )
        receiver = BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80, total_bytes=50_000)
        net.run(300.0)
        assert receiver.bytes == 50_000
        connection = sender.connection
        assert connection.segments_retransmitted + connection.timeouts > 0


class TestCongestionBehaviour:
    def test_cwnd_grows_from_slow_start(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        BulkTcpReceiver(net[1], port=80)
        sender = BulkTcpSender(net[0], dst=2, dst_port=80)
        net.run(1.0)
        mss = sender.connection.config.mss_bytes
        assert sender.connection.congestion.cwnd_bytes > 4 * mss

    def test_two_tcp_flows_share_fairly(self):
        net = build_network([0, 10, 20], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        r1 = BulkTcpReceiver(net[1], port=80, warmup_s=1.0)
        r2 = BulkTcpReceiver(net[1], port=81, warmup_s=1.0)
        BulkTcpSender(net[0], dst=2, dst_port=80)
        BulkTcpSender(net[2], dst=2, dst_port=81)
        net.run(5.0)
        t1 = r1.throughput_bps(5.0)
        t2 = r2.throughput_bps(5.0)
        assert t1 > 0 and t2 > 0
        assert 0.5 < t1 / t2 < 2.0
