"""Tests for the RTO estimator."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.transport.tcp.rto import RtoEstimator


class TestRtoEstimator:
    def test_initial_rto(self):
        assert RtoEstimator(initial_rto_s=1.0).rto_s == 1.0

    def test_first_sample_sets_srtt(self):
        rto = RtoEstimator()
        rto.sample(0.1)
        assert rto.srtt_s == pytest.approx(0.1)
        # RTO = SRTT + 4 * RTTVAR = 0.1 + 4 * 0.05 = 0.3.
        assert rto.rto_s == pytest.approx(0.3)

    def test_min_rto_clamp(self):
        rto = RtoEstimator(min_rto_s=0.2)
        for _ in range(20):
            rto.sample(0.001)
        assert rto.rto_s == pytest.approx(0.2)

    def test_max_rto_clamp(self):
        rto = RtoEstimator(max_rto_s=60.0)
        rto.sample(50.0)
        assert rto.rto_s == 60.0

    def test_smoothing_converges(self):
        rto = RtoEstimator()
        for _ in range(100):
            rto.sample(0.25)
        assert rto.srtt_s == pytest.approx(0.25, rel=0.01)

    def test_backoff_doubles_until_next_sample(self):
        rto = RtoEstimator(initial_rto_s=1.0)
        rto.backoff()
        assert rto.rto_s == 2.0
        rto.backoff()
        assert rto.rto_s == 4.0
        rto.sample(0.5)
        assert rto.rto_s < 4.0  # backoff cleared

    def test_backoff_respects_max(self):
        rto = RtoEstimator(initial_rto_s=1.0, max_rto_s=8.0)
        for _ in range(10):
            rto.backoff()
        assert rto.rto_s == 8.0

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            RtoEstimator(initial_rto_s=0.1, min_rto_s=0.2)

    def test_non_positive_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            RtoEstimator().sample(0.0)

    @given(samples=st.lists(st.floats(min_value=1e-4, max_value=30.0), max_size=50))
    def test_rto_always_within_bounds(self, samples):
        rto = RtoEstimator(min_rto_s=0.2, max_rto_s=60.0)
        for s in samples:
            rto.sample(s)
            assert 0.2 <= rto.rto_s <= 60.0
