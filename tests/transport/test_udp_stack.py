"""Full-stack UDP tests over the simulated network."""

import pytest

from repro.core.params import Rate
from repro.core.throughput_model import ThroughputModel
from repro.apps.cbr import CbrSource
from repro.apps.sink import UdpSink
from repro.errors import TransportError
from repro.experiments.common import build_network


class TestUdpDelivery:
    def test_datagram_reaches_the_sink(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        socket = net[0].udp.bind()
        socket.send("probe", 512, dst=2, dst_port=5001)
        net.run(0.1)
        assert sink.packets == 1
        assert sink.bytes == 512

    def test_unbound_port_drops_silently(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        socket = net[0].udp.bind()
        socket.send("probe", 512, dst=2, dst_port=4242)
        net.run(0.1)
        assert net[1].ip.datagrams_delivered == 1  # IP got it; UDP dropped

    def test_ephemeral_ports_are_distinct(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        a = net[0].udp.bind()
        b = net[0].udp.bind()
        assert a.port != b.port

    def test_double_bind_rejected(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        net[0].udp.bind(7000)
        with pytest.raises(TransportError):
            net[0].udp.bind(7000)

    def test_closed_socket_rejects_send(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        socket = net[0].udp.bind()
        socket.close()
        with pytest.raises(TransportError):
            socket.send("x", 10, dst=2, dst_port=1)

    def test_port_reusable_after_close(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        socket = net[0].udp.bind(7000)
        socket.close()
        net[0].udp.bind(7000)


class TestCbrSaturation:
    def test_saturated_cbr_hits_analytic_bound(self):
        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512)
        net.run(2.0)
        measured = sink.throughput_bps(2.0)
        expected = ThroughputModel().max_throughput_bps(512, Rate.MBPS_11)
        assert measured == pytest.approx(expected, rel=0.05)

    def test_rate_limited_cbr_delivers_offered_load(self):
        net = build_network([0, 10], data_rate=Rate.MBPS_11, fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=500_000)
        net.run(2.0)
        assert sink.throughput_bps(2.0) == pytest.approx(500_000, rel=0.05)

    def test_sequences_arrive_in_order(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=1e6)
        net.run(0.5)
        assert sink.sequences == sorted(sink.sequences)

    def test_warmup_trimming(self):
        net = build_network([0, 10], fast_sigma_db=0.0)
        sink = UdpSink(net[1], port=5001, warmup_s=0.5)
        CbrSource(net[0], dst=2, dst_port=5001, payload_bytes=512, rate_bps=1e6)
        net.run(1.0)
        assert sink.packets_after_warmup < sink.packets


class TestMultihopForwarding:
    def test_static_route_forwards_through_relay(self):
        # 1 -- 2 -- 3 with 1 and 3 out of range of each other (160 m).
        net = build_network([0, 80, 160], data_rate=Rate.MBPS_2, fast_sigma_db=0.0)
        sink = UdpSink(net[2], port=5001)
        net[0].routing.add_route(dst=3, next_hop=2)
        net[2].routing.add_route(dst=1, next_hop=2)
        socket = net[0].udp.bind()
        for _ in range(5):
            socket.send("via-relay", 512, dst=3, dst_port=5001)
        net.run(0.5)
        assert sink.packets == 5
        assert net[1].ip.datagrams_forwarded == 5
