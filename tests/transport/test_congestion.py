"""Tests for Reno congestion control."""

import pytest

from repro.errors import ConfigurationError
from repro.transport.tcp.congestion import RenoCongestionControl

MSS = 512


@pytest.fixture
def cc():
    return RenoCongestionControl(MSS, initial_cwnd_segments=2)


class TestSlowStart:
    def test_starts_in_slow_start(self, cc):
        assert cc.in_slow_start
        assert cc.cwnd_bytes == 2 * MSS

    def test_exponential_growth_per_ack(self, cc):
        cc.on_new_ack(MSS)
        assert cc.cwnd_bytes == 3 * MSS
        cc.on_new_ack(MSS)
        assert cc.cwnd_bytes == 4 * MSS

    def test_growth_capped_at_mss_per_ack(self, cc):
        cc.on_new_ack(10 * MSS)  # a jumbo cumulative ACK
        assert cc.cwnd_bytes == 3 * MSS


class TestCongestionAvoidance:
    def test_linear_growth_above_ssthresh(self):
        cc = RenoCongestionControl(MSS, initial_cwnd_segments=2,
                                   initial_ssthresh_bytes=2 * MSS)
        assert not cc.in_slow_start
        start = cc.cwnd_bytes
        cc.on_new_ack(MSS)
        assert cc.cwnd_bytes == start + MSS * MSS // start

    def test_one_mss_per_rtt_approximately(self):
        cc = RenoCongestionControl(MSS, initial_cwnd_segments=4,
                                   initial_ssthresh_bytes=MSS)
        start = cc.cwnd_bytes
        # One window's worth of ACKs grows cwnd by ~1 MSS.
        for _ in range(start // MSS):
            cc.on_new_ack(MSS)
        assert cc.cwnd_bytes == pytest.approx(start + MSS, abs=MSS // 4)


class TestFastRetransmit:
    def test_third_dup_ack_triggers(self, cc):
        flight = 8 * MSS
        assert not cc.on_duplicate_ack(flight)
        assert not cc.on_duplicate_ack(flight)
        assert cc.on_duplicate_ack(flight)
        assert cc.in_fast_recovery
        assert cc.ssthresh_bytes == flight // 2
        assert cc.cwnd_bytes == flight // 2 + 3 * MSS

    def test_ssthresh_floor_is_two_mss(self, cc):
        for _ in range(3):
            cc.on_duplicate_ack(MSS)
        assert cc.ssthresh_bytes == 2 * MSS

    def test_window_inflates_during_recovery(self, cc):
        for _ in range(3):
            cc.on_duplicate_ack(8 * MSS)
        inflated = cc.cwnd_bytes
        assert not cc.on_duplicate_ack(8 * MSS)
        assert cc.cwnd_bytes == inflated + MSS

    def test_new_ack_deflates_and_exits_recovery(self, cc):
        for _ in range(3):
            cc.on_duplicate_ack(8 * MSS)
        cc.on_new_ack(MSS)
        assert not cc.in_fast_recovery
        assert cc.cwnd_bytes == cc.ssthresh_bytes

    def test_new_ack_resets_dup_counter(self, cc):
        cc.on_duplicate_ack(8 * MSS)
        cc.on_duplicate_ack(8 * MSS)
        cc.on_new_ack(MSS)
        assert cc.duplicate_acks == 0


class TestTimeout:
    def test_collapse_to_one_mss(self, cc):
        cc.on_new_ack(MSS)
        cc.on_timeout(8 * MSS)
        assert cc.cwnd_bytes == MSS
        assert cc.ssthresh_bytes == 4 * MSS
        assert cc.in_slow_start

    def test_timeout_exits_fast_recovery(self, cc):
        for _ in range(3):
            cc.on_duplicate_ack(8 * MSS)
        cc.on_timeout(8 * MSS)
        assert not cc.in_fast_recovery
        assert cc.duplicate_acks == 0


class TestValidation:
    def test_bad_mss_rejected(self):
        with pytest.raises(ConfigurationError):
            RenoCongestionControl(0)

    def test_bad_initial_cwnd_rejected(self):
        with pytest.raises(ConfigurationError):
            RenoCongestionControl(MSS, initial_cwnd_segments=0)

    def test_zero_ack_rejected(self, cc):
        with pytest.raises(ConfigurationError):
            cc.on_new_ack(0)
